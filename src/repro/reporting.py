"""Benchmark-series parsing and ASCII chart rendering.

The benchmark suite writes ``benchmarks/series_output.txt`` — grouped
``key=value`` rows per experiment. This module parses that format back
into data and renders horizontal bar charts, so the paper's figures can
be eyeballed straight from a terminal::

    python benchmarks/render_report.py benchmarks/series_output.txt
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["parse_series", "render_bars", "render_report"]


def parse_series(text: str) -> "OrderedDict[str, list[tuple[str, dict]]]":
    """Parse a series_output.txt payload.

    Returns ``{experiment: [(series_label, {column: value}), ...]}`` in
    file order. Values parse to int or float where possible.
    """
    experiments: "OrderedDict[str, list[tuple[str, dict]]]" = OrderedDict()
    current: str | None = None
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line.strip():
            continue
        if line.startswith("=== ") and line.endswith(" ==="):
            current = line[4:-4]
            experiments.setdefault(current, [])
            continue
        if current is None or "=" not in line:
            continue
        fields = line.split()
        columns: dict = {}
        label_parts: list[str] = []
        for field in fields:
            if "=" in field:
                key, _, value = field.partition("=")
                columns[key] = _parse_value(value)
            else:
                label_parts.append(field)
        experiments[current].append((" ".join(label_parts), columns))
    return experiments


def _parse_value(value: str):
    for caster in (int, float):
        try:
            return caster(value)
        except ValueError:
            continue
    return value


def render_bars(
    rows: list[tuple[str, dict]],
    metric: str = "seconds",
    width: int = 50,
) -> list[str]:
    """Horizontal ASCII bars for one experiment's rows.

    Rows missing the metric (or with non-numeric values, e.g. DNF) are
    shown without a bar.
    """
    numeric = [
        columns[metric]
        for _label, columns in rows
        if isinstance(columns.get(metric), (int, float))
    ]
    top = max(numeric, default=0)
    lines = []
    for label, columns in rows:
        value = columns.get(metric)
        if isinstance(value, (int, float)) and top > 0:
            bar = "#" * max(1, round(width * value / top))
            rendered = f"{value:>12.3f}" if isinstance(value, float) else f"{value:>12d}"
            lines.append(f"  {label:36s} {rendered} {bar}")
        else:
            shown = value if value is not None else "-"
            lines.append(f"  {label:36s} {shown:>12} (no bar)")
    return lines


def render_report(text: str, metric: str = "seconds", width: int = 50) -> str:
    """Full ASCII report for a series_output.txt payload."""
    experiments = parse_series(text)
    out: list[str] = []
    for experiment, rows in experiments.items():
        out.append(f"== {experiment} ({metric}) ==")
        has_metric = any(metric in columns for _label, columns in rows)
        if has_metric:
            out.extend(render_bars(rows, metric=metric, width=width))
        else:
            fallback = next(
                (
                    key
                    for _label, columns in rows
                    for key, value in columns.items()
                    if isinstance(value, (int, float))
                ),
                None,
            )
            if fallback is None:
                out.append("  (no numeric columns)")
            else:
                out.append(f"  [falling back to metric {fallback!r}]")
                out.extend(render_bars(rows, metric=fallback, width=width))
        out.append("")
    return "\n".join(out)
