"""Candidate-pruning filters that sit between generation and verification.

See :mod:`repro.filters.bitmap` for the signature scheme and soundness
argument, :mod:`repro.filters.adapters` for the per-predicate
contracts, and :mod:`repro.filters.controller` for the adaptive on/off
decision. Enable via ``similarity_join(..., bitmap_filter=True)``, the
``--bitmap-filter`` CLI flag, or ``SimilarityIndex(bitmap_filter=...)``.
"""

from repro.filters.adapters import SoundnessAdapter, adapter_for
from repro.filters.bitmap import (
    BitmapFilterConfig,
    SignatureStore,
    bit_for_token,
    resolve_bitmap_filter,
)
from repro.filters.controller import AdaptiveController, NullController
from repro.filters.pruner import BitmapPruner

__all__ = [
    "AdaptiveController",
    "BitmapFilterConfig",
    "BitmapPruner",
    "NullController",
    "SignatureStore",
    "SoundnessAdapter",
    "adapter_for",
    "bit_for_token",
    "resolve_bitmap_filter",
]
