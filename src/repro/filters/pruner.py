"""The per-join bitmap-filter runtime: store + adapter + controller.

One :class:`BitmapPruner` is built per join execution (in
:meth:`SetJoinAlgorithm.join`) and consulted by ``_verify_pair`` before
each exact verification. Pairs it rejects never count as
``pairs_verified`` — that counter keeps meaning "exact verifications
performed", which is what the perf gate holds; the filter's own traffic
is visible in ``bitmap_checks``/``bitmap_rejects``.
"""

from __future__ import annotations

from repro.filters.adapters import adapter_for
from repro.filters.bitmap import BitmapFilterConfig, SignatureStore
from repro.filters.controller import AdaptiveController, NullController
from repro.predicates.base import WEIGHT_EPS

__all__ = ["BitmapPruner"]


class BitmapPruner:
    """Rejects candidate pairs whose weight cap cannot reach the threshold."""

    __slots__ = ("store", "bound", "adapter", "controller", "_const_threshold")

    def __init__(self, store: SignatureStore, bound, adapter, controller):
        self.store = store
        self.bound = bound
        self.adapter = adapter
        self.controller = controller
        # Constant-threshold predicates (overlap, cosine) pay the
        # threshold call once per run instead of once per check.
        self._const_threshold = (
            bound.threshold(0.0, 0.0) if adapter.constant_threshold else None
        )

    @classmethod
    def for_join(
        cls, bound, config: BitmapFilterConfig, counters=None
    ) -> "BitmapPruner | None":
        """Build the run's pruner, or None when no sound adapter exists."""
        adapter = adapter_for(bound)
        if adapter is None:
            return None
        store = SignatureStore.build(bound, config.width)
        if counters is not None:
            extra = counters.extra
            extra["bitmap_signatures_built"] = (
                extra.get("bitmap_signatures_built", 0) + len(store)
            )
        if config.adaptive:
            controller = AdaptiveController(config.sample_size, config.min_reject_rate)
        else:
            controller = NullController()
        return cls(store, bound, adapter, controller)

    def rejects(self, rid_a: int, rid_b: int, counters) -> bool:
        """True when the pair provably cannot match (skip verification)."""
        controller = self.controller
        if not controller.active:
            return False
        counters.bitmap_checks += 1
        cap = self.store.weight_cap(rid_a, rid_b)
        threshold = self._const_threshold
        if threshold is None:
            bound = self.bound
            threshold = bound.threshold(bound.norm(rid_a), bound.norm(rid_b))
        rejected = cap < threshold - WEIGHT_EPS
        if rejected:
            counters.bitmap_rejects += 1
        if not controller.decided:
            controller.observe(rejected, counters)
        return rejected
