"""Per-predicate soundness adapters for the bitmap filter.

The :class:`~repro.filters.bitmap.SignatureStore` proves *"the match
weight of this pair is at most C"*. Whether that licenses skipping
:meth:`BoundPredicate.verify` is a per-predicate argument — each adapter
below states it. ``adapter_for`` returns ``None`` when no sound
argument exists, and the filter silently stays off (sound by default:
an unknown predicate is never pruned).

The shared rejection rule, applied by the callers in
:mod:`repro.core.base` and :mod:`repro.core.service`::

    reject  iff  weight_cap(r, s) < pair_threshold(r, s) - WEIGHT_EPS

``verify`` accepts a pair when ``weight >= threshold - WEIGHT_EPS/10``
(see :meth:`BoundPredicate.satisfied`); rejection requires
``weight <= cap < threshold - WEIGHT_EPS < threshold - WEIGHT_EPS/10``,
strictly below the acceptance line, so no accepted pair is ever
rejected — regardless of float noise in the threshold itself. A
non-positive threshold never rejects (the cap is never negative).
"""

from __future__ import annotations

__all__ = ["SoundnessAdapter", "adapter_for"]


class SoundnessAdapter:
    """Base adapter: threshold lookup + the soundness contract.

    ``constant_threshold`` marks predicates whose ``threshold(r, s)``
    ignores the norms; callers may then evaluate it once per run
    instead of once per check.
    """

    name = "generic-weight"
    constant_threshold = False

    def pair_threshold(self, bound, rid_a: int, rid_b: int) -> float:
        """The exact threshold ``verify`` will test this pair against."""
        return bound.threshold(bound.norm(rid_a), bound.norm(rid_b))


class _OverlapAdapter(SoundnessAdapter):
    """|r ∩ s| >= t with unit scores: weight == intersection size, the
    cap bounds it directly, and ``verify`` is exactly the threshold
    test. Constant threshold ``t``."""

    name = "overlap"
    constant_threshold = True


class _WeightedOverlapAdapter(SoundnessAdapter):
    """sum of idf-style weights over r ∩ s >= t: scores are sqrt(weight)
    >= 0, so cap = ub * max_r * max_s dominates any sum of ``ub`` score
    products. Constant threshold ``t``."""

    name = "weighted-overlap"
    constant_threshold = True


class _JaccardAdapter(SoundnessAdapter):
    """jaccard >= f rewritten as weight >= f(|r|+|s|)/(1+f) (paper
    Table 1): unit scores, verify is the weight-threshold test, and the
    threshold depends only on the two norms the adapter passes through."""

    name = "jaccard"


class _CosineAdapter(SoundnessAdapter):
    """cosine >= f over unit-normalized TF-IDF vectors: scores are
    non-negative and at most ``max_score``, so the cap bounds the dot
    product. Constant threshold ``f``."""

    name = "cosine"
    constant_threshold = True


class _DiceAdapter(SoundnessAdapter):
    """dice >= f rewritten as weight >= f(|r|+|s|)/2: unit scores,
    verify is the weight-threshold test."""

    name = "dice"


class _OverlapCoefficientAdapter(SoundnessAdapter):
    """|r ∩ s| / min(|r|,|s|) >= f rewritten as weight >= f*min(norms):
    unit scores, verify is the weight-threshold test."""

    name = "overlap-coefficient"


class _HammingAdapter(SoundnessAdapter):
    """|r Δ s| <= k rewritten as weight >= (|r|+|s|-k)/2: unit scores,
    verify is the weight-threshold test."""

    name = "hamming"


class _EditDistanceQGramAdapter(SoundnessAdapter):
    """ed(r, s) <= k via the q-gram count bound (§5.2.3).

    ``verify`` runs a banded DP on the payload strings — *not* the
    weight-threshold test — so pruning needs the q-gram lemma:
    ``ed <= k`` implies the numbered-q-gram sets share at least
    ``threshold(norm_r, norm_s) = max(len_r, len_s) - 1 - q(k-1)``
    grams. With unit scores the match weight *is* the common-gram
    count, so a weight cap below that necessary bound proves
    ``ed > k`` and the DP would reject. Predicates declare the lemma
    holds via ``bitmap_qgram_bound = True``; without it this adapter
    must not be used (``use_signature_prefilter`` is False here, so
    there is no generic fallback either).
    """

    name = "edit-distance"


_ADAPTERS: dict[str, SoundnessAdapter] = {
    adapter.name: adapter
    for adapter in (
        _OverlapAdapter(),
        _WeightedOverlapAdapter(),
        _JaccardAdapter(),
        _CosineAdapter(),
        _DiceAdapter(),
        _OverlapCoefficientAdapter(),
        _HammingAdapter(),
        _EditDistanceQGramAdapter(),
    )
}

_GENERIC = SoundnessAdapter()


def adapter_for(bound) -> SoundnessAdapter | None:
    """The soundness adapter for ``bound``, or None (filter stays off).

    Dispatches on :meth:`similarity_name`. Unknown predicates fall back
    to the generic weight adapter only when they declare
    ``use_signature_prefilter`` — the same "verify is the match-weight
    threshold test" contract the 64-bit prefilter already relies on.
    """
    name = bound.similarity_name()
    if name == "edit-distance":
        if getattr(bound, "bitmap_qgram_bound", False):
            return _ADAPTERS[name]
        return None
    adapter = _ADAPTERS.get(name)
    if adapter is not None:
        return adapter
    if getattr(bound, "use_signature_prefilter", False):
        return _GENERIC
    return None
