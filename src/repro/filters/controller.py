"""Adaptive on/off controller for the bitmap filter.

A bitmap check is cheap but not free; on candidate streams that almost
always verify (MergeOpt hands the driver candidates whose match weight
is already known to clear the threshold) the filter is pure overhead.
The controller samples the first ``sample_size`` checks and switches
the filter off for the remainder of the run when the measured reject
rate cannot pay for the checks.

The decision is **count-based, never time-based**: it is a pure
function of the (deterministic) reject sequence, so
``bitmap_checks``/``bitmap_rejects`` counters stay machine-independent
and the perf gate can hold them. Wall-clock never enters. Note the
decision only changes *which candidates get checked* — the emitted
pair set is identical either way, because the filter is sound.
"""

from __future__ import annotations

__all__ = ["AdaptiveController", "NullController"]


class NullController:
    """Always-on stand-in used when ``adaptive=False``."""

    __slots__ = ()
    active = True
    decided = True

    def observe(self, rejected: bool, counters) -> None:
        pass

    def state(self) -> dict:
        return {"adaptive": False, "active": True}


class AdaptiveController:
    """Sample the first N checks; disable on a low reject rate.

    Thread-safety note: the serving path shares one controller across
    concurrent readers. ``observe`` races are benign — int updates may
    lose a count, shifting the decision boundary by a few samples, but
    both possible decisions are sound and results are unaffected.
    """

    __slots__ = ("sample_size", "min_reject_rate", "checks", "rejects", "active", "decided")

    def __init__(self, sample_size: int = 512, min_reject_rate: float = 0.05):
        self.sample_size = sample_size
        self.min_reject_rate = min_reject_rate
        self.checks = 0
        self.rejects = 0
        self.active = True
        self.decided = False

    def observe(self, rejected: bool, counters) -> None:
        """Record one check outcome; decide once the window fills."""
        if self.decided:
            return
        self.checks += 1
        if rejected:
            self.rejects += 1
        if self.checks >= self.sample_size:
            self.decided = True
            self.active = self.rejects >= self.min_reject_rate * self.checks
            if not self.active and counters is not None:
                extra = counters.extra
                extra["bitmap_disabled"] = extra.get("bitmap_disabled", 0) + 1

    def state(self) -> dict:
        """Introspection snapshot (serving health endpoint, tests)."""
        return {
            "adaptive": True,
            "active": self.active,
            "decided": self.decided,
            "sampled_checks": self.checks,
            "sampled_rejects": self.rejects,
        }
