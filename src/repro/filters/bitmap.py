"""Bitmap-signature candidate pruning (the filters subsystem core).

Every record gets a fixed-width bitmap signature: a Python int used as a
bitset, with each token hashed to one bit position. From two signatures
and the precomputed set sizes a popcount gives a sound upper bound on
the intersection size — and, scaled by each record's maximum token
score, a sound upper bound on the pair's match weight. Candidates whose
weight cap cannot reach the pair threshold are rejected *before* the
exact verification that dominates probe-algorithm cost (the Bitmap
Filter idea of Sandes et al., arXiv:1711.07295, transplanted from
sequence alignment to set joins).

Soundness of the intersection bound: each token sets exactly one bit,
so every bit set in ``sig_r`` but absent from ``sig_s`` witnesses at
least one token of ``r`` that ``s`` cannot contain. Hence::

    |r \\ s| >= popcount(sig_r & ~sig_s) = pop_r - popcount(sig_r & sig_s)
    |r ∩ s| <= |r| - pop_r + popcount(sig_r & sig_s)

symmetrically in ``s``; the bound used is the min of the two. Note the
naive ``popcount(sig_r & sig_s)`` is *not* an upper bound on the
intersection (collisions can fold many common tokens onto one bit);
only the set-difference form above is sound.

The weight cap multiplies the intersection bound by the two records'
maximum token scores (all predicate scores in this package are
non-negative), so ``weight(r, s) <= ub * max_score_r * max_score_s``.
Whether "weight cap below threshold" licenses skipping verification is
predicate-specific; :mod:`repro.filters.adapters` holds that argument.

Bit assignment must be a pure function of the token id — parallel
workers rebuild signatures in forked *and spawned* processes and their
reject decisions must agree with the parent's replay, so no dependence
on hash randomization is allowed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BitmapFilterConfig",
    "SignatureStore",
    "bit_for_token",
    "resolve_bitmap_filter",
]

#: Fibonacci-hashing multiplier (odd, near 2**64 / golden ratio): spreads
#: consecutive token ids across bit positions far better than ``% width``.
_MIX = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def bit_for_token(token: int, width: int) -> int:
    """Deterministic bit position of ``token`` in a ``width``-bit signature."""
    return (((token + 1) * _MIX & _MASK64) >> 32) % width


@dataclass(frozen=True)
class BitmapFilterConfig:
    """Knobs for the bitmap candidate filter.

    Attributes:
        width: signature width in bits. Wider signatures collide less
            (tighter intersection bounds, more rejects) but cost more
            per popcount; 128 bits covers typical record sizes of
            20-60 tokens well.
        adaptive: when True, an :class:`~repro.filters.controller.AdaptiveController`
            samples the first ``sample_size`` checks and switches the
            filter off for the rest of the run if the measured reject
            rate is below ``min_reject_rate`` — data where candidates
            almost always verify (e.g. MergeOpt's weight-complete
            candidates) then pay only the sampling window.
        sample_size: number of checks in the sampling window.
        min_reject_rate: minimum sampled reject rate that keeps the
            filter on. The default 0.05 reflects a check costing well
            under 1/20th of an exact verification.
    """

    width: int = 128
    adaptive: bool = True
    sample_size: int = 512
    min_reject_rate: float = 0.05

    def __post_init__(self):
        if self.width < 8:
            raise ValueError(f"bitmap width must be >= 8 bits, got {self.width}")
        if self.sample_size < 1:
            raise ValueError(
                f"adaptive sample size must be >= 1, got {self.sample_size}"
            )
        if not 0.0 <= self.min_reject_rate <= 1.0:
            raise ValueError(
                f"min reject rate must be in [0, 1], got {self.min_reject_rate}"
            )


def resolve_bitmap_filter(value) -> BitmapFilterConfig | None:
    """Normalize the public ``bitmap_filter=`` knob.

    Accepts ``None``/``False`` (off), ``True`` (defaults), an int
    (signature width), or a :class:`BitmapFilterConfig`.
    """
    if value is None or value is False:
        return None
    if value is True:
        return BitmapFilterConfig()
    if isinstance(value, BitmapFilterConfig):
        return value
    if isinstance(value, int):
        return BitmapFilterConfig(width=value)
    raise TypeError(
        "bitmap_filter must be None, a bool, an int width, or a"
        f" BitmapFilterConfig, got {type(value).__name__}"
    )


class SignatureStore:
    """Per-record ``(signature, popcount, size, max_score)`` entries.

    Built once per join (or maintained incrementally by
    :class:`~repro.core.service.SimilarityIndex`) and shared by every
    check. Entries are plain tuples so the hot path is two list loads,
    one AND, and one ``int.bit_count()``.
    """

    __slots__ = ("width", "_entries")

    def __init__(self, width: int):
        self.width = width
        self._entries: list[tuple[int, int, int, float]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, rid: int) -> tuple[int, int, int, float]:
        return self._entries[rid]

    def signatures(self) -> list[int]:
        """The raw signature ints, for snapshot persistence."""
        return [entry[0] for entry in self._entries]

    def components_for(
        self, tokens, scores
    ) -> tuple[int, int, int, float]:
        """Build one entry without storing it (ephemeral probe records).

        Sound for probes whose unseen tokens got ephemeral ids: extra
        tokens only *add* bits, which can only loosen (never tighten)
        the intersection bound against indexed records.
        """
        width = self.width
        sig = 0
        for token in tokens:
            sig |= 1 << (((token + 1) * _MIX & _MASK64) >> 32) % width
        return (sig, sig.bit_count(), len(tokens), max(scores, default=0.0))

    def append(self, tokens, scores) -> None:
        """Add the next record's entry (rids are dense and in order)."""
        self._entries.append(self.components_for(tokens, scores))

    @classmethod
    def build(cls, bound, width: int) -> "SignatureStore":
        """Signatures for every record of ``bound``'s dataset."""
        store = cls(width)
        store.extend_from(bound, 0)
        return store

    def extend_from(self, bound, start: int) -> None:
        """Append entries for records ``start..len(dataset)`` (incremental
        maintenance after :meth:`SimilarityIndex.add`)."""
        dataset = bound.dataset
        append = self._entries.append
        width = self.width
        for rid in range(start, len(dataset)):
            tokens = dataset[rid]
            sig = 0
            for token in tokens:
                sig |= 1 << (((token + 1) * _MIX & _MASK64) >> 32) % width
            append(
                (
                    sig,
                    sig.bit_count(),
                    len(tokens),
                    max(bound.cached_score_vector(rid), default=0.0),
                )
            )

    @classmethod
    def restore(cls, width: int, signatures: list[int], bound) -> "SignatureStore":
        """Rebuild entries from persisted signatures (snapshot load).

        Popcounts/sizes/max-scores are derived, not persisted — the
        signature hashing pass is the part worth skipping. The caller
        must have verified ``len(signatures) == len(bound.dataset)``.
        """
        store = cls(width)
        dataset = bound.dataset
        mask = (1 << width) - 1
        for rid, sig in enumerate(signatures):
            sig &= mask
            store._entries.append(
                (
                    sig,
                    sig.bit_count(),
                    len(dataset[rid]),
                    max(bound.cached_score_vector(rid), default=0.0),
                )
            )
        return store

    # ------------------------------------------------------------------
    # The bound itself
    # ------------------------------------------------------------------

    def weight_cap(self, rid_a: int, rid_b: int) -> float:
        """Upper bound on ``match_weight(rid_a, rid_b)``; see module doc."""
        entries = self._entries
        sig_a, pop_a, size_a, max_a = entries[rid_a]
        sig_b, pop_b, size_b, max_b = entries[rid_b]
        inter = (sig_a & sig_b).bit_count()
        ub = size_a - pop_a + inter
        ub_b = size_b - pop_b + inter
        if ub_b < ub:
            ub = ub_b
        if ub <= 0:
            return 0.0
        return ub * max_a * max_b

    def weight_cap_entry(
        self, entry: tuple[int, int, int, float], rid_b: int
    ) -> float:
        """Like :meth:`weight_cap` with one side an unstored probe entry."""
        sig_a, pop_a, size_a, max_a = entry
        sig_b, pop_b, size_b, max_b = self._entries[rid_b]
        inter = (sig_a & sig_b).bit_count()
        ub = size_a - pop_a + inter
        ub_b = size_b - pop_b + inter
        if ub_b < ub:
            ub = ub_b
        if ub <= 0:
            return 0.0
        return ub * max_a * max_b
