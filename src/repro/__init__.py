"""repro — a reproduction of "Efficient set joins on similarity
predicates" (Sarawagi & Kirpal, SIGMOD 2004).

Exact set-similarity self-joins under T-overlap, Jaccard, cosine/TF-IDF
and edit-distance predicates, with every algorithm and optimization from
the paper: Probe-Count (plus stopwords / MergeOpt / online / pre-sort
variants), Pair-Count, Word-Groups, Probe-Cluster, and the
limited-memory two-phase ClusterMem.

Quickstart::

    from repro import Dataset, JaccardPredicate, similarity_join
    from repro.text import tokenize_words

    data = Dataset.from_texts(
        ["efficient set joins", "set joins made efficient", "unrelated"],
        tokenize_words,
    )
    result = similarity_join(data, JaccardPredicate(0.5))
    for pair in result.sorted_pairs():
        print(pair.rid_a, pair.rid_b, f"jaccard={pair.similarity:.2f}")
"""

from repro.approx import ApproxJoin, estimate_recall
from repro.core.cluster_mem import ClusterMemJoin, MemoryBudget
from repro.core.dedupe import connected_components, dedupe_texts
from repro.core.join import (
    ALGORITHMS,
    edit_distance_join,
    hamming_join,
    make_algorithm,
    similarity_join,
)
from repro.core.naive import NaiveJoin
from repro.core.topk import TopKJoin
from repro.core.pair_count import PairCountJoin, PairTableOverflow
from repro.core.positional_filter import PositionalFilterJoin
from repro.core.prefix_filter import PrefixFilterJoin
from repro.core.probe_cluster import ProbeClusterJoin
from repro.core.probe_count import ProbeCountJoin
from repro.core.records import Dataset
from repro.core.results import JoinResult, MatchPair
from repro.core.word_groups import WordGroupsJoin
from repro.core.service import SimilarityIndex
from repro.filters import BitmapFilterConfig
from repro.parallel import PARALLEL_ALGORITHMS, parallel_join
from repro.evaluation import MatchQuality, pair_quality, threshold_sweep
from repro.predicates import (
    CosinePredicate,
    DicePredicate,
    EditDistancePredicate,
    HammingPredicate,
    JaccardPredicate,
    OverlapCoefficientPredicate,
    OverlapPredicate,
    WeightedOverlapPredicate,
)
from repro.runtime import (
    CancellationToken,
    CheckpointMismatch,
    ConcurrentMutation,
    JoinCancelled,
    JoinCheckpointer,
    JoinContext,
    JoinInterrupted,
    JoinRuntimeError,
    JoinTimeout,
    MemoryBudgetExceeded,
    SnapshotCorrupted,
    SnapshotEncodingError,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "ApproxJoin",
    "BitmapFilterConfig",
    "CancellationToken",
    "CheckpointMismatch",
    "ClusterMemJoin",
    "ConcurrentMutation",
    "CosinePredicate",
    "Dataset",
    "DicePredicate",
    "EditDistancePredicate",
    "JaccardPredicate",
    "JoinCancelled",
    "JoinCheckpointer",
    "JoinContext",
    "JoinInterrupted",
    "JoinResult",
    "JoinRuntimeError",
    "JoinTimeout",
    "MatchPair",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "NaiveJoin",
    "SnapshotCorrupted",
    "SnapshotEncodingError",
    "OverlapCoefficientPredicate",
    "OverlapPredicate",
    "PARALLEL_ALGORITHMS",
    "PairCountJoin",
    "PairTableOverflow",
    "HammingPredicate",
    "MatchQuality",
    "PositionalFilterJoin",
    "PrefixFilterJoin",
    "ProbeClusterJoin",
    "ProbeCountJoin",
    "SimilarityIndex",
    "TopKJoin",
    "WeightedOverlapPredicate",
    "WordGroupsJoin",
    "connected_components",
    "dedupe_texts",
    "edit_distance_join",
    "estimate_recall",
    "hamming_join",
    "make_algorithm",
    "pair_quality",
    "parallel_join",
    "similarity_join",
    "threshold_sweep",
    "__version__",
]
