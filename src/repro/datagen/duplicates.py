"""Near-duplicate perturbations.

The paper's data-cleaning motivation is deduplicating text records; its
citation corpus in particular contains many high-overlap record groups
(the structure Probe-Cluster exploits, §3.4). These perturbations turn a
clean record string into a realistic near-duplicate: typos, dropped or
swapped words, abbreviations — the error modes of hand-entered citations
and addresses.
"""

from __future__ import annotations

import random

__all__ = ["make_typo", "perturb_text"]

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def make_typo(word: str, rng: random.Random) -> str:
    """One character-level error: substitute, delete, insert, or swap."""
    if not word:
        return word
    kind = rng.randrange(4)
    position = rng.randrange(len(word))
    if kind == 0:  # substitution
        return word[:position] + rng.choice(_LETTERS) + word[position + 1 :]
    if kind == 1 and len(word) > 1:  # deletion
        return word[:position] + word[position + 1 :]
    if kind == 2:  # insertion
        return word[:position] + rng.choice(_LETTERS) + word[position:]
    if position + 1 < len(word):  # transposition
        return (
            word[:position]
            + word[position + 1]
            + word[position]
            + word[position + 2 :]
        )
    return word


def perturb_text(text: str, rng: random.Random, n_edits: int = 2) -> str:
    """Apply ``n_edits`` word-level perturbations to a record string.

    Each edit is one of: typo in a word, word drop, adjacent-word swap,
    abbreviation (keep first letter + period). The result is a plausible
    near-duplicate with high but imperfect set overlap.
    """
    words = text.split()
    for _ in range(n_edits):
        if not words:
            break
        kind = rng.randrange(4)
        position = rng.randrange(len(words))
        if kind == 0:
            words[position] = make_typo(words[position], rng)
        elif kind == 1 and len(words) > 3:
            del words[position]
        elif kind == 2 and position + 1 < len(words):
            words[position], words[position + 1] = words[position + 1], words[position]
        elif words[position] and len(words[position]) > 2:
            words[position] = words[position][0] + "."
    return " ".join(words)
