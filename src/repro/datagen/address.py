"""Synthetic address corpus (stand-in for the paper's Pune address data).

The paper's Address dataset: 500k records with attributes "lastname,
firstname, middlename, Address1..Address6, Pin" collected from utilities
and government offices of Pune, India. Derived set statistics (Table 1):
All-3grams averages 47 elements over ~37k distinct grams; Name-3grams
averages 16 over ~14k.

The generator produces Indian-style names and Pune-flavoured address
lines, with a *lower* duplicate rate than the citation corpus — the
address data has fewer high-overlap sets (§3.4 observes Probe-Cluster
gains more on the citation data for exactly this reason). Addresses
share locality/city suffixes heavily, which produces the skewed 3-gram
frequencies the merge optimizations feed on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.duplicates import perturb_text
from repro.datagen.zipf import pseudo_word

__all__ = ["AddressGenerator", "AddressRecord"]

_SURNAMES = [
    "patil", "kulkarni", "deshpande", "joshi", "shinde", "jadhav", "pawar",
    "more", "kale", "gaikwad", "chavan", "bhosale", "sawant", "desai",
    "naik", "thorat", "salunkhe", "kadam", "mane", "shelar",
]
_FIRSTNAMES = [
    "sunita", "alok", "rajesh", "priya", "amit", "sneha", "vijay", "anita",
    "suresh", "kavita", "ramesh", "deepa", "sanjay", "meena", "ashok",
    "rekha", "prakash", "smita", "ganesh", "lata",
]
_LOCALITIES = [
    "shivaji nagar", "kothrud", "aundh", "baner", "hadapsar", "katraj",
    "karve nagar", "deccan gymkhana", "camp area", "wakad", "hinjewadi",
    "viman nagar", "kalyani nagar", "swargate", "parvati",
]
_STREET_KINDS = ["road", "marg", "lane", "path", "chowk", "society", "colony"]
_BUILDING_KINDS = ["apartment", "heights", "residency", "complex", "bhavan", "niwas"]


@dataclass(frozen=True)
class AddressRecord:
    """One synthetic name-and-address record."""

    lastname: str
    firstname: str
    middlename: str
    address_lines: tuple[str, ...]
    pin: str

    def name_text(self) -> str:
        """The name fields only (the Name-3grams function of Table 1)."""
        return f"{self.firstname} {self.middlename} {self.lastname}"

    def text(self) -> str:
        """The full record string (the All-3grams function of Table 1)."""
        return f"{self.name_text()} {' '.join(self.address_lines)} {self.pin}"


class AddressGenerator:
    """Deterministic synthetic address corpus.

    Args:
        seed: RNG seed.
        duplicate_fraction: fraction of emitted records that are
            near-duplicates of an earlier base record (lower than the
            citation corpus by design).
    """

    def __init__(self, seed: int = 0, duplicate_fraction: float = 0.12):
        if not 0.0 <= duplicate_fraction < 1.0:
            raise ValueError(
                f"duplicate_fraction must be in [0, 1), got {duplicate_fraction}"
            )
        self.seed = seed
        self.duplicate_fraction = duplicate_fraction

    def generate(self, n: int) -> list[AddressRecord]:
        """``n`` address records, duplicates interleaved."""
        records, _groups = self.generate_labeled(n)
        return records

    def generate_labeled(self, n: int) -> tuple[list[AddressRecord], list[int]]:
        """Records plus ground-truth duplicate-group labels."""
        rng = random.Random(self.seed)
        extra_surnames = [pseudo_word(rng, 2, 3) for _ in range(max(20, n // 100))]
        extra_streets = [pseudo_word(rng, 2, 3) for _ in range(max(30, n // 60))]
        records: list[AddressRecord] = []
        group_ids: list[int] = []
        next_group = 0
        while len(records) < n:
            base = self._base_record(rng, extra_surnames, extra_streets)
            records.append(base)
            group_ids.append(next_group)
            if len(records) < n and rng.random() < self.duplicate_fraction:
                records.append(self._near_duplicate(base, rng))
                group_ids.append(next_group)
            next_group += 1
        return records[:n], group_ids[:n]

    # ------------------------------------------------------------------

    def _base_record(
        self,
        rng: random.Random,
        extra_surnames: list[str],
        extra_streets: list[str],
    ) -> AddressRecord:
        surname_pool = _SURNAMES if rng.random() < 0.7 else extra_surnames
        street = rng.choice(extra_streets) if rng.random() < 0.5 else rng.choice(_LOCALITIES)
        lines = (
            f"{rng.randint(1, 999)}",
            f"{street} {rng.choice(_STREET_KINDS)}",
            "pune",
        )
        return AddressRecord(
            lastname=rng.choice(surname_pool),
            firstname=rng.choice(_FIRSTNAMES),
            middlename=rng.choice(_FIRSTNAMES) if rng.random() < 0.6 else "",
            address_lines=lines,
            pin=f"4110{rng.randint(10, 68):02d}",
        )

    def _near_duplicate(self, base: AddressRecord, rng: random.Random) -> AddressRecord:
        lines = tuple(
            perturb_text(line, rng, n_edits=1) if rng.random() < 0.5 else line
            for line in base.address_lines
        )
        return AddressRecord(
            lastname=perturb_text(base.lastname, rng, 1) if rng.random() < 0.3 else base.lastname,
            firstname=base.firstname,
            middlename="" if rng.random() < 0.3 else base.middlename,
            address_lines=lines,
            pin=base.pin,
        )
