"""Zipfian pseudo-word vocabularies.

Real text corpora have heavily skewed word frequencies — the property
MergeOpt exploits ("most real-life datasets follow an extremely skewed
distribution of the frequency of occurrence of words", §3.1). This
module builds deterministic pseudo-word vocabularies and samples from
them under a Zipf law with configurable exponent.
"""

from __future__ import annotations

import random
from bisect import bisect_left

__all__ = ["ZipfVocabulary", "pseudo_word"]

_ONSETS = [
    "b", "br", "c", "ch", "cr", "d", "dr", "f", "fl", "g", "gr", "h", "j",
    "k", "kl", "l", "m", "n", "p", "pr", "qu", "r", "s", "sh", "sk", "sl",
    "st", "t", "th", "tr", "v", "w", "z",
]
_NUCLEI = ["a", "ai", "e", "ea", "i", "o", "oo", "u", "ou"]
_CODAS = ["", "b", "d", "g", "k", "l", "m", "n", "ng", "r", "s", "t", "x"]


def pseudo_word(rng: random.Random, min_syllables: int = 2, max_syllables: int = 4) -> str:
    """A pronounceable deterministic pseudo-word."""
    n_syllables = rng.randint(min_syllables, max_syllables)
    parts = []
    for _ in range(n_syllables):
        parts.append(rng.choice(_ONSETS) + rng.choice(_NUCLEI) + rng.choice(_CODAS))
    return "".join(parts)


class ZipfVocabulary:
    """A fixed vocabulary sampled under a Zipf law.

    Args:
        size: number of distinct words.
        exponent: Zipf exponent ``s``; rank ``i`` has probability
            proportional to ``1 / (i + 1)^s``. Natural-language corpora
            sit near ``s = 1``.
        rng: the source of randomness (word shapes and sampling).
    """

    def __init__(
        self,
        size: int,
        exponent: float = 1.0,
        rng: random.Random | None = None,
        syllables: tuple[int, int] = (2, 4),
    ):
        if size < 1:
            raise ValueError(f"vocabulary size must be >= 1, got {size}")
        self.rng = rng if rng is not None else random.Random(0)
        seen: set[str] = set()
        words: list[str] = []
        while len(words) < size:
            word = pseudo_word(self.rng, *syllables)
            if word not in seen:
                seen.add(word)
                words.append(word)
        self.words = words
        cumulative: list[float] = []
        total = 0.0
        for rank in range(size):
            total += 1.0 / (rank + 1.0) ** exponent
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def __len__(self) -> int:
        return len(self.words)

    def sample(self) -> str:
        """One word, Zipf-distributed by rank."""
        u = self.rng.random() * self._total
        return self.words[bisect_left(self._cumulative, u)]

    def sample_distinct(self, k: int) -> list[str]:
        """``k`` distinct Zipf-distributed words (k <= size)."""
        if k > len(self.words):
            raise ValueError(f"cannot sample {k} distinct words from {len(self.words)}")
        out: dict[str, None] = {}
        while len(out) < k:
            out.setdefault(self.sample(), None)
        return list(out)
