"""Synthetic citation corpus (stand-in for the paper's CiteSeer dump).

The paper's Citation dataset: 250k citation strings obtained by
searching CiteSeer for the 100 most-referenced author last names,
segmented into author / title / year / pages / rest. Derived set
statistics (Table 1): All-words averages 24 elements over ~70k distinct
words; All-3grams averages 127 over ~29k.

This generator matches that shape: Zipfian title vocabulary, author
names drawn from a skewed pool (a CiteSeer crawl by frequent authors is
heavily author-skewed), and a substantial fraction of near-duplicate
citation groups — the same paper cited with typos, dropped words and
abbreviated names — which is what gives the citation data "lot more
high-overlap sets than the address dataset" (§3.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.duplicates import perturb_text
from repro.datagen.zipf import ZipfVocabulary, pseudo_word

__all__ = ["CitationGenerator", "CitationRecord"]

_VENUES = [
    "proceedings of sigmod",
    "proceedings of vldb",
    "proceedings of icde",
    "acm transactions on database systems",
    "journal of algorithms",
    "proceedings of kdd",
    "ieee transactions on knowledge and data engineering",
    "proceedings of the www conference",
    "information systems",
    "proceedings of soda",
]


@dataclass(frozen=True)
class CitationRecord:
    """One synthetic citation."""

    authors: tuple[str, ...]
    title: str
    venue: str
    year: int
    pages: str

    def text(self) -> str:
        """The flat citation string (the paper's raw record form)."""
        return (
            f"{' '.join(self.authors)} {self.title} {self.venue}"
            f" {self.year} pages {self.pages}"
        )


class CitationGenerator:
    """Deterministic synthetic citation corpus.

    Args:
        seed: RNG seed; every call sequence is reproducible.
        duplicate_fraction: fraction of emitted records that are
            near-duplicates of an earlier base citation.
        max_group: maximum near-duplicate group size (a popular paper
            re-cited many times, each copy slightly different).
    """

    def __init__(
        self,
        seed: int = 0,
        duplicate_fraction: float = 0.5,
        max_group: int = 8,
    ):
        if not 0.0 <= duplicate_fraction < 1.0:
            raise ValueError(
                f"duplicate_fraction must be in [0, 1), got {duplicate_fraction}"
            )
        self.seed = seed
        self.duplicate_fraction = duplicate_fraction
        self.max_group = max_group

    def generate(self, n: int) -> list[CitationRecord]:
        """``n`` citations, duplicates interleaved with their bases."""
        records, _groups = self.generate_labeled(n)
        return records

    def generate_labeled(self, n: int) -> tuple[list[CitationRecord], list[int]]:
        """Citations plus ground-truth duplicate-group labels.

        Returns ``(records, group_ids)``: records sharing a group id are
        near-duplicates of the same base citation. The labels make the
        corpus usable for match-quality evaluation
        (:mod:`repro.evaluation`).
        """
        rng = random.Random(self.seed)
        # Vocabulary sizes scale with the corpus like the paper's
        # (70k distinct words at 250k records ≈ 0.28 per record).
        title_vocab = ZipfVocabulary(
            max(300, int(n * 0.55)),
            exponent=1.05,
            rng=random.Random(self.seed + 1),
            syllables=(1, 3),
        )
        surnames = [pseudo_word(rng, 1, 3) for _ in range(max(60, n // 50))]
        firstnames = [pseudo_word(rng, 1, 2) for _ in range(max(40, n // 80))]
        # A CiteSeer crawl keyed on 100 frequent authors: author choice is
        # skewed to a small hot set.
        hot_surnames = surnames[: max(10, len(surnames) // 10)]

        records: list[CitationRecord] = []
        group_ids: list[int] = []
        next_group = 0
        while len(records) < n:
            base = self._base_citation(rng, title_vocab, surnames, hot_surnames, firstnames)
            records.append(base)
            group_ids.append(next_group)
            if len(records) < n and rng.random() < self.duplicate_fraction:
                group = rng.randint(1, self.max_group - 1)
                for _ in range(group):
                    if len(records) >= n:
                        break
                    records.append(self._near_duplicate(base, rng))
                    group_ids.append(next_group)
            next_group += 1
        return records[:n], group_ids[:n]

    # ------------------------------------------------------------------

    def _base_citation(
        self,
        rng: random.Random,
        title_vocab: ZipfVocabulary,
        surnames: list[str],
        hot_surnames: list[str],
        firstnames: list[str],
    ) -> CitationRecord:
        n_authors = rng.randint(1, 4)
        authors = []
        for author_idx in range(n_authors):
            pool = hot_surnames if (author_idx == 0 and rng.random() < 0.6) else surnames
            authors.append(f"{rng.choice(firstnames)} {rng.choice(pool)}")
        n_title_words = rng.randint(7, 14)
        title = " ".join(title_vocab.sample() for _ in range(n_title_words))
        first_page = rng.randint(1, 800)
        return CitationRecord(
            authors=tuple(authors),
            title=title,
            venue=rng.choice(_VENUES),
            year=rng.randint(1975, 2003),
            pages=f"{first_page}-{first_page + rng.randint(5, 30)}",
        )

    def _near_duplicate(
        self, base: CitationRecord, rng: random.Random
    ) -> CitationRecord:
        perturbed_title = perturb_text(base.title, rng, n_edits=rng.randint(1, 2))
        perturbed_authors = tuple(
            perturb_text(author, rng, n_edits=1) if rng.random() < 0.4 else author
            for author in base.authors
        )
        year = base.year if rng.random() < 0.8 else base.year + rng.choice((-1, 1))
        return CitationRecord(
            authors=perturbed_authors,
            title=perturbed_title,
            venue=base.venue,
            year=year,
            pages=base.pages,
        )
