"""Synthetic datasets standing in for the paper's proprietary corpora.

The paper evaluates on (a) 250k CiteSeer citation strings and (b) 500k
name/address records from Pune utilities — neither is available. These
generators produce corpora with the same *statistical shape*: Zipfian
word frequencies, Table-1 average set sizes, and injected near-duplicate
clusters (many high-overlap records in the citation data, fewer in the
address data). The join algorithms' costs depend only on that shape, not
on record semantics, so every experiment's comparison remains meaningful
(see DESIGN.md "Substitutions").

The four Table-1 "similarity functions" are exposed as dataset builders:

========================  =========================================
``citation_all_words``    all words of a citation (paper avg 24)
``citation_all_3grams``   all 3-grams of a citation (paper avg 127)
``address_all_3grams``    all 3-grams of an address (paper avg 47)
``address_name_3grams``   3-grams of the name fields (paper avg 16)
========================  =========================================
"""

from repro.core.records import Dataset
from repro.datagen.address import AddressGenerator, AddressRecord
from repro.datagen.citation import CitationGenerator, CitationRecord
from repro.text.tokenizers import tokenize_qgrams, tokenize_words

__all__ = [
    "AddressGenerator",
    "AddressRecord",
    "CitationGenerator",
    "CitationRecord",
    "address_all_3grams",
    "address_name_3grams",
    "citation_all_3grams",
    "citation_all_words",
]


def citation_all_words(n: int, seed: int = 0) -> Dataset:
    """All-words sets over a synthetic citation corpus (Table 1 row 1)."""
    texts = [record.text() for record in CitationGenerator(seed=seed).generate(n)]
    return Dataset.from_texts(texts, tokenize_words)


def citation_all_3grams(n: int, seed: int = 0) -> Dataset:
    """All-3grams sets over a synthetic citation corpus (Table 1 row 2)."""
    texts = [record.text() for record in CitationGenerator(seed=seed).generate(n)]
    return Dataset.from_texts(texts, tokenize_qgrams)


def address_all_3grams(n: int, seed: int = 0) -> Dataset:
    """All-3grams sets over a synthetic address corpus (Table 1 row 3)."""
    texts = [record.text() for record in AddressGenerator(seed=seed).generate(n)]
    return Dataset.from_texts(texts, tokenize_qgrams)


def address_name_3grams(n: int, seed: int = 0) -> Dataset:
    """Name-3grams sets over a synthetic address corpus (Table 1 row 4)."""
    records = AddressGenerator(seed=seed).generate(n)
    names = [record.name_text() for record in records]
    full = [record.text() for record in records]
    return Dataset(
        Dataset.from_texts(names, tokenize_qgrams).records,
        vocabulary=None,
        payloads=full,
    )
