"""Apriori frequent-itemset mining with tid-lists (Agrawal & Srikant).

A vertical-format implementation: each itemset carries the sorted list of
transaction ids (tid-list) containing it, so support counting is a sorted
intersection — the natural fit for the Word-Groups join, which needs the
record groups, not just supports.

Word-Groups runs this at the unusually low support of 2, which mainstream
miners are not designed for (the paper's point); the implementation is
still careful to prune aggressively.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["AprioriMiner", "generate_candidates", "intersect_sorted"]


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Intersection of two sorted id lists (merge-based)."""
    out: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def generate_candidates(level: list[tuple[int, ...]]) -> Iterable[tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]]:
    """Apriori join step: pairs of k-itemsets sharing a (k-1)-prefix.

    ``level`` must hold sorted item tuples. Yields
    ``(candidate, parent_a, parent_b)`` with ``candidate`` sorted.
    """
    by_prefix: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
    for itemset in level:
        by_prefix.setdefault(itemset[:-1], []).append(itemset)
    for prefix, members in by_prefix.items():
        members.sort()
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                yield prefix + (a[-1], b[-1]), a, b


class AprioriMiner:
    """Level-wise miner over transactions of integer items.

    Args:
        min_support: minimum number of transactions per itemset.
        max_items: optional cap on itemset cardinality.

    ``mine`` returns ``{itemset: tidlist}`` for every frequent itemset.
    """

    def __init__(self, min_support: int = 2, max_items: int | None = None):
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        self.min_support = min_support
        self.max_items = max_items

    def first_level(
        self, transactions: Sequence[Sequence[int]]
    ) -> dict[tuple[int, ...], list[int]]:
        """Frequent 1-itemsets with their tid-lists."""
        tidlists: dict[int, list[int]] = {}
        for tid, items in enumerate(transactions):
            for item in set(items):
                tidlists.setdefault(item, []).append(tid)
        return {
            (item,): tids
            for item, tids in tidlists.items()
            if len(tids) >= self.min_support
        }

    def next_level(
        self, level: dict[tuple[int, ...], list[int]]
    ) -> dict[tuple[int, ...], list[int]]:
        """Grow one level: join, intersect tid-lists, prune by support."""
        out: dict[tuple[int, ...], list[int]] = {}
        keys = list(level.keys())
        for candidate, parent_a, parent_b in generate_candidates(keys):
            tids = intersect_sorted(level[parent_a], level[parent_b])
            if len(tids) >= self.min_support:
                out[candidate] = tids
        return out

    def mine(
        self, transactions: Sequence[Sequence[int]]
    ) -> dict[tuple[int, ...], list[int]]:
        """All frequent itemsets (every level) with tid-lists."""
        result: dict[tuple[int, ...], list[int]] = {}
        level = self.first_level(transactions)
        size = 1
        while level:
            result.update(level)
            if self.max_items is not None and size >= self.max_items:
                break
            level = self.next_level(level)
            size += 1
        return result
