"""FP-growth frequent-itemset mining (Han, Pei, Yin & Mao).

The paper mentions an FP-growth-based Word-Groups implementation that
"took much less memory but did not complete in two hours" at support 2;
we provide the miner as a substrate (it is property-tested against the
Apriori miner) and keep Apriori as the default engine for Word-Groups,
matching the paper's choice.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

__all__ = ["FPNode", "fpgrowth"]


class FPNode:
    """One node of an FP-tree."""

    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: int | None, parent: "FPNode | None"):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, FPNode] = {}
        self.link: FPNode | None = None


def _build_tree(
    transactions: Sequence[tuple[Sequence[int], int]], min_support: int
) -> tuple[FPNode, dict[int, FPNode]]:
    """Build an FP-tree from (items, count) transactions."""
    frequency: Counter[int] = Counter()
    for items, count in transactions:
        for item in items:
            frequency[item] += count
    frequent = {item for item, total in frequency.items() if total >= min_support}
    root = FPNode(None, None)
    header: dict[int, FPNode] = {}
    for items, count in transactions:
        ordered = sorted(
            (item for item in set(items) if item in frequent),
            key=lambda it: (-frequency[it], it),
        )
        node = root
        for item in ordered:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                child.link = header.get(item)
                header[item] = child
            child.count += count
            node = child
    return root, header


def _mine_tree(
    header: dict[int, FPNode],
    min_support: int,
    suffix: tuple[int, ...],
    out: dict[tuple[int, ...], int],
) -> None:
    for item in sorted(header):
        support = 0
        node = header[item]
        while node is not None:
            support += node.count
            node = node.link
        if support < min_support:
            continue
        itemset = tuple(sorted(suffix + (item,)))
        out[itemset] = support
        # Conditional pattern base: prefix paths of every node of `item`.
        conditional: list[tuple[list[int], int]] = []
        node = header[item]
        while node is not None:
            path: list[int] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                conditional.append((path, node.count))
            node = node.link
        if conditional:
            _root, sub_header = _build_tree(conditional, min_support)
            if sub_header:
                _mine_tree(sub_header, min_support, itemset, out)


def fpgrowth(
    transactions: Sequence[Sequence[int]], min_support: int = 2
) -> dict[tuple[int, ...], int]:
    """All frequent itemsets with their supports.

    Returns ``{sorted_itemset: support}`` — the same itemsets the Apriori
    miner finds (property-tested), without tid-lists.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    weighted = [(transaction, 1) for transaction in transactions]
    _root, header = _build_tree(weighted, min_support)
    out: dict[tuple[int, ...], int] = {}
    _mine_tree(header, min_support, (), out)
    return out
