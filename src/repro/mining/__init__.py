"""Frequent-itemset mining and MinHash substrates.

The Word-Groups join (paper §2.3) maps the set join to frequent-itemset
mining with words as items and RIDs as transactions; it needs a low-
support Apriori miner with tid-lists, an FP-growth alternative, and
MinHash signatures for compacting groups with overlapping RID lists.
All three are implemented from scratch here.
"""

from repro.mining.apriori import AprioriMiner, generate_candidates
from repro.mining.fpgrowth import fpgrowth
from repro.mining.minhash import MinHasher, compact_groups

__all__ = [
    "AprioriMiner",
    "MinHasher",
    "compact_groups",
    "fpgrowth",
    "generate_candidates",
]
