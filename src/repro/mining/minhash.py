"""MinHash signatures and signature-based group compaction (paper §2.3).

The MinHash of a set under a random ordering of the universe is the
minimum element in that ordering; the probability that two sets agree on
one MinHash equals their Jaccard resemblance. With ``k`` independent hash
functions, the fraction of agreeing components estimates the resemblance
(the paper's ``S(g1, g2)`` formula).

``compact_groups`` implements the paper's compaction: treat each group's
``k`` signature components as ``k`` words and merge groups that agree on
at least ``k * p`` of them. The candidate search uses an inverted index
on (slot, value) pairs — "the Probe Cluster algorithm can be used to
efficiently create such clusters in a single pass" — and merges are
applied with a union-find.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

__all__ = ["MinHasher", "compact_groups"]

_MERSENNE_PRIME = (1 << 61) - 1


class MinHasher:
    """k independent MinHash functions over integer universes."""

    def __init__(self, k: int = 16, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rng = random.Random(seed)
        self.k = k
        self._coefficients = [
            (rng.randrange(1, _MERSENNE_PRIME), rng.randrange(_MERSENNE_PRIME))
            for _ in range(k)
        ]

    def signature(self, items: Sequence[int]) -> tuple[int, ...]:
        """k-component MinHash signature of a non-empty integer set."""
        if not items:
            raise ValueError("cannot MinHash an empty set")
        out = []
        for a, b in self._coefficients:
            out.append(min((a * item + b) % _MERSENNE_PRIME for item in items))
        return tuple(out)

    def estimate_resemblance(
        self, sig_a: Sequence[int], sig_b: Sequence[int]
    ) -> float:
        """Estimated Jaccard resemblance: fraction of agreeing slots."""
        if len(sig_a) != len(sig_b):
            raise ValueError("signatures must have equal length")
        agree = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return agree / len(sig_a)


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x: int, y: int) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx != ry:
            self.parent[max(rx, ry)] = min(rx, ry)


def compact_groups(
    groups: Sequence[Sequence[int]],
    k: int = 16,
    p: float = 0.9,
    seed: int = 0,
) -> list[list[int]]:
    """Merge groups whose signatures agree on >= k*p slots.

    Args:
        groups: RID lists (each non-empty).
        k: signatures per group.
        p: agreement fraction required to merge.
        seed: hash-function seed (results are deterministic per seed).

    Returns the partition of group indices: one list of original group
    indices per merged cluster, each sorted, clusters ordered by their
    smallest member.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    hasher = MinHasher(k=k, seed=seed)
    signatures = [hasher.signature(list(group)) for group in groups]
    # Inverted index on (slot, value); count agreements per group pair.
    slot_index: dict[tuple[int, int], list[int]] = {}
    for group_idx, signature in enumerate(signatures):
        for slot, value in enumerate(signature):
            slot_index.setdefault((slot, value), []).append(group_idx)
    agreement: dict[tuple[int, int], int] = {}
    for members in slot_index.values():
        if len(members) < 2:
            continue
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                key = (members[i], members[j])
                agreement[key] = agreement.get(key, 0) + 1
    threshold = k * p
    union_find = _UnionFind(len(groups))
    for (idx_a, idx_b), count in agreement.items():
        if count >= threshold - 1e-12:
            union_find.union(idx_a, idx_b)
    clusters: dict[int, list[int]] = {}
    for group_idx in range(len(groups)):
        clusters.setdefault(union_find.find(group_idx), []).append(group_idx)
    return [sorted(members) for _root, members in sorted(clusters.items())]
