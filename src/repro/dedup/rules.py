"""Per-field match rules and their combination.

A rule binds one record field to a similarity condition. The matcher
evaluates a conjunction ("all"), disjunction ("any"), or k-of-n vote
over rules:

* conjunction — the first rule runs as a full similarity join
  (candidate generation); the other rules are *verified* pair-by-pair,
  so only one inverted-index pass is ever built;
* disjunction — every rule runs as a full join; pair sets are unioned;
* vote — every rule runs; pairs matched by at least ``k`` rules win.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.core.dedupe import connected_components
from repro.core.join import similarity_join
from repro.core.records import Dataset
from repro.core.results import JoinResult, MatchPair
from repro.predicates.base import SimilarityPredicate
from repro.predicates.edit_distance import EditDistancePredicate, qgram_dataset
from repro.text.tokenizers import tokenize_words
from repro.utils.counters import CostCounters

__all__ = ["EditDistanceRule", "FieldRule", "RuleBasedMatcher"]


class FieldRule:
    """A set-similarity predicate on one field.

    Args:
        field: key into each record mapping.
        predicate: the similarity condition.
        tokenizer: field string -> token list (words by default).
    """

    def __init__(
        self,
        field: str,
        predicate: SimilarityPredicate,
        tokenizer: Callable[[str], Sequence[str]] = tokenize_words,
    ):
        self.field = field
        self.predicate = predicate
        self.tokenizer = tokenizer

    def describe(self) -> str:
        return f"{self.field}~{self.predicate.name}"

    def build(self, records: Sequence[Mapping]) -> "_BoundRule":
        texts = [str(record.get(self.field, "")) for record in records]
        dataset = Dataset.from_texts(texts, self.tokenizer)
        return _BoundRule(self, dataset, self.predicate.bind(dataset))


class EditDistanceRule(FieldRule):
    """An edit-distance bound on one field."""

    def __init__(self, field: str, k: int, q: int = 3):
        self.field = field
        self.predicate = EditDistancePredicate(k=k, q=q)
        self.k = k
        self.q = q
        self.tokenizer = None

    def describe(self) -> str:
        return f"{self.field}~{self.predicate.name}"

    def build(self, records: Sequence[Mapping]) -> "_BoundRule":
        texts = [str(record.get(self.field, "")) for record in records]
        dataset = qgram_dataset(texts, q=self.q)
        return _BoundRule(self, dataset, self.predicate.bind(dataset))


class _BoundRule:
    """A rule bound to the concrete record list."""

    def __init__(self, rule: FieldRule, dataset: Dataset, bound):
        self.rule = rule
        self.dataset = dataset
        self.bound = bound

    def join_pairs(self, algorithm: str) -> set[tuple[int, int]]:
        result = similarity_join(self.dataset, self.rule.predicate, algorithm=algorithm)
        pairs = result.pair_set()
        if isinstance(self.rule.predicate, EditDistancePredicate):
            # The q-gram bound is vacuous for very short field values;
            # brute-force those for exactness (see edit_distance_join).
            cutoff = self.rule.predicate.short_string_cutoff()
            short = [
                rid
                for rid in range(len(self.dataset))
                if self.bound.string_length(rid) <= cutoff
            ]
            for i, rid_a in enumerate(short):
                for rid_b in short[i + 1 :]:
                    key = (min(rid_a, rid_b), max(rid_a, rid_b))
                    if key not in pairs and self.verify(*key):
                        pairs.add(key)
        return pairs

    def verify(self, rid_a: int, rid_b: int) -> bool:
        ok, _similarity = self.bound.verify(rid_a, rid_b)
        return ok


class RuleBasedMatcher:
    """Combine field rules into a record matcher.

    Args:
        rules: the field rules (at least one).
        combine: ``"all"``, ``"any"``, or an integer k for k-of-n.
        algorithm: join algorithm used for candidate generation.
    """

    def __init__(
        self,
        rules: Sequence[FieldRule],
        combine: str | int = "all",
        algorithm: str = "probe-cluster",
    ):
        if not rules:
            raise ValueError("need at least one rule")
        if isinstance(combine, int):
            if not 1 <= combine <= len(rules):
                raise ValueError(
                    f"vote threshold must be in [1, {len(rules)}], got {combine}"
                )
        elif combine not in ("all", "any"):
            raise ValueError(f"combine must be 'all', 'any', or an int, got {combine!r}")
        self.rules = list(rules)
        self.combine = combine
        self.algorithm = algorithm

    def match(self, records: Sequence[Mapping]) -> JoinResult:
        """Matched record pairs under the combined rules."""
        bound_rules = [rule.build(records) for rule in self.rules]
        if self.combine == "all":
            pairs = self._match_all(bound_rules)
        elif self.combine == "any":
            pairs = set()
            for bound_rule in bound_rules:
                pairs |= bound_rule.join_pairs(self.algorithm)
        else:
            votes: dict[tuple[int, int], int] = {}
            for bound_rule in bound_rules:
                for pair in bound_rule.join_pairs(self.algorithm):
                    votes[pair] = votes.get(pair, 0) + 1
            pairs = {pair for pair, count in votes.items() if count >= self.combine}
        description = f"rules[{'+'.join(r.describe() for r in self.rules)}]"
        return JoinResult(
            pairs=[MatchPair(a, b) for a, b in sorted(pairs)],
            algorithm=self.algorithm,
            predicate=f"{description} combine={self.combine}",
            counters=CostCounters(pairs_output=len(pairs)),
        )

    def _match_all(self, bound_rules: list[_BoundRule]) -> set[tuple[int, int]]:
        # Generate candidates with the first rule, verify the rest.
        candidates = bound_rules[0].join_pairs(self.algorithm)
        survivors = set()
        for rid_a, rid_b in candidates:
            if all(rule.verify(rid_a, rid_b) for rule in bound_rules[1:]):
                survivors.add((rid_a, rid_b))
        return survivors

    def groups(self, records: Sequence[Mapping]) -> list[list[int]]:
        """Duplicate groups (connected components of matched pairs)."""
        result = self.match(records)
        return connected_components(result.pairs, len(records))
