"""Rule-based deduplication of structured records.

The paper's corpora are *segmented* records (citation: author / title /
year / pages; address: name fields / address lines / PIN), and its
data-cleaning motivation composes per-field similarity conditions —
"duplicate iff titles overlap heavily AND author names are within small
edit distance". This package provides that layer on top of the joins:

* :class:`FieldRule` — a similarity predicate applied to one field,
* :class:`EditDistanceRule` — an edit-distance bound on one field,
* :class:`RuleBasedMatcher` — combines rules with all/any/k-of-n
  semantics; the most selective rule generates candidates with a full
  join and the remaining rules are verified per candidate pair.
"""

from repro.dedup.rules import EditDistanceRule, FieldRule, RuleBasedMatcher

__all__ = ["EditDistanceRule", "FieldRule", "RuleBasedMatcher"]
