"""Memory-mapped columnar posting storage (zero-copy serving).

PR 5 made posting lists columnar typed arrays (``array('q')`` ids,
``array('d')`` scores) frozen by ``seal()``; this module takes the last
step and puts those exact columns in a write-once on-disk file that is
``mmap``-ed back verbatim. A probe then reads postings *directly off the
mapped columns* — no per-probe decode, no copy, no deserialization —
via :class:`MappedPostingList`, whose ``ids``/``scores`` are
``memoryview.cast`` views satisfying the same Sequence surface as
``PostingList.ids``/``.scores``. The heap merge, MergeOpt's galloping
skip, ``bisect`` cuts and the ScanCount accumulator all run unchanged
over them, so joins and queries against a mapped index are bit-identical
to the in-memory path.

File layout (format ``RPMX``, version 2 of the on-disk index lineage —
version 1 was the varbyte-only ``RPIX1`` layout, now refused with a
clear error)::

    preamble   magic "RPMX1\\n" | u16 version | u8 flags | u64 dir_off
               | u64 dir_len | u64 dir_crc32          (40 bytes, fixed)
    data       per-token regions, 8-byte aligned:
                 raw:        [ids int64 x n][scores float64 x n]
                 compressed: [scores float64 x n]
                             [block_firsts int64 x b][block_offsets int64 x b]
                             [varbyte gap blocks]
               named sections (serving snapshots: records, payloads,
               vocabulary), 8-byte aligned, CRC'd
    directory  one JSON object: per-token parallel arrays
               (token, offset, byte length, count, max_score, crc32,
               payload byte length when compressed), index statistics
               (min_norm / n_entries / n_entities), section table, meta

Integrity follows the :mod:`repro.runtime.snapshot` discipline: the
writer goes write-to-temp + fsync + atomic rename; the reader checks the
magic, version and directory CRC at open, and each posting region's
CRC32 lazily on its first touch — so a multi-GB index still opens in
milliseconds, but a flipped byte anywhere raises
:class:`~repro.runtime.errors.SnapshotCorrupted` before it can produce a
wrong pair. Every corruption mode (truncation, bad magic, mangled
header, damaged column) surfaces as that one typed error.

Residency: the reader counts the directory once and each posting list's
entries on first touch into ``counters.index_entries`` (see
:meth:`MappedInvertedIndex.attach_counters`), so the existing
``JoinContext`` memory budget tracks *directory + touched postings*
rather than a fully materialized index — the whole point of mapping.

The compressed encoding reuses the skip-block machinery of
:class:`repro.compression.postings.CompressedPostingList` — same block
size, same per-block varbyte gap coding — but stores the block
directory (first ids, byte offsets) as two more mapped ``int64``
columns, so skip metadata costs no decode either;
:class:`_BlockedIds` decodes one block lazily per random access.
"""

from __future__ import annotations

import json
import math
import mmap
import os
import struct
import sys
import tempfile
from array import array
from collections.abc import Iterable, Sequence
from itertools import repeat
from zlib import crc32

from repro.compression.postings import CompressedPostingList
from repro.compression.varbyte import varbyte_decode_deltas
from repro.runtime.errors import SnapshotCorrupted
from repro.utils.counters import CostCounters

__all__ = [
    "JoinIndexBuilder",
    "MappedDataset",
    "MappedIndexWriter",
    "MappedInvertedIndex",
    "MappedPostingList",
    "mapped_blob_view",
    "mapped_record_view",
    "resolve_index_backend",
]

_MAGIC = b"RPMX1\n"
_FORMAT_VERSION = 2
#: magic | version | flags | pad | directory offset / length / crc32
_PREAMBLE = struct.Struct("<6sHB7xQQQ")
_PREAMBLE_SIZE = 40
assert _PREAMBLE.size == _PREAMBLE_SIZE

_FLAG_COMPRESSED = 1
_FLAG_SCORED = 2
_FLAG_BIG_ENDIAN = 4

_BLOCK_SIZE = 64

#: Valid values of the ``index_backend`` knob.
INDEX_BACKENDS = ("memory", "mmap")


def resolve_index_backend(value) -> str:
    """Validate an ``index_backend`` knob value (None means ``memory``)."""
    if value is None:
        return "memory"
    if value not in INDEX_BACKENDS:
        raise ValueError(
            f"unknown index backend {value!r}; expected one of {INDEX_BACKENDS}"
        )
    return value


def _pad8(n: int) -> int:
    return (8 - n % 8) % 8


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------


class MappedIndexWriter:
    """Streams a write-once columnar index file.

    Postings must be added one whole token at a time (the format stores
    each token's columns contiguously). The file materializes under a
    temp name and lands at ``path`` atomically on :meth:`finish`, so a
    crash mid-write never leaves a half-index where a reader looks.

    Args:
        path: final file location.
        scored: store a ``float64`` score column per token. Unit-score
            indexes (``DiskInvertedIndex``) omit it; readers synthesize
            constant 1.0 scores.
        compressed: varbyte gap-compress the id column into skip blocks
            instead of a raw ``int64`` column — smaller file, lazy
            per-block decode on read instead of zero-copy.
    """

    def __init__(self, path: str, *, scored: bool = True, compressed: bool = False):
        self.path = path
        self.scored = scored
        self.compressed = compressed
        self._tmp_path = f"{path}.tmp.{os.getpid()}"
        self._handle = open(self._tmp_path, "wb")
        self._handle.write(bytes(_PREAMBLE_SIZE))
        self._tokens: list[int] = []
        self._offsets: list[int] = []
        self._lengths: list[int] = []
        self._counts: list[int] = []
        self._max_scores: list[float] = []
        self._payload_lengths: list[int] = []
        self._crcs: list[int] = []
        self._sections: dict[str, list[int]] = {}
        self.n_entries = 0
        self._finished = False

    # -- postings ------------------------------------------------------

    def add_posting(
        self,
        token: int,
        ids: Sequence[int],
        scores: Sequence[float] | None = None,
        max_score: float | None = None,
    ) -> None:
        """Write one token's posting columns (ids strictly increasing)."""
        if self._finished:
            raise ValueError("writer is finished")
        count = len(ids)
        if count == 0:
            return
        if self.scored:
            if scores is None:
                raise ValueError("scored writer needs a score column")
            score_column = scores if isinstance(scores, array) else array("d", scores)
            if max_score is None:
                max_score = max(score_column)
        else:
            score_column = None
            max_score = 1.0
        payload_length = 0
        if self.compressed:
            # Reuse the exact skip-block construction of the in-memory
            # compressed lists; its block directory becomes two more
            # mapped int64 columns.
            clist = CompressedPostingList(ids, block_size=_BLOCK_SIZE)
            region = bytearray()
            if score_column is not None:
                region += score_column.tobytes()
            region += array("q", clist._block_first).tobytes()
            region += array("q", clist._block_offset).tobytes()
            payload_length = len(clist._data)
            region += clist._data
        else:
            id_column = ids if isinstance(ids, array) else array("q", ids)
            previous = -1
            for entity_id in id_column:
                if entity_id <= previous:
                    raise ValueError("posting ids must be strictly increasing")
                previous = entity_id
            region = bytearray(id_column.tobytes())
            if score_column is not None:
                region += score_column.tobytes()
        offset = self._handle.tell()
        self._handle.write(region)
        self._handle.write(bytes(_pad8(len(region))))
        self._tokens.append(int(token))
        self._offsets.append(offset)
        self._lengths.append(len(region))
        self._counts.append(count)
        self._max_scores.append(float(max_score))
        self._payload_lengths.append(payload_length)
        self._crcs.append(crc32(bytes(region)))
        self.n_entries += count

    # -- named sections ------------------------------------------------

    def add_section(self, name: str, data: bytes) -> None:
        """Write a named CRC'd blob (serving state: records, payloads...)."""
        if self._finished:
            raise ValueError("writer is finished")
        if name in self._sections:
            raise ValueError(f"duplicate section {name!r}")
        offset = self._handle.tell()
        self._handle.write(data)
        self._handle.write(bytes(_pad8(len(data))))
        self._sections[name] = [offset, len(data), crc32(data)]

    # -- finish --------------------------------------------------------

    def finish(
        self,
        *,
        min_norm: float = math.inf,
        n_entities: int = 0,
        meta: dict | None = None,
    ) -> str:
        """Write directory + preamble, fsync, atomically land at ``path``."""
        if self._finished:
            raise ValueError("writer is finished")
        directory = {
            "format": _FORMAT_VERSION,
            "scored": self.scored,
            "compressed": self.compressed,
            "block_size": _BLOCK_SIZE,
            "min_norm": None if math.isinf(min_norm) else min_norm,
            "n_entries": self.n_entries,
            "n_entities": n_entities,
            "tokens": self._tokens,
            "offsets": self._offsets,
            "lengths": self._lengths,
            "counts": self._counts,
            "max_scores": self._max_scores,
            "payload_lengths": self._payload_lengths if self.compressed else [],
            "crcs": self._crcs,
            "sections": self._sections,
            "meta": meta or {},
        }
        encoded = json.dumps(directory, separators=(",", ":")).encode("utf-8")
        directory_offset = self._handle.tell()
        self._handle.write(encoded)
        flags = 0
        if self.compressed:
            flags |= _FLAG_COMPRESSED
        if self.scored:
            flags |= _FLAG_SCORED
        if sys.byteorder == "big":
            flags |= _FLAG_BIG_ENDIAN
        self._handle.seek(0)
        self._handle.write(
            _PREAMBLE.pack(
                _MAGIC,
                _FORMAT_VERSION,
                flags,
                directory_offset,
                len(encoded),
                crc32(encoded),
            )
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self._tmp_path, self.path)
        self._finished = True
        return self.path

    def abort(self) -> None:
        """Drop the temp file (error paths)."""
        if not self._finished:
            self._handle.close()
            if os.path.exists(self._tmp_path):
                os.remove(self._tmp_path)
            self._finished = True

    def __enter__(self) -> "MappedIndexWriter":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        if exc_type is not None:
            self.abort()


# ----------------------------------------------------------------------
# Zero-copy posting views
# ----------------------------------------------------------------------


class _ConstScores:
    """Constant-1.0 score column for unit-score indexes (no storage)."""

    __slots__ = ("_n",)

    def __init__(self, n: int):
        self._n = n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> float:
        if isinstance(i, slice):
            return [1.0] * len(range(*i.indices(self._n)))
        if not -self._n <= i < self._n:
            raise IndexError(i)
        return 1.0

    def __iter__(self):
        return repeat(1.0, self._n)


class _BlockedIds:
    """Lazy-decoding id sequence over mapped skip blocks.

    ``block_firsts``/``block_offsets`` are mapped ``int64`` columns;
    ``payload`` is the varbyte gap stream. Random access decodes (and
    caches) one block; iteration streams blocks in order. Satisfies the
    Sequence surface the merge engines use (``len``, int indexing
    including negatives, iteration, ``bisect``/gallop probes).
    """

    __slots__ = ("_firsts", "_offsets", "_payload", "_n", "_cached", "_cache")

    def __init__(self, firsts, offsets, payload, n: int):
        self._firsts = firsts
        self._offsets = offsets
        self._payload = payload
        self._n = n
        self._cached = -1
        self._cache: list[int] | None = None

    def __len__(self) -> int:
        return self._n

    def _block(self, block: int) -> list[int]:
        if block == self._cached:
            return self._cache
        offsets = self._offsets
        end = offsets[block + 1] if block + 1 < len(offsets) else len(self._payload)
        decoded = varbyte_decode_deltas(
            self._payload,
            offsets[block],
            min(_BLOCK_SIZE, self._n - block * _BLOCK_SIZE),
            self._firsts[block],
            end,
        )
        self._cached = block
        self._cache = decoded
        return decoded

    def __getitem__(self, i: int) -> int:
        if isinstance(i, slice):
            raise TypeError("blocked id column does not support slicing")
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        block, within = divmod(i, _BLOCK_SIZE)
        if within == 0:
            # Block-first ids sit in their own mapped column: answer the
            # gallop's bracketing probes without decoding anything.
            return self._firsts[block]
        return self._block(block)[within]

    def __iter__(self):
        for block in range((self._n + _BLOCK_SIZE - 1) // _BLOCK_SIZE):
            yield from self._block(block)


class MappedPostingList:
    """Posting list whose columns live in a mapped file.

    Mirrors the read surface of
    :class:`~repro.core.inverted_index.PostingList` — ``ids``,
    ``scores``, ``max_score``, ``len()``, ``sealed`` — with the columns
    backed by ``memoryview.cast`` views of the mapped file (or a lazy
    block decoder for compressed ids). Always sealed: the file is
    write-once.
    """

    __slots__ = ("ids", "scores", "max_score", "sealed")

    def __init__(self, ids, scores, max_score: float):
        self.ids = ids
        self.scores = scores
        self.max_score = max_score
        self.sealed = True

    def __len__(self) -> int:
        return len(self.ids)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------


def _corrupt(path: str, detail: str) -> SnapshotCorrupted:
    return SnapshotCorrupted(path, detail)


class MappedInvertedIndex:
    """Read-only inverted index served straight off a mapped file.

    Drop-in for the probe surface of
    :class:`~repro.core.inverted_index.ScoredInvertedIndex`
    (``probe_lists``, ``get``, ``min_norm``, ``n_entries``,
    ``n_entities``, ``len``/``in``) — every merge backend runs unchanged
    over it. Opening costs one small directory parse regardless of data
    size; posting bytes fault in on first touch and are shared read-only
    across threads and fork'd processes (the mapping survives fork).

    Integrity: magic/version/directory CRC are checked at open; each
    posting region's CRC32 on its first probe (memoized), raising
    :class:`~repro.runtime.errors.SnapshotCorrupted` — never wrong pairs.
    """

    def __init__(self):
        self.path = ""
        self.min_norm: float = math.inf
        self.n_entries = 0
        self.n_entities = 0
        self.lists_read = 0
        self.bytes_read = 0
        #: Entries whose columns have been touched at least once — the
        #: residency estimate the memory budget tracks (plus directory).
        self.touched_entries = 0
        self.touched_bytes = 0
        self.directory_bytes = 0
        self._mmap: mmap.mmap | None = None
        self._view: memoryview | None = None
        self._file = None
        self._position: dict[int, int] = {}
        self._offsets: list[int] = []
        self._lengths: list[int] = []
        self._counts: list[int] = []
        self._max_scores: list[float] = []
        self._payload_lengths: list[int] = []
        self._crcs: list[int] = []
        self._sections: dict[str, list[int]] = {}
        self._verified: bytearray = bytearray()
        self._touched: bytearray = bytearray()
        self._verified_sections: set[str] = set()
        self.meta: dict = {}
        self.scored = True
        self.compressed = False
        self._counters: CostCounters | None = None
        self._owns_path = False

    # -- open ----------------------------------------------------------

    @classmethod
    def open(cls, path: str, *, owns_path: bool = False) -> "MappedInvertedIndex":
        """Map an index file; validates preamble and directory.

        Raises :class:`~repro.runtime.errors.SnapshotCorrupted` for any
        damage: truncation, foreign/old magic, version or byte-order
        mismatch, directory checksum or shape violations.
        """
        index = cls()
        index.path = path
        index._owns_path = owns_path
        try:
            handle = open(path, "rb")
        except OSError as exc:
            raise _corrupt(path, f"cannot open: {exc}") from exc
        try:
            size = os.fstat(handle.fileno()).st_size
            if size < _PREAMBLE_SIZE:
                raise _corrupt(
                    path, f"truncated: {size} bytes, preamble needs {_PREAMBLE_SIZE}"
                )
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except SnapshotCorrupted:
            handle.close()
            raise
        except (OSError, ValueError) as exc:
            handle.close()
            raise _corrupt(path, f"cannot map: {exc}") from exc
        index._file = handle
        index._mmap = mapped
        index._view = memoryview(mapped)
        try:
            index._parse(size)
        except SnapshotCorrupted:
            index.close()
            raise
        return index

    def _parse(self, size: int) -> None:
        path = self.path
        magic, version, flags, dir_off, dir_len, dir_crc = _PREAMBLE.unpack(
            self._view[:_PREAMBLE_SIZE]
        )
        if magic != _MAGIC:
            if bytes(magic).startswith(b"RPIX"):
                raise _corrupt(
                    path,
                    "format version 1 (RPIX varbyte layout) is no longer"
                    " readable; rebuild the index with this version",
                )
            raise _corrupt(path, f"bad magic {bytes(magic)!r}")
        if version != _FORMAT_VERSION:
            raise _corrupt(
                path,
                f"format version {version} not supported (this build reads"
                f" version {_FORMAT_VERSION}); rebuild the index",
            )
        file_big_endian = bool(flags & _FLAG_BIG_ENDIAN)
        if file_big_endian != (sys.byteorder == "big"):
            raise _corrupt(
                path,
                "byte-order mismatch: file columns are"
                f" {'big' if file_big_endian else 'little'}-endian, this"
                f" machine is {sys.byteorder}-endian",
            )
        self.compressed = bool(flags & _FLAG_COMPRESSED)
        self.scored = bool(flags & _FLAG_SCORED)
        if dir_off < _PREAMBLE_SIZE or dir_off + dir_len > size:
            raise _corrupt(
                path,
                f"directory [{dir_off}, {dir_off + dir_len}) outside file"
                f" of {size} bytes (truncated?)",
            )
        directory_bytes = bytes(self._view[dir_off : dir_off + dir_len])
        if crc32(directory_bytes) != dir_crc:
            raise _corrupt(path, "directory checksum mismatch")
        try:
            directory = json.loads(directory_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _corrupt(path, f"directory is not valid JSON: {exc}") from exc
        self.directory_bytes = dir_len
        self._load_directory(directory, data_end=dir_off, size=size)

    def _load_directory(self, directory, data_end: int, size: int) -> None:
        path = self.path
        if not isinstance(directory, dict):
            raise _corrupt(path, "directory is not an object")
        tokens = directory.get("tokens")
        offsets = directory.get("offsets")
        lengths = directory.get("lengths")
        counts = directory.get("counts")
        crcs = directory.get("crcs")
        max_scores = directory.get("max_scores")
        payload_lengths = directory.get("payload_lengths")
        columns = [tokens, offsets, lengths, counts, crcs, max_scores]
        if any(not isinstance(column, list) for column in columns):
            raise _corrupt(path, "directory posting columns are malformed")
        n = len(tokens)
        if any(len(column) != n for column in (offsets, lengths, counts, crcs)):
            raise _corrupt(path, "directory posting columns disagree in length")
        if self.scored and len(max_scores) != n:
            raise _corrupt(path, "directory max_scores column disagrees in length")
        if self.compressed and (
            not isinstance(payload_lengths, list) or len(payload_lengths) != n
        ):
            raise _corrupt(path, "directory payload_lengths column is malformed")
        for i in range(n):
            offset, length = offsets[i], lengths[i]
            if (
                not isinstance(offset, int)
                or not isinstance(length, int)
                or offset < _PREAMBLE_SIZE
                or offset + length > data_end
                or offset + length > size
            ):
                raise _corrupt(
                    path, f"posting region {i} [{offset}, {offset + length}) is out of bounds"
                )
        sections = directory.get("sections", {})
        if not isinstance(sections, dict):
            raise _corrupt(path, "directory section table is malformed")
        for name, entry in sections.items():
            if (
                not isinstance(entry, list)
                or len(entry) != 3
                or not all(isinstance(v, int) for v in entry)
                or entry[0] < _PREAMBLE_SIZE
                or entry[0] + entry[1] > data_end
            ):
                raise _corrupt(path, f"section {name!r} table entry is malformed")
        min_norm = directory.get("min_norm")
        self.min_norm = math.inf if min_norm is None else float(min_norm)
        self.n_entries = int(directory.get("n_entries", 0))
        self.n_entities = int(directory.get("n_entities", 0))
        self._position = {token: i for i, token in enumerate(tokens)}
        if len(self._position) != n:
            raise _corrupt(path, "directory holds duplicate tokens")
        self._offsets = offsets
        self._lengths = lengths
        self._counts = counts
        self._max_scores = max_scores
        self._payload_lengths = payload_lengths or []
        self._crcs = crcs
        self._sections = sections
        self._verified = bytearray(n)
        self._touched = bytearray(n)
        meta = directory.get("meta", {})
        self.meta = meta if isinstance(meta, dict) else {}

    # -- residency accounting ------------------------------------------

    def attach_counters(self, counters: CostCounters) -> None:
        """Wire residency into the memory-budget runtime.

        Counts the directory once (one budget entry per token — the
        always-resident metadata) and, from then on, each posting list's
        entry count the first time a probe touches its columns. The
        ``JoinContext`` budget check reads ``counters.index_entries``,
        so a budget over a mapped index bounds *directory + touched
        postings* instead of the fully materialized index.
        """
        self._counters = counters
        counters.index_entries += len(self._position)

    # -- probing -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._position)

    def __contains__(self, token: int) -> bool:
        return token in self._position

    def tokens(self) -> Iterable[int]:
        return self._position.keys()

    def get(self, token: int) -> MappedPostingList | None:
        position = self._position.get(token)
        if position is None:
            return None
        return self._list_at(position)

    def _list_at(self, i: int) -> MappedPostingList:
        offset = self._offsets[i]
        length = self._lengths[i]
        count = self._counts[i]
        view = self._view
        if not self._verified[i]:
            if crc32(bytes(view[offset : offset + length])) != self._crcs[i]:
                raise _corrupt(
                    self.path,
                    f"posting column checksum mismatch at region {i}"
                    f" [{offset}, {offset + length})",
                )
            self._verified[i] = 1
        if not self._touched[i]:
            self._touched[i] = 1
            self.touched_entries += count
            self.touched_bytes += length
            if self._counters is not None:
                self._counters.index_entries += count
        self.lists_read += 1
        self.bytes_read += length
        max_score = self._max_scores[i] if self.scored else 1.0
        if not self.compressed:
            ids = view[offset : offset + 8 * count].cast("q")
            if self.scored:
                scores = view[offset + 8 * count : offset + 16 * count].cast("d")
            else:
                scores = _ConstScores(count)
            return MappedPostingList(ids, scores, max_score)
        cursor = offset
        if self.scored:
            scores = view[cursor : cursor + 8 * count].cast("d")
            cursor += 8 * count
        else:
            scores = _ConstScores(count)
        n_blocks = (count + _BLOCK_SIZE - 1) // _BLOCK_SIZE
        firsts = view[cursor : cursor + 8 * n_blocks].cast("q")
        cursor += 8 * n_blocks
        block_offsets = view[cursor : cursor + 8 * n_blocks].cast("q")
        cursor += 8 * n_blocks
        payload = view[cursor : offset + length]
        expected = self._payload_lengths[i] if self._payload_lengths else len(payload)
        if len(payload) != expected:
            raise _corrupt(
                self.path,
                f"posting region {i}: payload is {len(payload)} bytes,"
                f" directory says {expected}",
            )
        ids = _BlockedIds(firsts, block_offsets, payload, count)
        return MappedPostingList(ids, scores, max_score)

    def read_posting(self, token: int) -> list[int]:
        """Decode one token's ids into a plain list (streaming callers)."""
        plist = self.get(token)
        if plist is None:
            return []
        return list(plist.ids)

    def probe_lists(
        self, tokens: Sequence[int], probe_scores: Sequence[float]
    ) -> list[tuple[MappedPostingList, float]]:
        """Posting views for the probe's words; same contract as
        :meth:`ScoredInvertedIndex.probe_lists`, zero decode."""
        out = []
        position_of = self._position.get
        for token, probe_score in zip(tokens, probe_scores):
            if probe_score == 0.0:
                continue
            position = position_of(token)
            if position is not None:
                out.append((self._list_at(position), probe_score))
        return out

    # -- sections ------------------------------------------------------

    def section(self, name: str) -> memoryview:
        """A named blob's bytes (CRC-checked on first access)."""
        entry = self._sections.get(name)
        if entry is None:
            raise KeyError(name)
        offset, length, expected_crc = entry
        view = self._view[offset : offset + length]
        if name not in self._verified_sections:
            if crc32(bytes(view)) != expected_crc:
                raise _corrupt(self.path, f"section {name!r} checksum mismatch")
            self._verified_sections.add(name)
        return view

    def has_section(self, name: str) -> bool:
        return name in self._sections

    def resident_bytes(self) -> int:
        """Residency estimate: directory + touched posting bytes."""
        return self.directory_bytes + self.touched_bytes

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._view = None
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # A caller still holds posting views (memoryview exports
                # of the mapping). Drop our reference; the mapping stays
                # valid until the last view dies, then falls with it.
                pass
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def dispose(self) -> None:
        """Close, and remove the file when this index owns its path."""
        self.close()
        if self._owns_path and os.path.exists(self.path):
            os.remove(self.path)

    def unlink(self) -> None:
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def __enter__(self) -> "MappedInvertedIndex":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Two-pass join builder
# ----------------------------------------------------------------------


class JoinIndexBuilder:
    """Accumulates one join's scored postings, lands them mapped.

    The build pass mirrors ``ScoredInvertedIndex.insert`` (same
    insertion order, same float64 scores, same ``min_norm`` statistic),
    then :meth:`finish` writes the columnar file and reopens it mapped —
    so the probe pass reads the identical columns the in-memory path
    would hold, and pairs come out bit-identical. Build-phase inserts
    are *not* counted against the memory budget (the builder is
    transient and the data lands on disk); the opened index counts
    directory + touched postings instead.
    """

    def __init__(self, path: str | None = None, *, compressed: bool = False):
        self._path = path
        self._owns_path = path is None
        self._compressed = compressed
        self._ids: dict[int, array] = {}
        self._scores: dict[int, array] = {}
        self.min_norm = math.inf
        self.n_entities = 0

    def insert(
        self,
        entity_id: int,
        tokens: Sequence[int],
        scores: Sequence[float],
        norm: float,
    ) -> None:
        ids = self._ids
        score_columns = self._scores
        for token, score in zip(tokens, scores):
            id_column = ids.get(token)
            if id_column is None:
                id_column = array("q")
                ids[token] = id_column
                score_columns[token] = array("d")
            id_column.append(entity_id)
            score_columns[token].append(score)
        self.n_entities += 1
        if norm < self.min_norm:
            self.min_norm = norm

    def finish(self, counters: CostCounters | None = None) -> MappedInvertedIndex:
        """Write, open mapped, and (optionally) wire residency counters."""
        path = self._path
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-mmapindex-", suffix=".rpmx")
            os.close(fd)
        writer = MappedIndexWriter(path, scored=True, compressed=self._compressed)
        try:
            for token, id_column in self._ids.items():
                writer.add_posting(token, id_column, self._scores[token])
            writer.finish(min_norm=self.min_norm, n_entities=self.n_entities)
        except BaseException:
            writer.abort()
            if self._owns_path and os.path.exists(path):
                os.remove(path)
            raise
        self._ids = {}
        self._scores = {}
        index = MappedInvertedIndex.open(path, owns_path=self._owns_path)
        if counters is not None:
            index.attach_counters(counters)
        return index


# ----------------------------------------------------------------------
# Mapped serving dataset (records / payloads / vocabulary sections)
# ----------------------------------------------------------------------


class _MappedRecords:
    """Record tuples decoded on demand from two mapped int64 columns."""

    __slots__ = ("_tokens", "_offsets", "_n")

    def __init__(self, tokens, offsets):
        self._tokens = tokens
        self._offsets = offsets
        self._n = len(offsets) - 1

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, rid: int):
        if isinstance(rid, slice):
            return [self[i] for i in range(*rid.indices(self._n))]
        if rid < 0:
            rid += self._n
        if not 0 <= rid < self._n:
            raise IndexError(rid)
        return tuple(self._tokens[self._offsets[rid] : self._offsets[rid + 1]])

    def __iter__(self):
        for rid in range(self._n):
            yield self[rid]

    def append(self, _record) -> None:
        raise TypeError("memory-mapped records are read-only")


class _MappedPayloads:
    """Payloads decoded lazily from a mapped byte region + offsets."""

    __slots__ = ("_data", "_offsets", "_n", "_decode")

    def __init__(self, data, offsets, decode):
        self._data = data
        self._offsets = offsets
        self._n = len(offsets) - 1
        self._decode = decode

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, rid: int):
        if isinstance(rid, slice):
            return [self[i] for i in range(*rid.indices(self._n))]
        if rid < 0:
            rid += self._n
        if not 0 <= rid < self._n:
            raise IndexError(rid)
        raw = bytes(self._data[self._offsets[rid] : self._offsets[rid + 1]])
        return self._decode(raw)

    def __iter__(self):
        for rid in range(self._n):
            yield self[rid]

    def append(self, _payload) -> None:
        raise TypeError("memory-mapped payloads are read-only")


def _int64_section(index: "MappedInvertedIndex", name: str):
    """A section cast to a mapped ``int64`` column (typed error on shape)."""
    view = index.section(name)
    try:
        return view.cast("q")
    except (ValueError, TypeError) as exc:
        raise _corrupt(
            index.path, f"section {name!r} is not an int64 column: {exc}"
        ) from exc


def mapped_record_view(index: "MappedInvertedIndex") -> _MappedRecords:
    """Record tuples over the ``records_tokens``/``records_offsets``
    sections of a serving snapshot; decodes one record per access."""
    tokens = _int64_section(index, "records_tokens")
    offsets = _int64_section(index, "records_offsets")
    if len(offsets) == 0 or offsets[0] != 0 or offsets[-1] != len(tokens):
        raise _corrupt(
            index.path,
            "records_offsets does not cover the records_tokens column",
        )
    return _MappedRecords(tokens, offsets)


def mapped_blob_view(
    index: "MappedInvertedIndex", data_name: str, offsets_name: str, decode
) -> _MappedPayloads:
    """Lazy per-record ``decode``-d view over a blob section sliced by an
    ``int64`` offsets section (payloads, token lists)."""
    data = index.section(data_name)
    offsets = _int64_section(index, offsets_name)
    if len(offsets) == 0 or offsets[0] != 0 or offsets[-1] != len(data):
        raise _corrupt(
            index.path,
            f"{offsets_name!r} does not cover the {data_name!r} section",
        )
    return _MappedPayloads(data, offsets, decode)


class MappedDataset:
    """Read-only :class:`~repro.core.records.Dataset` facade over mapped
    sections: records and payloads decode per access (nothing is
    materialized up front), corpus ``frequency`` is computed lazily on
    first demand (one streaming pass — only corpus-statistic predicates
    pay it)."""

    def __init__(self, records, vocabulary, payloads):
        self.records = records
        self.vocabulary = vocabulary
        self.payloads = payloads
        self._frequency: dict[int, int] | None = None
        self._id_to_token: dict[int, str] | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, rid: int):
        return self.records[rid]

    def __iter__(self):
        return iter(self.records)

    @property
    def frequency(self) -> dict[int, int]:
        if self._frequency is None:
            freq: dict[int, int] = {}
            for record in self.records:
                for token in record:
                    freq[token] = freq.get(token, 0) + 1
            self._frequency = freq
        return self._frequency

    def token_string(self, token_id: int) -> str:
        if self._id_to_token is None:
            self._id_to_token = {tid: tok for tok, tid in self.vocabulary.items()}
        return self._id_to_token[token_id]

    def payload(self, rid: int):
        return self.payloads[rid]

    def total_word_occurrences(self) -> int:
        return sum(len(record) for record in self.records)
