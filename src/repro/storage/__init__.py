"""Disk-backed storage substrate.

* :class:`DiskRecordStore` — the "database" ClusterMem's second phase
  re-reads records from (§4.2), with fetch/seek accounting.
* :class:`DiskInvertedIndex` / :class:`DiskProbeJoin` — a disk-resident
  inverted index (the §6 Heinz & Zobel direction): varbyte-compressed
  posting lists on disk, token directory in memory.
"""

from repro.storage.disk_index import DiskInvertedIndex, DiskProbeJoin
from repro.storage.record_store import DiskRecordStore

__all__ = ["DiskInvertedIndex", "DiskProbeJoin", "DiskRecordStore"]
