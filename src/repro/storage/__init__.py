"""Disk-backed storage substrate.

* :class:`DiskRecordStore` — the "database" ClusterMem's second phase
  re-reads records from (§4.2), with fetch/seek accounting.
* :class:`DiskInvertedIndex` / :class:`DiskProbeJoin` — a disk-resident
  inverted index (the §6 Heinz & Zobel direction): varbyte-compressed
  posting lists on disk, decoded per probe (streaming fallback).
* :mod:`repro.storage.mmap_index` — the shared write-once columnar
  format behind both: :class:`MappedInvertedIndex` serves postings
  zero-copy off a memory mapping (``index_backend='mmap'``,
  ``SimilarityIndex.save(format='mmap')``), :class:`MappedIndexWriter`
  writes it, :class:`JoinIndexBuilder` builds one for a two-pass join.
"""

from repro.storage.disk_index import DiskInvertedIndex, DiskProbeJoin
from repro.storage.mmap_index import (
    INDEX_BACKENDS,
    JoinIndexBuilder,
    MappedDataset,
    MappedIndexWriter,
    MappedInvertedIndex,
    MappedPostingList,
    resolve_index_backend,
)
from repro.storage.record_store import DiskRecordStore

__all__ = [
    "DiskInvertedIndex",
    "DiskProbeJoin",
    "DiskRecordStore",
    "INDEX_BACKENDS",
    "JoinIndexBuilder",
    "MappedDataset",
    "MappedIndexWriter",
    "MappedInvertedIndex",
    "MappedPostingList",
    "resolve_index_backend",
]
