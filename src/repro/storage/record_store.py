"""Offset-indexed flat-file record store.

Stands in for the database that ClusterMem (paper §4.2) fetches records
from during the second phase: "as a new record key is encountered we
fetch the corresponding record from the database". Records are written
once, sequentially, as length-delimited token-id lines; fetches seek via
an in-memory offset table. Sequential access patterns (the paper
optimizes for them) are naturally cheap.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

__all__ = ["DiskRecordStore"]


class DiskRecordStore:
    """Write-once, random-read store of token-id records."""

    def __init__(self, path: str):
        self.path = path
        self._offsets: list[int] = []
        self._handle = None
        self.fetches = 0
        #: fetches that were not sequential relative to the previous one
        #: (a head seek on the paper's 2004 disks; free on a page cache).
        #: Benchmarks use this to *model* disk time, since our physical
        #: I/O cost is unrealistically low.
        self.seeks = 0
        self._last_rid = -1

    @classmethod
    def from_records(
        cls, records: Sequence[tuple[int, ...]], path: str
    ) -> "DiskRecordStore":
        """Persist all records sequentially and open the store for reads."""
        store = cls(path)
        offset = 0
        with open(path, "w", encoding="ascii") as handle:
            for record in records:
                line = " ".join(str(token) for token in record) + "\n"
                store._offsets.append(offset)
                handle.write(line)
                offset += len(line)
        store._handle = open(path, "r", encoding="ascii")
        return store

    def __len__(self) -> int:
        return len(self._offsets)

    def fetch(self, rid: int) -> tuple[int, ...]:
        """Read one record back from disk."""
        if self._handle is None:
            raise ValueError("store is not open")
        if not 0 <= rid < len(self._offsets):
            raise IndexError(f"rid {rid} out of range [0, {len(self._offsets)})")
        self._handle.seek(self._offsets[rid])
        line = self._handle.readline().strip()
        self.fetches += 1
        if rid != self._last_rid + 1:
            self.seeks += 1
        self._last_rid = rid
        if not line:
            return ()
        return tuple(int(token) for token in line.split(" "))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def unlink(self) -> None:
        """Close and delete the backing file."""
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def __enter__(self) -> "DiskRecordStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
