"""Disk-resident inverted index.

The paper's §6 points at IR work on "constructing disk-resident
inverted indices under limited memory conditions" (Heinz & Zobel) as a
complementary direction to its partitioning. This module provides that
substrate on top of the columnar :mod:`repro.storage.mmap_index` file
format: posting ids are varbyte-gap-compressed into skip blocks, the
per-token directory (offset, byte length, count, checksum) lives in the
file's JSON directory, and probes read and decode only the touched
lists.

Format lineage: version 1 was this module's own ``RPIX1`` varbyte
layout, which recovered each payload's byte length by ``bisect`` over
the sorted offsets; version 2 is the shared ``RPMX`` layout, which
stores every region's byte length (and CRC32) in the directory
directly. Old ``RPIX`` files are refused with a clear
:class:`~repro.runtime.errors.SnapshotCorrupted` telling the operator
to rebuild.

:class:`DiskProbeJoin` stays the *streaming-decode* fallback: each
probed list is decoded into a fresh in-memory
:class:`~repro.core.inverted_index.PostingList`, so its working set is
the directory plus one probe's lists — the trade to compare against
ClusterMem partitioning, in-memory compression, and the zero-copy
``index_backend='mmap'`` path (all four measurable against each other).
"""

from __future__ import annotations

import os
import tempfile
from array import array

from repro.core.accumulator import (
    accumulate_merge_opt,
    resolve_merge_backend,
    use_accumulator,
)
from repro.core.inverted_index import PostingList
from repro.core.records import Dataset
from repro.core.token_order import ensure_unit_scores
from repro.predicates.base import BoundPredicate
from repro.storage.mmap_index import MappedIndexWriter, MappedInvertedIndex
from repro.utils.counters import CostCounters

__all__ = ["DiskInvertedIndex", "DiskProbeJoin"]


class DiskInvertedIndex:
    """Write-once inverted index with on-disk posting lists.

    Unit-score predicates only (only ids are serialized — readers
    synthesize constant 1.0 scores); ``min_norm`` is persisted in the
    directory so threshold bounds work after reload. Any damage to the
    file — truncation, foreign or version-1 (``RPIX``) magic, a mangled
    directory, a flipped posting byte — raises
    :class:`~repro.runtime.errors.SnapshotCorrupted`, never wrong ids.
    """

    def __init__(self, path: str, mapped: MappedInvertedIndex | None = None):
        self.path = path
        self._mapped = mapped

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, dataset: Dataset, bound: BoundPredicate, path: str
    ) -> "DiskInvertedIndex":
        """Serialize the full record-level index of ``dataset``."""
        cls._check_unit_scores(dataset, bound)
        postings: dict[int, array] = {}
        min_norm = float("inf")
        for rid in range(len(dataset)):
            for token in dataset[rid]:
                column = postings.get(token)
                if column is None:
                    column = array("q")
                    postings[token] = column
                column.append(rid)
            norm = bound.norm(rid)
            if norm < min_norm:
                min_norm = norm
        writer = MappedIndexWriter(path, scored=False, compressed=True)
        try:
            for token, ids in postings.items():
                writer.add_posting(token, ids)
            writer.finish(min_norm=min_norm, n_entities=len(dataset))
        except BaseException:
            writer.abort()
            raise
        return cls.open(path)

    @classmethod
    def open(cls, path: str) -> "DiskInvertedIndex":
        """Open an index previously written by :meth:`build`."""
        return cls(path, MappedInvertedIndex.open(path))

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    @property
    def min_norm(self) -> float:
        return self._require_open().min_norm

    @property
    def n_entries(self) -> int:
        return self._require_open().n_entries

    @property
    def lists_read(self) -> int:
        return self._require_open().lists_read

    @property
    def bytes_read(self) -> int:
        return self._require_open().bytes_read

    def _require_open(self) -> MappedInvertedIndex:
        if self._mapped is None:
            raise ValueError("index is not open")
        return self._mapped

    def __contains__(self, token: int) -> bool:
        return token in self._require_open()

    def __len__(self) -> int:
        return len(self._require_open())

    def read_posting(self, token: int) -> list[int]:
        """Read and decode one posting list from disk."""
        return self._require_open().read_posting(token)

    def probe_lists(self, tokens, probe_scores) -> list[tuple[PostingList, float]]:
        """Decode the probed lists into in-memory posting lists."""
        mapped = self._require_open()
        out = []
        for token, probe_score in zip(tokens, probe_scores):
            if probe_score == 0.0:
                continue
            ids = mapped.read_posting(token)
            if not ids:
                continue
            plist = PostingList()
            for entity_id in ids:
                plist.append(entity_id, 1.0)
            out.append((plist, probe_score))
        return out

    def close(self) -> None:
        if self._mapped is not None:
            self._mapped.close()
            self._mapped = None

    def unlink(self) -> None:
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def __enter__(self) -> "DiskInvertedIndex":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    @staticmethod
    def _check_unit_scores(dataset: Dataset, bound: BoundPredicate) -> None:
        ensure_unit_scores(dataset, bound, what="the disk index")


class DiskProbeJoin:
    """Two-pass probe join against a disk-resident index.

    Builds the index on disk (or reuses one), probes it with every
    record, decoding each touched list per probe. The in-memory
    footprint is the token directory plus one probe's lists.

    Args:
        path: keep the index file here (reusable afterwards); ``None``
            uses a private temp file removed when the join ends.
        merge_backend: probe-merge engine — ``"heap"``, ``"accumulator"``,
            or the adaptive default ``"auto"`` (see
            :mod:`repro.core.accumulator`); results are identical.
    """

    name = "probe-count-disk"

    def __init__(self, path: str | None = None, *, merge_backend=None):
        self.path = path
        self.merge_backend = resolve_merge_backend(merge_backend)

    def join(self, dataset: Dataset, predicate) -> "JoinResult":
        import time

        from repro.core.merge_opt import merge_opt
        from repro.core.results import JoinResult, MatchPair

        bound = predicate.bind(dataset)
        counters = CostCounters()
        start = time.perf_counter()
        owns_path = self.path is None
        if owns_path:
            fd, path = tempfile.mkstemp(prefix="repro-diskindex-", suffix=".rpmx")
            os.close(fd)
        else:
            path = self.path
        index = DiskInvertedIndex.build(dataset, bound, path)
        try:
            band = bound.band_filter()
            pairs: list[MatchPair] = []
            for rid in range(len(dataset)):
                counters.probes += 1
                lists = index.probe_lists(
                    dataset[rid], bound.cached_score_vector(rid)
                )
                if not lists:
                    continue
                norm_r = bound.norm(rid)

                def threshold_of(sid: int, _n=norm_r) -> float:
                    return bound.threshold(_n, bound.norm(sid))

                accept = None
                if band is not None:
                    keys = band.keys
                    radius = band.radius + 1e-12
                    key_r = keys[rid]

                    def accept(sid: int) -> bool:
                        return abs(keys[sid] - key_r) <= radius

                index_threshold = bound.index_threshold(norm_r, index.min_norm)
                if use_accumulator(self.merge_backend, lists):
                    candidates = accumulate_merge_opt(
                        lists, index_threshold, threshold_of, counters, accept
                    )
                else:
                    candidates = merge_opt(
                        lists, index_threshold, threshold_of, counters, accept
                    )
                for sid, _weight in candidates:
                    if sid < rid:
                        counters.pairs_verified += 1
                        ok, similarity = bound.verify(sid, rid)
                        if ok:
                            pairs.append(MatchPair(sid, rid, similarity))
            counters.extra["disk_lists_read"] = index.lists_read
            counters.extra["disk_bytes_read"] = index.bytes_read
            counters.pairs_output = len(pairs)
            return JoinResult(
                pairs=pairs,
                algorithm=self.name,
                predicate=predicate.name,
                counters=counters,
                elapsed_seconds=time.perf_counter() - start,
            )
        finally:
            if owns_path:
                index.unlink()
            else:
                index.close()
