"""Disk-resident inverted index.

The paper's §6 points at IR work on "constructing disk-resident
inverted indices under limited memory conditions" (Heinz & Zobel) as a
complementary direction to its partitioning. This module provides that
substrate: posting lists are serialized varbyte-compressed to a single
file with an in-memory token directory (token -> offset, length,
max-score); probes read and decode only the touched lists.

Combined with the merge engines this gives a third answer to "the index
does not fit in memory", next to ClusterMem partitioning and in-memory
compression — all three measurable against each other.
"""

from __future__ import annotations

import json
import os
import struct
from bisect import bisect_right

from repro.compression.varbyte import varbyte_decode_deltas, varbyte_encode
from repro.core.inverted_index import PostingList
from repro.core.records import Dataset
from repro.core.token_order import ensure_unit_scores
from repro.predicates.base import BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["DiskInvertedIndex"]

_MAGIC = b"RPIX1\n"


class DiskInvertedIndex:
    """Write-once inverted index with on-disk posting lists.

    Unit-score predicates only (only ids are serialized); ``min_norm``
    is persisted in the header so threshold bounds work after reload.
    """

    def __init__(self, path: str):
        self.path = path
        self._directory: dict[int, tuple[int, int]] = {}
        self._sorted_offsets: list[int] = []
        self._data_end = 0
        self.min_norm = float("inf")
        self.n_entries = 0
        self._handle = None
        self.lists_read = 0
        self.bytes_read = 0

    def _finalize_directory(self, data_end: int) -> None:
        self._sorted_offsets = sorted(
            offset for offset, _count in self._directory.values()
        )
        self._data_end = data_end

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, dataset: Dataset, bound: BoundPredicate, path: str
    ) -> "DiskInvertedIndex":
        """Serialize the full record-level index of ``dataset``."""
        cls._check_unit_scores(dataset, bound)
        postings: dict[int, list[int]] = {}
        min_norm = float("inf")
        for rid in range(len(dataset)):
            for token in dataset[rid]:
                postings.setdefault(token, []).append(rid)
            norm = bound.norm(rid)
            if norm < min_norm:
                min_norm = norm

        index = cls(path)
        index.min_norm = min_norm
        with open(path, "wb") as handle:
            handle.write(_MAGIC)
            header_slot = handle.tell()
            handle.write(struct.pack("<Q", 0))  # placeholder: header offset
            for token, ids in postings.items():
                gaps = [ids[0]] + [b - a for a, b in zip(ids, ids[1:])]
                payload = varbyte_encode(gaps)
                index._directory[token] = (handle.tell(), len(ids))
                handle.write(payload)
                index.n_entries += len(ids)
            header_offset = handle.tell()
            header = json.dumps(
                {
                    "min_norm": min_norm if min_norm != float("inf") else None,
                    "n_entries": index.n_entries,
                    "directory": {
                        str(token): [offset, count]
                        for token, (offset, count) in index._directory.items()
                    },
                }
            ).encode("utf-8")
            handle.write(header)
            handle.seek(header_slot)
            handle.write(struct.pack("<Q", header_offset))
        index._finalize_directory(header_offset)
        index._handle = open(path, "rb")
        return index

    @classmethod
    def open(cls, path: str) -> "DiskInvertedIndex":
        """Open an index previously written by :meth:`build`."""
        index = cls(path)
        handle = open(path, "rb")
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            handle.close()
            raise ValueError(f"{path!r} is not a repro disk index")
        (header_offset,) = struct.unpack("<Q", handle.read(8))
        handle.seek(header_offset)
        header = json.loads(handle.read().decode("utf-8"))
        index.min_norm = (
            header["min_norm"] if header["min_norm"] is not None else float("inf")
        )
        index.n_entries = header["n_entries"]
        index._directory = {
            int(token): (offset, count)
            for token, (offset, count) in header["directory"].items()
        }
        index._finalize_directory(header_offset)
        index._handle = handle
        return index

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def __contains__(self, token: int) -> bool:
        return token in self._directory

    def __len__(self) -> int:
        return len(self._directory)

    def read_posting(self, token: int) -> list[int]:
        """Read and decode one posting list from disk."""
        if self._handle is None:
            raise ValueError("index is not open")
        entry = self._directory.get(token)
        if entry is None:
            return []
        offset, count = entry
        self._handle.seek(offset)
        position = bisect_right(self._sorted_offsets, offset)
        end = (
            self._sorted_offsets[position]
            if position < len(self._sorted_offsets)
            else self._data_end
        )
        data = self._handle.read(end - offset)
        self.lists_read += 1
        self.bytes_read += len(data)
        return varbyte_decode_deltas(data, 0, count, 0)

    def probe_lists(self, tokens, probe_scores) -> list[tuple[PostingList, float]]:
        """Decode the probed lists into in-memory posting lists."""
        out = []
        for token, probe_score in zip(tokens, probe_scores):
            if probe_score == 0.0:
                continue
            ids = self.read_posting(token)
            if not ids:
                continue
            plist = PostingList()
            for entity_id in ids:
                plist.append(entity_id, 1.0)
            out.append((plist, probe_score))
        return out

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def unlink(self) -> None:
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def __enter__(self) -> "DiskInvertedIndex":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    @staticmethod
    def _check_unit_scores(dataset: Dataset, bound: BoundPredicate) -> None:
        ensure_unit_scores(dataset, bound, what="the disk index")


class DiskProbeJoin:
    """Two-pass MergeOpt probe against a disk-resident index.

    Builds the index on disk (or reuses one), probes it with every
    record. The in-memory footprint is the token directory alone;
    posting bytes stream from disk per probe.
    """

    name = "probe-count-disk"

    def __init__(self, path: str | None = None):
        self.path = path

    def join(self, dataset: Dataset, predicate) -> "JoinResult":
        import tempfile
        import time

        from repro.core.merge_opt import merge_opt
        from repro.core.results import JoinResult, MatchPair

        bound = predicate.bind(dataset)
        counters = CostCounters()
        start = time.perf_counter()
        owns_path = self.path is None
        path = self.path or tempfile.mktemp(prefix="repro-diskindex-")
        index = DiskInvertedIndex.build(dataset, bound, path)
        try:
            band = bound.band_filter()
            pairs: list[MatchPair] = []
            for rid in range(len(dataset)):
                counters.probes += 1
                lists = index.probe_lists(
                    dataset[rid], bound.cached_score_vector(rid)
                )
                if not lists:
                    continue
                norm_r = bound.norm(rid)

                def threshold_of(sid: int, _n=norm_r) -> float:
                    return bound.threshold(_n, bound.norm(sid))

                accept = None
                if band is not None:
                    keys = band.keys
                    radius = band.radius + 1e-12
                    key_r = keys[rid]

                    def accept(sid: int) -> bool:
                        return abs(keys[sid] - key_r) <= radius

                for sid, _weight in merge_opt(
                    lists,
                    bound.index_threshold(norm_r, index.min_norm),
                    threshold_of,
                    counters,
                    accept,
                ):
                    if sid < rid:
                        counters.pairs_verified += 1
                        ok, similarity = bound.verify(sid, rid)
                        if ok:
                            pairs.append(MatchPair(sid, rid, similarity))
            counters.extra["disk_lists_read"] = index.lists_read
            counters.extra["disk_bytes_read"] = index.bytes_read
            counters.pairs_output = len(pairs)
            return JoinResult(
                pairs=pairs,
                algorithm=self.name,
                predicate=predicate.name,
                counters=counters,
                elapsed_seconds=time.perf_counter() - start,
            )
        finally:
            if owns_path:
                index.unlink()
            else:
                index.close()
