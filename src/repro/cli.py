"""Command-line interface: similarity joins over line-oriented text.

Each input line is one record. Subcommands::

    python -m repro join   --input records.txt --predicate jaccard --threshold 0.8
    python -m repro dedupe --input records.txt --predicate overlap --threshold 5
    python -m repro editjoin --input names.txt -k 2
    python -m repro stats  --input records.txt --tokenizer 3grams

``join`` prints TSV ``rid_a  rid_b  similarity``; ``dedupe`` prints one
duplicate group per line; ``stats`` prints the Table-1 statistics of
the tokenized corpus.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.dedupe import connected_components
from repro.core.join import edit_distance_join, similarity_join
from repro.core.records import Dataset
from repro.predicates import (
    CosinePredicate,
    DicePredicate,
    JaccardPredicate,
    OverlapPredicate,
    WeightedOverlapPredicate,
)
from repro.text.tokenizers import tokenize_qgrams, tokenize_words

__all__ = ["main"]

_TOKENIZERS = {
    "words": tokenize_words,
    "3grams": lambda text: tokenize_qgrams(text, q=3),
    "2grams": lambda text: tokenize_qgrams(text, q=2),
}

_PREDICATES = {
    "overlap": OverlapPredicate,
    "weighted-overlap": WeightedOverlapPredicate,
    "jaccard": JaccardPredicate,
    "cosine": CosinePredicate,
    "dice": DicePredicate,
}


def _read_lines(path: str) -> list[str]:
    if path == "-":
        return [line.rstrip("\n") for line in sys.stdin if line.strip()]
    with open(path, "r", encoding="utf-8") as handle:
        return [line.rstrip("\n") for line in handle if line.strip()]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", "-i", required=True, help="input file ('-' = stdin)")
    parser.add_argument(
        "--tokenizer", choices=sorted(_TOKENIZERS), default="words",
        help="how to derive the element set from each line",
    )


def _add_join_options(parser: argparse.ArgumentParser) -> None:
    _add_common(parser)
    parser.add_argument(
        "--predicate", choices=sorted(_PREDICATES), default="jaccard"
    )
    parser.add_argument(
        "--threshold", "-t", type=float, required=True,
        help="T for overlap predicates, fraction for the others",
    )
    parser.add_argument("--algorithm", default="probe-cluster")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exact set-similarity joins (Sarawagi & Kirpal, SIGMOD 2004)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    join_parser = commands.add_parser("join", help="print matching record pairs")
    _add_join_options(join_parser)

    dedupe_parser = commands.add_parser("dedupe", help="print duplicate groups")
    _add_join_options(dedupe_parser)

    edit_parser = commands.add_parser(
        "editjoin", help="exact edit-distance join over the raw lines"
    )
    edit_parser.add_argument("--input", "-i", required=True)
    edit_parser.add_argument("-k", type=int, required=True, help="max edit distance")
    edit_parser.add_argument("-q", type=int, default=3, help="q-gram length")
    edit_parser.add_argument("--algorithm", default="probe-count-optmerge")

    stats_parser = commands.add_parser("stats", help="corpus statistics (Table 1)")
    _add_common(stats_parser)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    lines = _read_lines(args.input)

    if args.command == "editjoin":
        result = edit_distance_join(lines, k=args.k, q=args.q, algorithm=args.algorithm)
        for pair in result.sorted_pairs():
            print(f"{pair.rid_a}\t{pair.rid_b}\t{int(pair.similarity)}")
        print(
            f"# {len(result.pairs)} pairs, {result.elapsed_seconds:.2f}s",
            file=sys.stderr,
        )
        return 0

    dataset = Dataset.from_texts(lines, _TOKENIZERS[args.tokenizer])

    if args.command == "stats":
        print(f"records\t{len(dataset)}")
        print(f"avg_set_size\t{dataset.average_set_size():.1f}")
        print(f"distinct_elements\t{dataset.n_distinct_tokens()}")
        print(f"word_occurrences\t{dataset.total_word_occurrences()}")
        return 0

    predicate = _PREDICATES[args.predicate](args.threshold)
    result = similarity_join(dataset, predicate, algorithm=args.algorithm)

    if args.command == "join":
        for pair in result.sorted_pairs():
            print(f"{pair.rid_a}\t{pair.rid_b}\t{pair.similarity:.4f}")
        print(
            f"# {len(result.pairs)} pairs, {result.elapsed_seconds:.2f}s,"
            f" algorithm={result.algorithm}",
            file=sys.stderr,
        )
        return 0

    # dedupe
    groups = connected_components(result.pairs, len(dataset))
    for members in groups:
        print("\t".join(str(rid) for rid in members))
    print(f"# {len(groups)} duplicate groups", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
