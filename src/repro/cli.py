"""Command-line interface: similarity joins over line-oriented text.

Each input line is one record. Subcommands::

    python -m repro join   --input records.txt --predicate jaccard --threshold 0.8
    python -m repro dedupe --input records.txt --predicate overlap --threshold 5
    python -m repro editjoin --input names.txt -k 2
    python -m repro stats  --input records.txt --tokenizer 3grams

``join`` prints TSV ``rid_a  rid_b  similarity``; ``dedupe`` prints one
duplicate group per line; ``stats`` prints the Table-1 statistics of
the tokenized corpus.

Hardened runtime (``join``/``dedupe``): ``--checkpoint DIR`` makes the
join resumable — an interrupted run (SIGINT, ``--deadline`` expiry)
flushes its progress there and the same command picks up where it left
off. ``--memory-budget N`` caps live index entries, degrading to the
ClusterMem algorithm when exceeded. Operational errors exit with a
one-line message (never a traceback): status 2 for bad input/usage,
124 on deadline expiry, 130 on interruption.

Serving (``serve``): index the input corpus, then answer similarity
queries read line-by-line from ``--queries`` (default stdin) through a
bounded worker pool with load shedding, per-query deadlines, retries,
and a circuit breaker. Prints ``qid  rid  similarity`` per match;
SIGINT/SIGTERM drains in-flight queries gracefully before exiting and
a health summary always goes to stderr.

Multi-node serving (``shard-serve``): host one index shard behind a
TCP socket speaking the length-prefixed, checksummed binary wire
protocol of :mod:`repro.serving.transport`. A front end started with
``serve --shard-endpoints host:port,...`` mixes those nodes (and
``local`` in-process shards) into its scatter-gather tier; each remote
node is its own network fault domain with heartbeats, reconnecting
retries, and partial-result failover.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from collections import deque
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import contextmanager

from repro.core.accumulator import MERGE_BACKENDS
from repro.storage.mmap_index import INDEX_BACKENDS
from repro.core.dedupe import connected_components
from repro.core.join import ALGORITHMS, edit_distance_join, make_algorithm, similarity_join
from repro.core.records import Dataset
from repro.core.service import SimilarityIndex
from repro.predicates import (
    CosinePredicate,
    DicePredicate,
    JaccardPredicate,
    OverlapPredicate,
    WeightedOverlapPredicate,
)
from repro.runtime import (
    CancellationToken,
    JoinCancelled,
    JoinCheckpointer,
    JoinContext,
    JoinRuntimeError,
    JoinTimeout,
    ServerOverloaded,
)
from repro.serving import (
    CircuitBreaker,
    HedgePolicy,
    IndexServer,
    RetryPolicy,
    ShardServer,
    ShardedIndexServer,
    ShardedResult,
)
from repro.serving.transport import parse_endpoint
from repro.text.tfidf import CorpusStats
from repro.text.tokenizers import tokenize_qgrams, tokenize_words

__all__ = ["main"]

_TOKENIZERS = {
    "words": tokenize_words,
    "3grams": lambda text: tokenize_qgrams(text, q=3),
    "2grams": lambda text: tokenize_qgrams(text, q=2),
}

_PREDICATES = {
    "overlap": OverlapPredicate,
    "weighted-overlap": WeightedOverlapPredicate,
    "jaccard": JaccardPredicate,
    "cosine": CosinePredicate,
    "dice": DicePredicate,
}

#: Exit statuses (join/dedupe): usage & input errors / deadline / interrupt.
EXIT_USAGE = 2
EXIT_TIMEOUT = 124
EXIT_INTERRUPTED = 130


class _CLIError(Exception):
    """An operational error reported as one line on stderr, exit 2."""


def _read_lines(path: str) -> list[str]:
    try:
        if path == "-":
            return [line.rstrip("\n") for line in sys.stdin if line.strip()]
        with open(path, "r", encoding="utf-8") as handle:
            return [line.rstrip("\n") for line in handle if line.strip()]
    except OSError as exc:
        detail = exc.strerror or str(exc)
        raise _CLIError(f"cannot read {path}: {detail}") from exc


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", "-i", required=True, help="input file ('-' = stdin)")
    parser.add_argument(
        "--tokenizer", choices=sorted(_TOKENIZERS), default="words",
        help="how to derive the element set from each line",
    )


def _add_join_options(parser: argparse.ArgumentParser) -> None:
    _add_common(parser)
    parser.add_argument(
        "--predicate", choices=sorted(_PREDICATES), default="jaccard"
    )
    parser.add_argument(
        "--threshold", "-t", type=float, required=True,
        help="T for overlap predicates, fraction for the others",
    )
    parser.add_argument("--algorithm", default="probe-cluster")
    parser.add_argument(
        "--workers", "-w", type=int, default=1, metavar="N",
        help="shard the join over N worker processes (default 1 = serial);"
        " the result is identical to the serial join",
    )
    approx = parser.add_argument_group("approximate mode")
    approx.add_argument(
        "--mode", choices=("exact", "approx"), default="exact",
        help="'exact' (default) runs --algorithm; 'approx' trades a"
        " bounded, seeded fraction of recall for speed via LSH"
        " candidate generation — emitted pairs are still verified"
        " exactly (never a false positive) and a sampled recall"
        " estimate is reported on stderr",
    )
    approx.add_argument(
        "--target-recall", type=float, default=0.9, metavar="FRACTION",
        help="with --mode approx: per-qualifying-pair surfacing"
        " probability the run is sized for (default 0.9)",
    )
    _add_seed_option(parser)
    _add_merge_backend_option(parser)
    _add_index_backend_option(parser)
    _add_bitmap_options(parser)
    runtime = parser.add_argument_group("hardened runtime")
    runtime.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="checkpoint directory; an interrupted run resumes from it",
    )
    runtime.add_argument(
        "--checkpoint-interval", metavar="N", type=int, default=1000,
        help="records between checkpoints (default 1000)",
    )
    runtime.add_argument(
        "--deadline", metavar="SECONDS", type=float, default=None,
        help="abort (exit 124) when the join exceeds this wall-clock budget",
    )
    runtime.add_argument(
        "--memory-budget", metavar="ENTRIES", type=int, default=None,
        help="cap live index entries (word occurrences); exceeding it"
        " degrades the join to the cluster-mem algorithm",
    )


def _add_seed_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="deterministic seed for approximate candidate generation"
        " (--mode approx / --algorithm approx); a fixed seed yields an"
        " identical pair set at any --workers count (default 0)",
    )


def _add_merge_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--merge-backend", choices=MERGE_BACKENDS, default="auto",
        help="probe-merge engine: 'heap' (heap merge), 'accumulator'"
        " (score-accumulator scan), or 'auto' (adaptive per probe, the"
        " default); results are identical across backends",
    )


def _add_index_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--index-backend", choices=INDEX_BACKENDS, default="memory",
        help="where the probe index lives: 'memory' (in-process, the"
        " default) or 'mmap' (write-once on-disk columnar file probed"
        " zero-copy through a memory mapping; needs a two-pass"
        " algorithm such as probe-count-optmerge); results are"
        " identical across backends",
    )
    parser.add_argument(
        "--index-path", metavar="FILE", default=None,
        help="with --index-backend mmap, keep the mapped index at FILE"
        " instead of an unlinked temp file",
    )


def _add_bitmap_options(parser: argparse.ArgumentParser) -> None:
    filters = parser.add_argument_group("candidate filters")
    filters.add_argument(
        "--bitmap-filter", action="store_true",
        help="prune candidate pairs with fixed-width bitmap signatures"
        " before exact verification; the output is identical either way",
    )
    filters.add_argument(
        "--bitmap-width", metavar="BITS", type=int, default=128,
        help="signature width in bits (default 128; wider = fewer false"
        " survivors, costlier checks)",
    )


def _bitmap_config(args):
    """The BitmapFilterConfig the flags ask for, or None (filter off)."""
    if not getattr(args, "bitmap_filter", False):
        return None
    from repro.filters import BitmapFilterConfig

    try:
        return BitmapFilterConfig(width=args.bitmap_width)
    except ValueError as exc:
        raise _CLIError(str(exc)) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exact set-similarity joins (Sarawagi & Kirpal, SIGMOD 2004)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    join_parser = commands.add_parser("join", help="print matching record pairs")
    _add_join_options(join_parser)

    dedupe_parser = commands.add_parser("dedupe", help="print duplicate groups")
    _add_join_options(dedupe_parser)

    edit_parser = commands.add_parser(
        "editjoin", help="exact edit-distance join over the raw lines"
    )
    edit_parser.add_argument("--input", "-i", required=True)
    edit_parser.add_argument("-k", type=int, required=True, help="max edit distance")
    edit_parser.add_argument("-q", type=int, default=3, help="q-gram length")
    edit_parser.add_argument("--algorithm", default="probe-count-optmerge")
    _add_seed_option(edit_parser)
    _add_merge_backend_option(edit_parser)
    _add_bitmap_options(edit_parser)

    stats_parser = commands.add_parser("stats", help="corpus statistics (Table 1)")
    _add_common(stats_parser)

    serve_parser = commands.add_parser(
        "serve", help="serve similarity queries over the indexed input"
    )
    _add_common(serve_parser)
    serve_parser.add_argument(
        "--predicate", choices=sorted(_PREDICATES), default="jaccard"
    )
    serve_parser.add_argument(
        "--threshold", "-t", type=float, required=True,
        help="T for overlap predicates, fraction for the others",
    )
    serve_parser.add_argument(
        "--queries", metavar="FILE", default="-",
        help="file of query lines ('-' = stdin, the default)",
    )
    serving = serve_parser.add_argument_group("serving")
    serving.add_argument(
        "--workers", type=int, default=4, help="query worker threads (default 4)"
    )
    serving.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission queue bound; a full queue sheds (default 64)",
    )
    serving.add_argument(
        "--process-pool", action="store_true",
        help="run probes on a forked process pool (GIL-free CPU-bound"
        " serving); the pool serves the corpus as indexed at startup",
    )
    serving.add_argument(
        "--query-deadline", metavar="SECONDS", type=float, default=None,
        help="per-query wall-clock budget, queue wait included",
    )
    serving.add_argument(
        "--retries", type=int, default=3,
        help="attempts per query for transient faults (default 3; 1 = off)",
    )
    serving.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive failures that open the circuit breaker (default 5)",
    )
    serving.add_argument(
        "--breaker-cooldown", metavar="SECONDS", type=float, default=5.0,
        help="seconds the breaker stays open before half-opening (default 5)",
    )
    serving.add_argument(
        "--drain-timeout", metavar="SECONDS", type=float, default=10.0,
        help="grace period for in-flight queries on shutdown (default 10)",
    )
    serving.add_argument(
        "--query-cache", metavar="N", type=int, default=0,
        help="LRU query-result cache capacity (default 0 = off); entries"
        " are invalidated whenever the index mutates (per shard with"
        " --shards > 1: a flip invalidates only that shard's entries)",
    )
    sharding = serve_parser.add_argument_group("sharding")
    sharding.add_argument(
        "--shards", metavar="N", type=int, default=1,
        help="partition the index across N shards served scatter-gather"
        " (default 1 = single index); results are identical, but each"
        " shard is its own fault domain and a query that loses shards"
        " returns partial results with a completeness TSV column",
    )
    sharding.add_argument(
        "--shard-workers", metavar="N", type=int, default=2,
        help="probe threads per shard (default 2; hedging needs >= 2)",
    )
    sharding.add_argument(
        "--hedge-delay", metavar="SECONDS", type=float, default=None,
        help="re-issue a shard probe still running after this many"
        " seconds and take whichever finishes first (default off)",
    )
    sharding.add_argument(
        "--require-complete", action="store_true",
        help="fail a query that loses any shard (typed PartialResult"
        " error) instead of answering from the surviving shards",
    )
    sharding.add_argument(
        "--shard-endpoints", metavar="LIST", default=None,
        help="comma-separated shard backends, one per shard: 'host:port'"
        " probes a remote shard-serve node over TCP, 'local' keeps that"
        " shard in-process; sets the shard count when --shards is not"
        " given (e.g. 'local,127.0.0.1:7601,127.0.0.1:7602')",
    )
    sharding.add_argument(
        "--heartbeat-interval", metavar="SECONDS", type=float, default=1.0,
        help="seconds between health pings to each remote shard; pings"
        " feed that shard's circuit breaker (default 1.0)",
    )
    _add_merge_backend_option(serve_parser)
    _add_bitmap_options(serve_parser)

    shard_parser = commands.add_parser(
        "shard-serve",
        help="host one index shard behind a TCP socket for a remote"
        " serve front end",
    )
    shard_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    shard_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (default 0 = pick a free port; the"
        " bound address is printed to stderr)",
    )
    shard_parser.add_argument(
        "--predicate", choices=sorted(_PREDICATES), default="jaccard"
    )
    shard_parser.add_argument(
        "--threshold", "-t", type=float, required=True,
        help="T for overlap predicates, fraction for the others",
    )
    shard_parser.add_argument(
        "--tokenizer", choices=sorted(_TOKENIZERS), default="words",
        help="how to derive the element set from each record",
    )
    shard_parser.add_argument(
        "--input", "-i", default=None,
        help="full corpus file, used only to pin the token vocabulary"
        " and the global IDF statistics (required for cosine); records"
        " themselves arrive over the wire from the front end, which"
        " owns shard routing",
    )
    _add_merge_backend_option(shard_parser)
    _add_bitmap_options(shard_parser)

    return parser


# ----------------------------------------------------------------------
# Runtime context plumbing
# ----------------------------------------------------------------------


def _build_context(args) -> JoinContext | None:
    """A JoinContext for the flags given, or None when none were."""
    wanted = (
        getattr(args, "checkpoint", None) is not None
        or getattr(args, "deadline", None) is not None
        or getattr(args, "memory_budget", None) is not None
    )
    if not wanted:
        return None
    checkpointer = None
    if args.checkpoint is not None:
        try:
            checkpointer = JoinCheckpointer(
                args.checkpoint, interval_records=args.checkpoint_interval
            )
        except (OSError, ValueError) as exc:
            raise _CLIError(f"bad --checkpoint: {exc}") from exc
    try:
        return JoinContext(
            deadline_seconds=args.deadline,
            cancel_token=CancellationToken(),
            memory_budget_entries=args.memory_budget,
            checkpointer=checkpointer,
        )
    except ValueError as exc:
        raise _CLIError(str(exc)) from exc


@contextmanager
def _sigint_cancels(context: JoinContext | None):
    """Route Ctrl-C into cooperative cancellation while a join runs.

    The driver then flushes the checkpoint (when one is configured)
    before raising JoinCancelled, so SIGINT never loses progress.
    Outside the main thread (or without a context) this is a no-op and
    the default KeyboardInterrupt applies.
    """
    if context is None or threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGINT)

    def handler(signum, frame):
        context.cancel("SIGINT")

    signal.signal(signal.SIGINT, handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)


def _approx_kwargs(args) -> dict:
    """Extra construction kwargs for the approx algorithm, else {}."""
    if getattr(args, "algorithm", None) != "approx":
        return {}
    kwargs = {"seed": getattr(args, "seed", 0)}
    target = getattr(args, "target_recall", None)
    if target is not None:
        kwargs["target_recall"] = target
    return kwargs


def _print_approx_summary(args, result) -> None:
    """One stderr line of approx-mode accounting (join and dedupe)."""
    if getattr(args, "algorithm", None) != "approx":
        return
    extra = result.extra
    parts = [f"target_recall={getattr(args, 'target_recall', 0.9)}"]
    parts.append(f"seed={extra.get('approx_seed', getattr(args, 'seed', 0))}")
    reps = extra.get("approx_repetitions")
    if reps is not None:
        parts.append(f"repetitions={reps}")
    estimate = extra.get("recall_estimate")
    if estimate is not None:
        truth = extra.get("recall_sample_truth", 0)
        parts.append(f"sampled_recall={estimate:.3f} (over {truth} true pairs)")
    if extra.get("approx_recall_capped"):
        parts.append("repetition cap hit: target not reachable")
    print(f"# approx: {', '.join(parts)}", file=sys.stderr)


def _make_cli_algorithm(args):
    """Instantiate the requested algorithm with CLI-friendly errors."""
    if args.algorithm == "cluster-mem":
        if args.memory_budget is None:
            raise _CLIError(
                "--algorithm cluster-mem needs --memory-budget ENTRIES"
            )
        from repro.core.cluster_mem import MemoryBudget

        return make_algorithm(
            "cluster-mem",
            budget=MemoryBudget(args.memory_budget),
            bitmap_filter=_bitmap_config(args),
            merge_backend=args.merge_backend,
            index_backend=getattr(args, "index_backend", None),
            index_path=getattr(args, "index_path", None),
        )
    try:
        algorithm = make_algorithm(
            args.algorithm,
            bitmap_filter=_bitmap_config(args),
            merge_backend=args.merge_backend,
            index_backend=getattr(args, "index_backend", None),
            index_path=getattr(args, "index_path", None),
            **_approx_kwargs(args),
        )
        # Surface an unsupported --index-backend combination as a CLI
        # one-liner now rather than a traceback at join time.
        check = getattr(algorithm, "_check_index_backend", None)
        if check is not None:
            check()
        return algorithm
    except ValueError as exc:
        raise _CLIError(str(exc)) from exc


def _run_join(args, dataset: Dataset, predicate, context: JoinContext | None):
    if getattr(args, "mode", "exact") == "approx":
        # --mode approx supplies its own candidate generator; only the
        # default --algorithm (or an explicit "approx") composes with it.
        if args.algorithm not in ("probe-cluster", "approx"):
            raise _CLIError(
                f"--mode approx cannot run --algorithm {args.algorithm!r};"
                " drop --algorithm (approx replaces the candidate generator)"
            )
        args.algorithm = "approx"
    workers = getattr(args, "workers", 1)
    if workers < 1:
        raise _CLIError(f"--workers must be >= 1, got {workers}")
    if workers > 1:
        from repro.parallel import PARALLEL_ALGORITHMS, parallel_join

        if args.algorithm not in PARALLEL_ALGORITHMS:
            raise _CLIError(
                f"--workers > 1 needs a shardable algorithm;"
                f" {args.algorithm!r} is not one of"
                f" {sorted(PARALLEL_ALGORITHMS)}"
            )
        if getattr(args, "index_path", None) is not None:
            # Every worker builds its own index; a single pinned file
            # would have them clobbering each other.
            raise _CLIError("--index-path cannot be combined with --workers > 1")
        # Validate the backend combination here: a worker raising the
        # same ValueError surfaces as a crash, not a CLI one-liner.
        _make_cli_algorithm(args)
        if context is None:
            # A bare context so Ctrl-C still cancels the worker pool
            # cooperatively instead of killing it mid-stream.
            context = JoinContext(cancel_token=CancellationToken())
        with _sigint_cancels(context):
            result = parallel_join(
                dataset,
                predicate,
                algorithm=args.algorithm,
                workers=workers,
                context=context,
                bitmap_filter=_bitmap_config(args),
                merge_backend=args.merge_backend,
                index_backend=getattr(args, "index_backend", None),
                **_approx_kwargs(args),
            )
        if args.algorithm == "approx" and not result.degraded and len(dataset):
            # Workers run under shard windows and skip the per-shard
            # estimate (it would only see a slice of the pair set), so
            # sample recall here against the merged pairs instead.
            from repro.approx import estimate_recall

            result.extra["approx_seed"] = getattr(args, "seed", 0)
            result.extra.update(
                estimate_recall(
                    dataset,
                    predicate,
                    result.pair_set(),
                    seed=getattr(args, "seed", 0),
                )
            )
        return result
    algorithm = _make_cli_algorithm(args)
    with _sigint_cancels(context):
        return algorithm.join(dataset, predicate, context=context)


# ----------------------------------------------------------------------
# Serving
# ----------------------------------------------------------------------


class _DrainRequested(Exception):
    """SIGINT/SIGTERM arrived while serving; shut down gracefully."""


@contextmanager
def _drain_signals():
    """Turn SIGINT/SIGTERM into :class:`_DrainRequested` while serving.

    Raising from the handler aborts even a ``readline`` blocked on
    stdin (PEP 475 only retries the call when the handler returns
    normally), so the serve loop wakes up immediately. Outside the main
    thread this is a no-op and default signal behaviour applies.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = {
        sig: signal.getsignal(sig) for sig in (signal.SIGINT, signal.SIGTERM)
    }

    def handler(signum, frame):
        raise _DrainRequested(signal.Signals(signum).name)

    for sig in previous:
        signal.signal(sig, handler)
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _emit_query_result(qid: int, future, timeout: float) -> bool:
    """Print one query's matches as TSV; returns False on failure.

    Sharded answers carry a fourth completeness column
    (``complete``/``partial``) so downstream consumers can tell an
    exact empty answer from one that lost shards. A sharded query with
    no surviving matches still emits one status row (``qid  -  -
    complete|partial``) — otherwise an empty partial answer would be
    indistinguishable in the TSV stream from an exact empty one.
    Partial answers also get a stderr note naming the lost shards.
    """
    try:
        matches = future.result(timeout=timeout)
    except JoinRuntimeError as exc:
        print(f"repro: query {qid}: {exc}", file=sys.stderr)
        return False
    except FuturesTimeout:
        print(f"repro: query {qid}: no result after {timeout:.1f}s", file=sys.stderr)
        return False
    suffix = ""
    if isinstance(matches, ShardedResult):
        status = "partial" if matches.partial else "complete"
        suffix = f"\t{status}"
        if matches.partial:
            print(
                f"repro: query {qid}: partial result"
                f" (lost shards {list(matches.shards_failed)})",
                file=sys.stderr,
            )
        if not len(matches):
            print(f"{qid}\t-\t-\t{status}")
    for pair in matches:
        print(f"{qid}\t{pair.rid_a}\t{pair.similarity:.4f}{suffix}")
    return True


def _global_corpus_stats(corpus: list[str], tokenizer) -> CorpusStats:
    """IDF statistics over the whole corpus for cosine serving.

    A bare ``CosinePredicate`` binds whatever corpus its index holds at
    first insert — one record on the incremental add path, and a
    per-shard sub-corpus under ``ShardedIndexServer`` (whose contract
    requires precomputed global statistics for corpus-dependent
    predicates). Precomputing here gives every serving configuration
    the same frozen preprocessing-pass IDF the batch join uses. Token
    ids are assigned exactly as the indexes' vocabulary will assign
    them (insertion order over the same corpus, same tokenizer), so
    the stats key on the same ids.
    """
    vocabulary: dict[str, int] = {}
    records = []
    for text in corpus:
        ids = {
            vocabulary.setdefault(token, len(vocabulary))
            for token in tokenizer(text)
        }
        records.append(tuple(sorted(ids)))
    return CorpusStats(records)


def _print_serve_health(server) -> None:
    health = server.health()

    def _ms(seconds: float | None) -> str:
        return "-" if seconds is None else f"{seconds * 1000.0:.1f}ms"

    if "shards" in health:
        latency = health["latency"]
        partial = health["partial"]
        hedging = health["hedging"]
        counters = health["index"]["counters"]
        breaker_states = [
            row["breaker"]["state"] if row["breaker"] else "off"
            for row in health["shards"]
        ]
        hedge_note = (
            f" hedges {hedging['issued']} issued/{hedging['wins']} won,"
            if hedging["enabled"]
            else ""
        )
        retries = ",".join(str(row["retries"]) for row in health["shards"])
        remote_note = ""
        if any(row["remote"] for row in health["shards"]):
            reconnects = ",".join(
                str(row["reconnects"]) for row in health["shards"]
            )
            beats = health["heartbeat"]
            remote_note = (
                f" reconnects={reconnects},"
                f" heartbeats {beats['ok']} ok/{beats['failed']} failed,"
            )
        print(
            f"# serve: {health['completed']} completed"
            f" ({partial['partial']} partial), {health['failed']} failed,"
            f" {health['shed']} shed, {health['retried']} retried,"
            f" shards={health['router']['shards']}"
            f" spread={health['router']['spread']},"
            f" retries={retries},"
            f"{remote_note}"
            f"{hedge_note}"
            f" p50 {_ms(latency['p50_seconds'])}, p99 {_ms(latency['p99_seconds'])},"
            f" breakers={','.join(breaker_states)},"
            f" unknown_query_tokens={counters.get('unknown_query_tokens', 0)}",
            file=sys.stderr,
        )
        return

    latency = health["latency"]
    breaker = health["breaker"]
    counters = health["index"]["counters"]
    pool = health["pool"]
    cache = health["cache"]
    cache_note = (
        f" cache {cache['hits']}/{cache['hits'] + cache['misses']} hits,"
        if cache is not None
        else ""
    )
    print(
        f"# serve: {health['completed']} completed, {health['failed']} failed,"
        f" {health['shed']} shed, {health['retried']} retried,"
        f" pool={pool['mode']} {pool['busy']}/{pool['total']} busy,"
        f"{cache_note}"
        f" p50 {_ms(latency['p50_seconds'])}, p99 {_ms(latency['p99_seconds'])},"
        f" breaker={breaker['state'] if breaker else 'off'},"
        f" unknown_query_tokens={counters.get('unknown_query_tokens', 0)}",
        file=sys.stderr,
    )


def _corpus_vocabulary(corpus: list[str], tokenizer) -> dict[str, int]:
    """Token ids assigned in first-occurrence order over ``corpus``.

    The same assignment :func:`_global_corpus_stats` makes (and the one
    an index filled from this corpus would make), so a shard node in a
    different process keys its cosine IDF statistics on the same ids
    the front end does. Tokenizers return first-occurrence-ordered
    lists, so the assignment is deterministic across processes.
    """
    vocabulary: dict[str, int] = {}
    for text in corpus:
        for token in tokenizer(text):
            vocabulary.setdefault(token, len(vocabulary))
    return vocabulary


def _shard_serve(args) -> int:
    """The ``shard-serve`` subcommand: host one shard behind a socket."""
    if not 0 <= args.port <= 65535:
        raise _CLIError(f"--port must be in [0, 65535], got {args.port}")
    try:
        predicate = _PREDICATES[args.predicate](args.threshold)
    except ValueError as exc:
        raise _CLIError(f"bad --threshold for {args.predicate}: {exc}") from exc
    tokenizer = _TOKENIZERS[args.tokenizer]
    vocabulary = None
    if args.input is not None:
        corpus = _read_lines(args.input)
        if not corpus:
            raise _CLIError(f"no records in {args.input} (empty input)")
        vocabulary = _corpus_vocabulary(corpus, tokenizer)
        if isinstance(predicate, CosinePredicate):
            predicate = CosinePredicate(
                args.threshold, stats=_global_corpus_stats(corpus, tokenizer)
            )
    elif isinstance(predicate, CosinePredicate):
        # Without the global corpus the node would bind IDF weights to
        # whatever subset the front end routes to it, and its scores
        # would silently diverge from the other shards'.
        raise _CLIError(
            "cosine shard-serve needs --input CORPUS to pin the global"
            " IDF statistics"
        )
    index = SimilarityIndex(
        predicate,
        tokenizer=tokenizer,
        bitmap_filter=_bitmap_config(args),
        merge_backend=args.merge_backend,
        vocabulary=vocabulary,
    )
    try:
        node = ShardServer(index, host=args.host, port=args.port)
        node.start()
    except OSError as exc:
        detail = exc.strerror or str(exc)
        raise _CLIError(f"cannot listen on {args.host}:{args.port}: {detail}") from exc
    host, port = node.address
    print(
        f"# shard-serve: listening on {host}:{port}"
        f" ({args.predicate} t={args.threshold}, {args.tokenizer})",
        file=sys.stderr,
    )
    interrupted = None
    try:
        with _drain_signals():
            try:
                threading.Event().wait()
            except _DrainRequested as exc:
                interrupted = str(exc)
    finally:
        health = node.health()
        node.stop()
        requests = sum(health["requests"].values())
        print(
            f"# shard-serve: {interrupted or 'stopping'}:"
            f" {health['records']} records, generation"
            f" {health['epoch']}.{health['generation']},"
            f" {requests} requests, {health['errors']} errors",
            file=sys.stderr,
        )
    return EXIT_INTERRUPTED if interrupted == "SIGINT" else 0


def _serve(args, corpus: list[str]) -> int:
    """The ``serve`` subcommand: index the corpus, answer query lines."""
    if args.queries == "-" and args.input == "-":
        raise _CLIError("--input and --queries cannot both read stdin")
    if args.workers < 1:
        raise _CLIError(f"--workers must be >= 1, got {args.workers}")
    if args.queue_limit < 1:
        raise _CLIError(f"--queue-limit must be >= 1, got {args.queue_limit}")
    if args.retries < 1:
        raise _CLIError(f"--retries must be >= 1, got {args.retries}")
    if args.query_cache < 0:
        raise _CLIError(f"--query-cache must be >= 0, got {args.query_cache}")
    if args.shards < 1:
        raise _CLIError(f"--shards must be >= 1, got {args.shards}")
    if args.shard_workers < 1:
        raise _CLIError(f"--shard-workers must be >= 1, got {args.shard_workers}")
    if args.hedge_delay is not None and args.hedge_delay <= 0:
        raise _CLIError(f"--hedge-delay must be > 0, got {args.hedge_delay}")
    if args.heartbeat_interval <= 0:
        raise _CLIError(
            f"--heartbeat-interval must be > 0, got {args.heartbeat_interval}"
        )
    endpoints = None
    if args.shard_endpoints is not None:
        endpoints = [spec.strip() for spec in args.shard_endpoints.split(",")]
        if not endpoints or any(not spec for spec in endpoints):
            raise _CLIError(
                "--shard-endpoints needs a non-empty comma-separated list"
                " of 'host:port' or 'local' entries"
            )
        for spec in endpoints:
            if spec.lower() != "local":
                try:
                    parse_endpoint(spec)
                except ValueError as exc:
                    raise _CLIError(
                        f"bad --shard-endpoints entry {spec!r}: {exc}"
                    ) from exc
        if args.shards > 1 and args.shards != len(endpoints):
            raise _CLIError(
                f"--shards {args.shards} does not match the"
                f" {len(endpoints)} entries in --shard-endpoints"
            )
        args.shards = len(endpoints)
    if args.shards == 1 and endpoints is None:
        for flag, name in (
            (args.hedge_delay is not None, "--hedge-delay"),
            (args.require_complete, "--require-complete"),
        ):
            if flag:
                raise _CLIError(f"{name} requires --shards > 1")
    elif args.process_pool:
        raise _CLIError("--process-pool is not supported with sharded serving")
    try:
        predicate = _PREDICATES[args.predicate](args.threshold)
    except ValueError as exc:
        raise _CLIError(f"bad --threshold for {args.predicate}: {exc}") from exc
    if isinstance(predicate, CosinePredicate):
        # Pin cosine's IDF weights to the *global* corpus up front.
        # Deferred binding happens at the first add — a 1-record
        # "corpus" — and per-shard binding would score against
        # sub-corpus frequencies; either way the weights would not be
        # the paper's preprocessing-pass IDF, and sharded and
        # single-index answers could silently diverge.
        predicate = CosinePredicate(
            args.threshold,
            stats=_global_corpus_stats(corpus, _TOKENIZERS[args.tokenizer]),
        )

    retry_policy = RetryPolicy(max_attempts=args.retries) if args.retries > 1 else None
    try:
        if args.shards > 1 or endpoints is not None:
            server = ShardedIndexServer(
                predicate,
                shards=args.shards,
                tokenizer=_TOKENIZERS[args.tokenizer],
                workers=args.workers,
                shard_workers=args.shard_workers,
                queue_limit=args.queue_limit,
                default_deadline=args.query_deadline,
                query_cache=args.query_cache,
                retry_policy=retry_policy,
                breaker_factory=lambda: CircuitBreaker(
                    failure_threshold=args.breaker_threshold,
                    cooldown_seconds=args.breaker_cooldown,
                ),
                hedge=(
                    HedgePolicy(delay=args.hedge_delay)
                    if args.hedge_delay is not None
                    else None
                ),
                bitmap_filter=_bitmap_config(args),
                merge_backend=args.merge_backend,
                shard_endpoints=endpoints,
                heartbeat_interval=(
                    args.heartbeat_interval if endpoints is not None else None
                ),
                # Records routed to remote nodes never pass through the
                # front end's vocabulary, so prefill it with the
                # full-corpus assignment — the one the global stats and
                # the shard-serve nodes key on.
                vocabulary=(
                    _corpus_vocabulary(corpus, _TOKENIZERS[args.tokenizer])
                    if endpoints is not None
                    else None
                ),
            )
            for line in corpus:
                server.add(line)
        else:
            index = SimilarityIndex(
                predicate,
                tokenizer=_TOKENIZERS[args.tokenizer],
                bitmap_filter=_bitmap_config(args),
                merge_backend=args.merge_backend,
            )
            for line in corpus:
                index.add(line)
            server = IndexServer(
                index,
                workers=args.workers,
                queue_limit=args.queue_limit,
                default_deadline=args.query_deadline,
                executor="process" if args.process_pool else "thread",
                query_cache=args.query_cache,
                retry_policy=retry_policy,
                breaker=CircuitBreaker(
                    failure_threshold=args.breaker_threshold,
                    cooldown_seconds=args.breaker_cooldown,
                ),
            )
    except ValueError as exc:
        # e.g. executor='process' on a platform without fork
        raise _CLIError(str(exc)) from exc

    if args.queries == "-":
        stream = sys.stdin
    else:
        try:
            stream = open(args.queries, "r", encoding="utf-8")
        except OSError as exc:
            detail = exc.strerror or str(exc)
            raise _CLIError(f"cannot read {args.queries}: {detail}") from exc

    # Emission stays in submission order through a sliding window of
    # futures, sized to keep every worker busy without buffering the
    # whole query stream.
    window = 2 * args.workers
    result_timeout = args.drain_timeout + 1.0
    submit_kwargs = {"require_complete": True} if args.require_complete else {}
    pending: deque[tuple[int, object]] = deque()
    qid = 0
    failures = 0
    interrupted = None
    server.start()
    try:
        with _drain_signals():
            try:
                for line in stream:
                    text = line.rstrip("\n")
                    if not text.strip():
                        continue
                    this_qid, qid = qid, qid + 1
                    try:
                        pending.append((this_qid, server.submit(text, **submit_kwargs)))
                    except ServerOverloaded as exc:
                        print(f"repro: query {this_qid}: {exc}", file=sys.stderr)
                        failures += 1
                        continue
                    while len(pending) > window:
                        if not _emit_query_result(*pending.popleft(), result_timeout):
                            failures += 1
            except _DrainRequested as exc:
                interrupted = str(exc)
                print(
                    f"repro: {interrupted}: draining"
                    f" ({len(pending)} queries in flight)",
                    file=sys.stderr,
                )
    finally:
        if stream is not sys.stdin:
            stream.close()
    # Handlers are restored: a second Ctrl-C raises KeyboardInterrupt
    # and aborts the drain through main()'s generic exit-130 path.
    while pending:
        if not _emit_query_result(*pending.popleft(), result_timeout):
            failures += 1
    server.drain(timeout=args.drain_timeout)
    _print_serve_health(server)
    if interrupted:
        return EXIT_INTERRUPTED
    return 0 if failures == 0 else 1


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------


def _dispatch(args) -> int:
    if args.command == "shard-serve":
        return _shard_serve(args)

    lines = _read_lines(args.input)
    if not lines:
        raise _CLIError(f"no records in {args.input} (empty input)")

    if args.command == "editjoin":
        if args.algorithm not in ALGORITHMS and args.algorithm != "cluster-mem":
            raise _CLIError(
                f"unknown algorithm {args.algorithm!r};"
                f" expected one of {sorted(ALGORITHMS) + ['cluster-mem']}"
            )
        result = edit_distance_join(
            lines,
            k=args.k,
            q=args.q,
            algorithm=args.algorithm,
            bitmap_filter=_bitmap_config(args),
            merge_backend=args.merge_backend,
            **_approx_kwargs(args),
        )
        for pair in result.sorted_pairs():
            print(f"{pair.rid_a}\t{pair.rid_b}\t{int(pair.similarity)}")
        print(
            f"# {len(result.pairs)} pairs, {result.elapsed_seconds:.2f}s",
            file=sys.stderr,
        )
        return 0

    if args.command == "serve":
        return _serve(args, lines)

    dataset = Dataset.from_texts(lines, _TOKENIZERS[args.tokenizer])

    if args.command == "stats":
        print(f"records\t{len(dataset)}")
        print(f"avg_set_size\t{dataset.average_set_size():.1f}")
        print(f"distinct_elements\t{dataset.n_distinct_tokens()}")
        print(f"word_occurrences\t{dataset.total_word_occurrences()}")
        return 0

    try:
        predicate = _PREDICATES[args.predicate](args.threshold)
    except ValueError as exc:
        raise _CLIError(f"bad --threshold for {args.predicate}: {exc}") from exc
    context = _build_context(args)
    result = _run_join(args, dataset, predicate, context)

    if args.command == "join":
        for pair in result.sorted_pairs():
            print(f"{pair.rid_a}\t{pair.rid_b}\t{pair.similarity:.4f}")
        degraded = (
            f", degraded from {result.degraded_from} to cluster-mem"
            if result.degraded
            else ""
        )
        print(
            f"# {len(result.pairs)} pairs, {result.elapsed_seconds:.2f}s,"
            f" algorithm={result.algorithm}{degraded}",
            file=sys.stderr,
        )
        _print_approx_summary(args, result)
        return 0

    # dedupe
    groups = connected_components(result.pairs, len(dataset))
    for members in groups:
        print("\t".join(str(rid) for rid in members))
    print(f"# {len(groups)} duplicate groups", file=sys.stderr)
    _print_approx_summary(args, result)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    checkpoint = getattr(args, "checkpoint", None)
    resume_hint = (
        f"; progress saved under {checkpoint}, rerun the same command to resume"
        if checkpoint is not None
        else ""
    )
    try:
        return _dispatch(args)
    except _CLIError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except JoinTimeout as exc:
        print(f"repro: {exc}{resume_hint}", file=sys.stderr)
        return EXIT_TIMEOUT
    except JoinCancelled as exc:
        print(f"repro: {exc}{resume_hint}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except JoinRuntimeError as exc:
        # Snapshot corruption, checkpoint mismatch, memory budget in
        # strict mode, ... — operational failures, not tracebacks.
        print(f"repro: error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    raise SystemExit(main())
