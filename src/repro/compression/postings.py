"""Delta-compressed posting lists with block skip pointers.

Ids are stored as variable-byte-coded gaps, chopped into fixed-size
blocks; a small in-memory directory holds each block's first id and
byte offset, so membership probes decode only one block and merges
decode blocks on demand. This is the classic skip-pointer layout from
the IR literature the paper's §6 references.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterator, Sequence

from repro.compression.varbyte import varbyte_decode_deltas, varbyte_encode

__all__ = ["CompressedPostingList"]


class CompressedPostingList:
    """Immutable compressed id-sorted posting list."""

    __slots__ = ("_data", "_block_first", "_block_offset", "_block_size", "_length")

    def __init__(self, ids: Sequence[int], block_size: int = 64):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        previous = -1
        block_first: list[int] = []
        block_offset: list[int] = []
        chunks: list[bytes] = []
        offset = 0
        pending: list[int] = []
        pending_first = 0
        n_ids = 0
        for entity_id in ids:
            n_ids += 1
            if entity_id <= previous:
                raise ValueError("posting ids must be strictly increasing")
            if not pending:
                pending_first = entity_id
                pending.append(0)  # first gap within block is vs block base
            else:
                pending.append(entity_id - previous)
            previous = entity_id
            if len(pending) == block_size:
                encoded = varbyte_encode(pending)
                block_first.append(pending_first)
                block_offset.append(offset)
                chunks.append(encoded)
                offset += len(encoded)
                pending = []
        if pending:
            encoded = varbyte_encode(pending)
            block_first.append(pending_first)
            block_offset.append(offset)
            chunks.append(encoded)
        self._data = b"".join(chunks)
        self._block_first = block_first
        self._block_offset = block_offset
        self._block_size = block_size
        self._length = n_ids

    def __len__(self) -> int:
        return self._length

    def size_in_bytes(self) -> int:
        """Compressed payload plus the skip directory (8 B per entry)."""
        return len(self._data) + 16 * len(self._block_first)

    def _decode_block(self, block: int) -> list[int]:
        count = min(self._block_size, self._length - block * self._block_size)
        offsets = self._block_offset
        # Passing the block's exact byte extent lets the decoder iterate
        # one small slice instead of indexing into the whole payload.
        end = offsets[block + 1] if block + 1 < len(offsets) else len(self._data)
        return varbyte_decode_deltas(
            self._data,
            offsets[block],
            count,
            self._block_first[block],
            end,
        )

    def __iter__(self) -> Iterator[int]:
        for block in range(len(self._block_first)):
            yield from self._decode_block(block)

    def decode(self) -> list[int]:
        """All ids, decoded."""
        return list(self)

    def __contains__(self, entity_id: int) -> bool:
        block = bisect_right(self._block_first, entity_id) - 1
        if block < 0:
            return False
        return entity_id in self._decode_block(block)

    def first_geq(self, entity_id: int) -> int | None:
        """Smallest stored id >= entity_id (skip-pointer search)."""
        if self._length == 0:
            return None
        block = bisect_right(self._block_first, entity_id) - 1
        if block < 0:
            return self._block_first[0]
        for candidate in self._decode_block(block):
            if candidate >= entity_id:
                return candidate
        if block + 1 < len(self._block_first):
            return self._block_first[block + 1]
        return None
