"""Variable-byte integer codes (the workhorse IR posting compressor).

Each integer is written in base-128 digits, least significant first;
the high bit of a byte marks the last digit of a number. Simple, fast
to decode, and compresses small deltas of sorted RID lists to 1-2 bytes
each.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["varbyte_decode", "varbyte_encode"]


def varbyte_encode(values: Iterable[int]) -> bytes:
    """Encode non-negative integers into a variable-byte stream."""
    out = bytearray()
    for value in values:
        if value < 0:
            raise ValueError(f"variable-byte codes need non-negative ints, got {value}")
        while True:
            digit = value & 0x7F
            value >>= 7
            if value:
                out.append(digit)
            else:
                out.append(digit | 0x80)
                break
    return bytes(out)


def varbyte_decode(data: bytes, start: int = 0, count: int | None = None) -> list[int]:
    """Decode ``count`` integers (or all) from ``data`` at ``start``."""
    out: list[int] = []
    append = out.append
    value = 0
    shift = 0
    for byte in data[start:] if start else data:
        if byte & 0x80:
            append(value | ((byte & 0x7F) << shift))
            value = 0
            shift = 0
            if count is not None and len(out) == count:
                return out
        else:
            value |= (byte & 0x7F) << shift
            shift += 7
    if shift != 0:
        raise ValueError("truncated variable-byte stream")
    return out


def varbyte_decode_deltas(
    data: bytes, start: int, count: int, base: int, end: int | None = None
) -> list[int]:
    """Decode ``count`` deltas starting from ``base`` into absolute ids.

    ``end`` bounds the bytes examined (default: end of ``data``); block
    decoders pass the next block's offset so the loop can run over a
    single sliced ``bytes`` object — iterating the slice yields ints at
    C speed, where indexing ``data[position]`` costs a Python-level
    bound check and index arithmetic per byte. This is the hottest
    decompression loop (every compressed probe runs it), hence the
    flat shape.
    """
    if end is None:
        end = len(data)
    out: list[int] = []
    append = out.append
    value = 0
    shift = 0
    current = base
    remaining = count
    if remaining <= 0:
        return out
    for byte in data[start:end]:
        if byte & 0x80:
            current += value | ((byte & 0x7F) << shift)
            append(current)
            remaining -= 1
            if not remaining:
                return out
            value = 0
            shift = 0
        else:
            value |= (byte & 0x7F) << shift
            shift += 7
    raise ValueError("truncated variable-byte stream")
