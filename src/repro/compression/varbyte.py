"""Variable-byte integer codes (the workhorse IR posting compressor).

Each integer is written in base-128 digits, least significant first;
the high bit of a byte marks the last digit of a number. Simple, fast
to decode, and compresses small deltas of sorted RID lists to 1-2 bytes
each.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["varbyte_decode", "varbyte_encode"]


def varbyte_encode(values: Iterable[int]) -> bytes:
    """Encode non-negative integers into a variable-byte stream."""
    out = bytearray()
    for value in values:
        if value < 0:
            raise ValueError(f"variable-byte codes need non-negative ints, got {value}")
        while True:
            digit = value & 0x7F
            value >>= 7
            if value:
                out.append(digit)
            else:
                out.append(digit | 0x80)
                break
    return bytes(out)


def varbyte_decode(data: bytes, start: int = 0, count: int | None = None) -> list[int]:
    """Decode ``count`` integers (or all) from ``data`` at ``start``."""
    out: list[int] = []
    value = 0
    shift = 0
    position = start
    end = len(data)
    while position < end:
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            out.append(value)
            value = 0
            shift = 0
            if count is not None and len(out) == count:
                break
        else:
            shift += 7
    else:
        if shift != 0:
            raise ValueError("truncated variable-byte stream")
    return out


def varbyte_decode_deltas(
    data: bytes, start: int, count: int, base: int
) -> list[int]:
    """Decode ``count`` deltas starting from ``base`` into absolute ids."""
    out: list[int] = []
    value = 0
    shift = 0
    position = start
    current = base
    end = len(data)
    while position < end and len(out) < count:
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            current += value
            out.append(current)
            value = 0
            shift = 0
        else:
            shift += 7
    if len(out) < count:
        raise ValueError("truncated variable-byte stream")
    return out
