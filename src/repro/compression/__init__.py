"""Inverted-index compression substrate.

The paper (§4, §6) notes that "a wealth of techniques exist in IR for
compressing an inverted index. These would contribute to pushing the
limit upto which we can hold the index in memory", and that its
partitioning method is orthogonal to them. This subpackage supplies
those techniques from scratch:

* :mod:`repro.compression.varbyte` — variable-byte codes,
* :mod:`repro.compression.elias` — Elias gamma/delta bit-level codes,
* :mod:`repro.compression.postings` — delta-encoded posting lists with
  block skip pointers,
* :mod:`repro.compression.compressed_join` — an online probe join over
  a compressed index, for measuring the memory/CPU trade-off.
"""

from repro.compression.elias import (
    elias_delta_decode,
    elias_delta_encode,
    elias_gamma_decode,
    elias_gamma_encode,
)
from repro.compression.postings import CompressedPostingList
from repro.compression.varbyte import varbyte_decode, varbyte_encode

__all__ = [
    "CompressedPostingList",
    "elias_delta_decode",
    "elias_delta_encode",
    "elias_gamma_decode",
    "elias_gamma_encode",
    "varbyte_decode",
    "varbyte_encode",
]
