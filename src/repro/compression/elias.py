"""Elias gamma and delta codes (bit-level universal integer codes).

Gamma: ``floor(log2 x)`` zero bits, then ``x`` in binary. Delta: the
length field itself gamma-coded. Denser than variable-byte for very
small values (typical of tight delta gaps), at higher decode cost —
the classic Managing-Gigabytes trade-off the paper's §6 alludes to.
Both code *positive* integers; callers encode ``delta + 1``.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "BitReader",
    "BitWriter",
    "elias_delta_decode",
    "elias_delta_encode",
    "elias_gamma_decode",
    "elias_gamma_encode",
]


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self):
        self._bytes = bytearray()
        self._current = 0
        self._n_bits = 0

    def write_bit(self, bit: int) -> None:
        self._current = (self._current << 1) | (bit & 1)
        self._n_bits += 1
        if self._n_bits == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._n_bits = 0

    def write_bits(self, value: int, width: int) -> None:
        for position in range(width - 1, -1, -1):
            self.write_bit((value >> position) & 1)

    def getvalue(self) -> bytes:
        """Flushed bytes; the tail is padded with zero bits."""
        if self._n_bits:
            return bytes(self._bytes) + bytes(
                [self._current << (8 - self._n_bits)]
            )
        return bytes(self._bytes)


class BitReader:
    """MSB-first bit consumer."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0

    def read_bit(self) -> int:
        byte_index, bit_index = divmod(self._position, 8)
        if byte_index >= len(self._data):
            raise ValueError("bit stream exhausted")
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def exhausted_to_padding(self) -> bool:
        """True when only zero-padding remains."""
        remaining = len(self._data) * 8 - self._position
        if remaining >= 8:
            return False
        probe = self._position
        for offset in range(remaining):
            byte_index, bit_index = divmod(probe + offset, 8)
            if (self._data[byte_index] >> (7 - bit_index)) & 1:
                return False
        return True


def _gamma_write(writer: BitWriter, value: int) -> None:
    if value < 1:
        raise ValueError(f"Elias codes need positive ints, got {value}")
    width = value.bit_length()
    for _ in range(width - 1):
        writer.write_bit(0)
    writer.write_bits(value, width)


def _gamma_read(reader: BitReader) -> int:
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
    if zeros == 0:
        return 1
    return (1 << zeros) | reader.read_bits(zeros)


def elias_gamma_encode(values: Iterable[int]) -> bytes:
    """Gamma-encode positive integers."""
    writer = BitWriter()
    for value in values:
        _gamma_write(writer, value)
    return writer.getvalue()


def elias_gamma_decode(data: bytes, count: int) -> list[int]:
    """Decode ``count`` gamma-coded integers."""
    reader = BitReader(data)
    return [_gamma_read(reader) for _ in range(count)]


def elias_delta_encode(values: Iterable[int]) -> bytes:
    """Delta-encode positive integers (gamma-coded length field)."""
    writer = BitWriter()
    for value in values:
        if value < 1:
            raise ValueError(f"Elias codes need positive ints, got {value}")
        width = value.bit_length()
        _gamma_write(writer, width)
        if width > 1:
            writer.write_bits(value & ((1 << (width - 1)) - 1), width - 1)
    return writer.getvalue()


def elias_delta_decode(data: bytes, count: int) -> list[int]:
    """Decode ``count`` delta-coded integers."""
    reader = BitReader(data)
    out = []
    for _ in range(count):
        width = _gamma_read(reader)
        if width == 1:
            out.append(1)
        else:
            out.append((1 << (width - 1)) | reader.read_bits(width - 1))
    return out
