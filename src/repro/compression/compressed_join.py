"""Similarity join over a compressed inverted index.

Measures the §4/§6 point that index compression "contributes to pushing
the limit upto which we can hold the index in memory", at a decode-CPU
cost. The join is the two-pass MergeOpt probe with posting lists stored
as :class:`CompressedPostingList`; each probed list is decoded on the
fly. Unit-score predicates only (scores would need their own codec).

``CompressedProbeJoin.join`` additionally records the compressed and
uncompressed index footprints in the result counters
(``index_bytes_compressed`` / ``index_bytes_plain``), which is what the
accompanying benchmark plots.
"""

from __future__ import annotations

from repro.compression.postings import CompressedPostingList
from repro.core.base import SetJoinAlgorithm, _band_accept
from repro.core.inverted_index import PostingList
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.core.token_order import ensure_unit_scores
from repro.predicates.base import BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["CompressedProbeJoin"]


class CompressedProbeJoin(SetJoinAlgorithm):
    """Two-pass MergeOpt probe over delta-compressed posting lists.

    Args:
        block_size: skip-block granularity of the compressed lists.
    """

    name = "probe-count-compressed"

    def __init__(self, block_size: int = 64):
        self.block_size = block_size

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        self._check_unit_scores(dataset, bound)
        # Build plain postings, then freeze them compressed.
        raw: dict[int, list[int]] = {}
        min_norm = float("inf")
        for rid in range(len(dataset)):
            for token in dataset[rid]:
                raw.setdefault(token, []).append(rid)
            norm = bound.norm(rid)
            if norm < min_norm:
                min_norm = norm
        compressed = {
            token: CompressedPostingList(ids, block_size=self.block_size)
            for token, ids in raw.items()
        }
        counters.extra["index_bytes_compressed"] = sum(
            plist.size_in_bytes() for plist in compressed.values()
        )
        # Reference footprint: one 8-byte machine word per posting entry.
        counters.extra["index_bytes_plain"] = 8 * sum(len(ids) for ids in raw.values())
        del raw

        band = bound.band_filter()
        pairs: list[MatchPair] = []
        for rid in range(len(dataset)):
            counters.probes += 1
            lists = []
            for token in dataset[rid]:
                plist = compressed.get(token)
                if plist is None or len(plist) == 0:
                    continue
                decoded = PostingList()
                for entity_id in plist:
                    decoded.append(entity_id, 1.0)
                counters.extra["decoded_entries"] = (
                    counters.extra.get("decoded_entries", 0) + len(plist)
                )
                lists.append((decoded, 1.0))
            if not lists:
                continue
            norm_r = bound.norm(rid)

            def threshold_of(sid: int, _n=norm_r) -> float:
                return bound.threshold(_n, bound.norm(sid))

            accept = _band_accept(band, rid) if band is not None else None
            index_threshold = bound.index_threshold(norm_r, min_norm)
            for sid, _weight in self._merge_opt_lists(
                lists, index_threshold, threshold_of, counters, accept
            ):
                if sid < rid:
                    self._verify_pair(bound, sid, rid, counters, pairs)
        return pairs

    @staticmethod
    def _check_unit_scores(dataset: Dataset, bound: BoundPredicate) -> None:
        ensure_unit_scores(dataset, bound, what="compressed join")
