"""The pInfo partition-information disk store (paper §4.1 step 4, §4.2).

Phase 1 of ClusterMem appends, for every scanned record, its processing
position, record id, home cluster ``h(r)`` and join clusters ``J(r)`` —
"we store in pInfo only identifiers for records and clusters rather than
the entire record. So, the file is not expected to be very large."

Phase 2 splits the single file into per-batch files; an entry lands in
every batch that owns its home cluster or any of its join clusters, with
the cluster ids filtered down to that batch. Scan order is preserved in
each split file, which is what makes the second phase's
"insert-after-probe" bookkeeping correct.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

__all__ = ["PartitionEntry", "PartitionInfoStore"]


@dataclass(frozen=True)
class PartitionEntry:
    """One record's partitioning decision."""

    position: int
    rid: int
    home: int
    joins: tuple[int, ...]

    def to_line(self) -> str:
        joined = " ".join(str(cid) for cid in self.joins)
        return f"{self.position} {self.rid} {self.home} {joined}".rstrip() + "\n"

    @staticmethod
    def from_line(line: str) -> "PartitionEntry":
        fields = line.split()
        if len(fields) < 3:
            raise ValueError(f"malformed pInfo line: {line!r}")
        position, rid, home = int(fields[0]), int(fields[1]), int(fields[2])
        joins = tuple(int(cid) for cid in fields[3:])
        return PartitionEntry(position, rid, home, joins)


class PartitionInfoStore:
    """Append-only pInfo file with per-batch splitting."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "w", encoding="ascii")
        self.n_entries = 0

    def append(self, entry: PartitionEntry) -> None:
        if self._handle is None:
            raise ValueError("store is closed for appends")
        self._handle.write(entry.to_line())
        self.n_entries += 1

    def finish(self) -> None:
        """Close the append handle; the file becomes readable."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def scan(self) -> Iterator[PartitionEntry]:
        """Iterate all entries in append (= scan) order."""
        if self._handle is not None:
            raise ValueError("finish() the store before scanning")
        with open(self.path, "r", encoding="ascii") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield PartitionEntry.from_line(line)

    def split(self, batch_of_cluster: Mapping[int, int], n_batches: int) -> list[str]:
        """Split into per-batch files (paper §4.2).

        Args:
            batch_of_cluster: cluster id -> batch index.
            n_batches: number of batches.

        Each entry is written to every batch owning its home or one of
        its join clusters, with ``joins`` filtered to that batch's
        clusters and ``home`` replaced by -1 in batches that do not own
        it. Returns the per-batch file paths.
        """
        paths = [f"{self.path}.batch{i}" for i in range(n_batches)]
        handles = [open(path, "w", encoding="ascii") for path in paths]
        try:
            for entry in self.scan():
                per_batch_joins: dict[int, list[int]] = {}
                for cid in entry.joins:
                    per_batch_joins.setdefault(batch_of_cluster[cid], []).append(cid)
                home_batch = batch_of_cluster[entry.home]
                touched = set(per_batch_joins) | {home_batch}
                for batch in touched:
                    sub = PartitionEntry(
                        position=entry.position,
                        rid=entry.rid,
                        home=entry.home if batch == home_batch else -1,
                        joins=tuple(per_batch_joins.get(batch, ())),
                    )
                    handles[batch].write(sub.to_line())
        finally:
            for handle in handles:
                handle.close()
        return paths

    @staticmethod
    def scan_file(path: str) -> Iterator[PartitionEntry]:
        """Iterate one split batch file in scan order."""
        with open(path, "r", encoding="ascii") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield PartitionEntry.from_line(line)

    def unlink(self) -> None:
        self.finish()
        if os.path.exists(self.path):
            os.remove(self.path)
