"""Cluster batch planning for ClusterMem's second phase (paper §4.2).

"Partition Cs into batches Cs1 ... Csk such that full index of clusters
in each batch will fit in memory." A cluster's full record-level index
costs the sum of its members' record sizes (in word occurrences, the
paper's memory unit); batches are packed greedily in cluster-id order so
the split pInfo files keep a sane layout.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["plan_batches"]


def plan_batches(cluster_index_sizes: Sequence[int], budget: int) -> list[int]:
    """Assign each cluster to a batch under a memory budget.

    Args:
        cluster_index_sizes: per-cluster full-index size in word
            occurrences.
        budget: maximum total index size per batch.

    Returns ``batch_of_cluster`` (cluster id -> batch index). A single
    cluster larger than the budget gets a batch of its own — the paper
    would recurse into it ("we can easily extend the algorithm to do
    recursive partitioning"); we document the overshoot instead.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    batch_of_cluster: list[int] = []
    batch = 0
    used = 0
    for size in cluster_index_sizes:
        if used > 0 and used + size > budget:
            batch += 1
            used = 0
        batch_of_cluster.append(batch)
        used += size
    return batch_of_cluster
