"""Partitioning substrate: pInfo store, batch planning, band joins.

Three pieces:

* :mod:`repro.partition.pinfo` — the append-only disk store of
  per-record partitioning decisions ``(r, h(r), J(r))`` that ClusterMem's
  first phase writes and its second phase splits per batch (§4.1/§4.2).
* :mod:`repro.partition.batching` — packing clusters into batches whose
  combined record-level index fits the memory budget (§4.2).
* :mod:`repro.partition.bandjoin` — the Simple / Greedy / Optimal range
  partitioners for band filters ``|l(r) - l(s)| <= k`` (§5.3).
"""

from repro.partition.bandjoin import (
    greedy_partitions,
    optimal_partitions,
    partition_cost,
    simple_partitions,
)
from repro.partition.batching import plan_batches
from repro.partition.pinfo import PartitionEntry, PartitionInfoStore

__all__ = [
    "PartitionEntry",
    "PartitionInfoStore",
    "greedy_partitions",
    "optimal_partitions",
    "partition_cost",
    "plan_batches",
    "simple_partitions",
]
