"""Range partitioning for band filters (paper §5.3).

Every filter in the predicate framework has the form
``|l(r) - l(s)| <= k`` (a band join). Besides evaluating the filter
inside the merge, the paper proposes range-partitioning the records into
(possibly overlapping) partitions such that every in-band pair co-occurs
in at least one partition, then running the join per partition:

* **Simple** — sort by ``l()`` and grow windows; emit a window when the
  next record leaves the band of the window's first record, restarting
  from the earliest record still in range. Adjacent windows overlap.
* **Greedy** — delay emitting a window until the next one is known;
  merge the two when the merged join cost is below the sum of the parts.
* **Optimal** — dynamic program over the simple windows: the cheapest
  way to cover windows ``1..n`` with merged runs, i.e. a shortest path
  in the window graph ("the shortest path between nodes w0 and wn
  corresponds to the most efficient partitioning").

The default join-cost model is quadratic in partition size, the cost
shape of a similarity join within a partition.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

__all__ = [
    "greedy_partitions",
    "optimal_partitions",
    "partition_cost",
    "partitioned_band_join",
    "simple_partitions",
]


def _default_cost(n: int) -> float:
    return float(n) * float(n)


def partition_cost(
    partitions: Sequence[Sequence[int]], cost: Callable[[int], float] = _default_cost
) -> float:
    """Total modeled join cost of a partitioning."""
    return sum(cost(len(partition)) for partition in partitions)


def _windows(keys: Sequence[float], radius: float) -> tuple[list[int], list[tuple[int, int]]]:
    """Sorted record order plus the simple algorithm's window spans.

    Returns ``(order, spans)`` where ``order`` is the rid order of
    increasing key and each span ``(start, end)`` indexes ``order``
    half-open. Consecutive spans overlap so that every in-band pair
    co-occurs in some window.
    """
    n = len(keys)
    order = sorted(range(n), key=lambda rid: keys[rid])
    if n == 0:
        return order, []
    spans: list[tuple[int, int]] = []
    eps = 1e-12
    start = 0
    for i in range(n):
        if keys[order[i]] - keys[order[start]] > radius + eps:
            spans.append((start, i))
            while keys[order[i]] - keys[order[start]] > radius + eps:
                start += 1
    spans.append((start, n))
    return order, spans


def simple_partitions(
    keys: Sequence[float], radius: float
) -> list[list[int]]:
    """The Simple window partitioner: one partition per window."""
    order, spans = _windows(keys, radius)
    return [[order[i] for i in range(lo, hi)] for lo, hi in spans]


def greedy_partitions(
    keys: Sequence[float],
    radius: float,
    cost: Callable[[int], float] = _default_cost,
) -> list[list[int]]:
    """Merge adjacent windows when the merged cost is lower (§5.3).

    "Delay the output of a window w_prev until the following window
    w_curr is found. Then merge the two adjacent window-groups if that
    will lead to a smaller total join cost." Merged runs keep chaining
    while profitable. Not guaranteed optimal.
    """
    order, spans = _windows(keys, radius)
    if not spans:
        return []
    merged: list[tuple[int, int]] = [spans[0]]
    for lo, hi in spans[1:]:
        prev_lo, prev_hi = merged[-1]
        separate = cost(prev_hi - prev_lo) + cost(hi - lo)
        together = cost(hi - prev_lo)
        if together < separate:
            merged[-1] = (prev_lo, hi)
        else:
            merged.append((lo, hi))
    return [[order[i] for i in range(lo, hi)] for lo, hi in merged]


def optimal_partitions(
    keys: Sequence[float],
    radius: float,
    cost: Callable[[int], float] = _default_cost,
) -> list[list[int]]:
    """Optimal window merging via dynamic programming (§5.3).

    ``best[j]`` = cheapest cost of covering windows ``0..j-1`` where the
    last partition is a merged run of windows ``i..j-1`` — the shortest
    path from w0 to wn in the paper's window graph. A merged run of
    windows ``i..j-1`` spans ``order[spans[i].start : spans[j-1].end]``.
    """
    order, spans = _windows(keys, radius)
    n = len(spans)
    if n == 0:
        return []
    inf = float("inf")
    best = [inf] * (n + 1)
    best[0] = 0.0
    choice = [0] * (n + 1)
    for j in range(1, n + 1):
        for i in range(j):
            run = spans[j - 1][1] - spans[i][0]
            value = best[i] + cost(run)
            if value < best[j]:
                best[j] = value
                choice[j] = i
    runs: list[tuple[int, int]] = []
    j = n
    while j > 0:
        i = choice[j]
        runs.append((spans[i][0], spans[j - 1][1]))
        j = i
    runs.reverse()
    return [[order[i] for i in range(lo, hi)] for lo, hi in runs]


def partitioned_band_join(dataset, predicate, algorithm, strategy: str = "optimal"):
    """Run a similarity join per band partition and merge the results.

    The §5.3 alternative to in-merge filtering: partition on the
    predicate's band filter, invoke the join algorithm within each
    partition, and deduplicate pairs produced by overlapping partitions.
    Requires the predicate to define a band filter.

    Returns a :class:`~repro.core.results.JoinResult` whose counters sum
    the per-partition work.
    """
    from repro.core.records import Dataset
    from repro.core.results import JoinResult, MatchPair
    from repro.utils.counters import CostCounters

    bound = predicate.bind(dataset)
    band = bound.band_filter()
    if band is None:
        raise ValueError(f"predicate {predicate.name!r} has no band filter")
    makers = {
        "simple": simple_partitions,
        "greedy": greedy_partitions,
        "optimal": optimal_partitions,
    }
    if strategy not in makers:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {sorted(makers)}")
    partitions = makers[strategy](band.keys, band.radius)

    counters = CostCounters()
    seen: set[tuple[int, int]] = set()
    pairs: list[MatchPair] = []
    elapsed = 0.0
    for partition in partitions:
        if len(partition) < 2:
            continue
        sub = Dataset(
            [dataset[rid] for rid in partition],
            vocabulary=dataset.vocabulary,
            payloads=(
                [dataset.payloads[rid] for rid in partition]
                if dataset.payloads is not None
                else None
            ),
        )
        result = algorithm.join(sub, predicate)
        counters.merge(result.counters)
        elapsed += result.elapsed_seconds
        for pair in result.pairs:
            rid_a = partition[pair.rid_a]
            rid_b = partition[pair.rid_b]
            key = (min(rid_a, rid_b), max(rid_a, rid_b))
            if key not in seen:
                seen.add(key)
                pairs.append(MatchPair(key[0], key[1], pair.similarity))
    counters.extra["partitions"] = len(partitions)
    counters.pairs_output = len(pairs)
    return JoinResult(
        pairs=pairs,
        algorithm=f"{algorithm.name}/band-{strategy}",
        predicate=predicate.name,
        counters=counters,
        elapsed_seconds=elapsed,
    )
