"""Match-quality evaluation against ground-truth duplicate labels.

The joins are exact with respect to their *predicate*; whether the
predicate captures true duplicates is a data-cleaning quality question
(the paper's motivating application cites interactive-dedup work for
exactly this reason). Given ground-truth group labels — the synthetic
generators provide them via ``generate_labeled`` — this module scores a
join's pairs with pairwise precision / recall / F1 and sweeps a
predicate family over thresholds to chart the quality trade-off.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.core.join import similarity_join
from repro.core.records import Dataset
from repro.core.results import MatchPair

__all__ = ["MatchQuality", "pair_quality", "threshold_sweep", "true_pairs_of"]


@dataclass(frozen=True)
class MatchQuality:
    """Pairwise precision / recall / F1 of a predicted pair set."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __repr__(self) -> str:
        return (
            f"MatchQuality(precision={self.precision:.3f},"
            f" recall={self.recall:.3f}, f1={self.f1:.3f})"
        )


def true_pairs_of(labels: Sequence[int]) -> set[tuple[int, int]]:
    """All record pairs sharing a ground-truth group label."""
    by_group: dict[int, list[int]] = {}
    for rid, label in enumerate(labels):
        by_group.setdefault(label, []).append(rid)
    pairs: set[tuple[int, int]] = set()
    for members in by_group.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                pairs.add((members[i], members[j]))
    return pairs


def pair_quality(
    predicted: Iterable[MatchPair | tuple[int, int]],
    labels: Sequence[int],
) -> MatchQuality:
    """Score predicted pairs against ground-truth group labels."""
    truth = true_pairs_of(labels)
    predicted_set: set[tuple[int, int]] = set()
    for pair in predicted:
        if isinstance(pair, MatchPair):
            rid_a, rid_b = pair.rid_a, pair.rid_b
        else:
            rid_a, rid_b = pair
        predicted_set.add((min(rid_a, rid_b), max(rid_a, rid_b)))
    true_positives = len(predicted_set & truth)
    return MatchQuality(
        true_positives=true_positives,
        false_positives=len(predicted_set) - true_positives,
        false_negatives=len(truth) - true_positives,
    )


def threshold_sweep(
    dataset: Dataset,
    labels: Sequence[int],
    predicate_factory: Callable[[float], object],
    thresholds: Sequence[float],
    algorithm: str = "probe-count-sort",
) -> list[tuple[float, MatchQuality]]:
    """Quality at each threshold — the dedup tuning curve.

    Returns ``[(threshold, MatchQuality), ...]`` in the given threshold
    order. Typical use: pick the F1-maximizing threshold.
    """
    out = []
    for threshold in thresholds:
        result = similarity_join(
            dataset, predicate_factory(threshold), algorithm=algorithm
        )
        out.append((threshold, pair_quality(result.pairs, labels)))
    return out
