"""Low-level utilities shared by the join algorithms.

Contains the galloping ("doubling") binary search primitive used by the
MergeOpt algorithm (paper Algorithm 1, step 10) and the instrumentation
counters that every join algorithm exposes so experiments can report
machine-independent work metrics alongside wall-clock time.
"""

from repro.utils.counters import CostCounters
from repro.utils.search import gallop_search, gallop_search_from

__all__ = ["CostCounters", "gallop_search", "gallop_search_from"]
