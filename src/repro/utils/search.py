"""Galloping (doubling) binary search over sorted RID lists.

The MergeOpt algorithm (paper §3.1, Algorithm 1 step 10) probes each long
list in ``L`` with a "doubling binary search": starting from the list's
current frontier, the step size doubles until the probe overshoots the
target, after which a plain binary search runs inside the final bracket.
This costs ``O(log d)`` where ``d`` is the distance from the frontier to
the target — much cheaper than ``O(log n)`` when consecutive probes are
close together, which is exactly the access pattern of the merge loop
(candidate RIDs arrive in increasing order).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

__all__ = ["gallop_search", "gallop_search_from"]


def gallop_search(items: Sequence[int], target: int) -> int:
    """Return the insertion point for ``target`` in sorted ``items``.

    Equivalent to ``bisect.bisect_left(items, target)`` but gallops from
    the left edge, so it is sub-logarithmic when the target sits near the
    start of the list.
    """
    return gallop_search_from(items, target, 0)


def gallop_search_from(items: Sequence[int], target: int, start: int) -> int:
    """Galloping search for ``target`` in ``items[start:]``.

    Returns the leftmost index ``i >= start`` with ``items[i] >= target``
    (i.e. the bisect_left insertion point), or ``len(items)`` when every
    remaining element is smaller. ``items[start:]`` must be sorted.
    """
    n = len(items)
    if start >= n:
        return n
    if items[start] >= target:
        return start
    # Gallop: find a bracket (lo, hi] with items[lo] < target <= items[hi].
    step = 1
    lo = start
    hi = start + step
    while hi < n and items[hi] < target:
        lo = hi
        step <<= 1
        hi = start + step
    if hi >= n:
        hi = n
    return bisect_left(items, target, lo + 1, hi)
