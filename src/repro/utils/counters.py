"""Machine-independent work counters.

The paper reports wall-clock seconds on 2004 hardware. A pure-Python
reproduction cannot match those absolute numbers, so every algorithm in
this package additionally counts the abstract work it performs. The
counters below are the quantities the paper's complexity analysis is
phrased in (heap pops for the merge, generated pairs for Pair-Count,
candidate verifications, ...), which makes the *shape* of each experiment
reproducible on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["CostCounters"]


@dataclass
class CostCounters:
    """Work performed by one join execution.

    Attributes:
        probes: number of index probes (one per probing record).
        heap_pops: RIDs popped from the merge heap.
        heap_pushes: RIDs pushed into the merge heap.
        list_items_touched: posting-list entries consumed by merging.
        binary_searches: doubling binary searches into long lists.
        candidates_checked: candidate records examined against the
            threshold (after merging / searching).
        pairs_generated: RID pairs materialized (Pair-Count) or implied
            by word groups (Word-Groups).
        pairs_verified: candidate pairs verified by an exact
            overlap/similarity computation.
        pairs_output: result pairs emitted.
        index_entries: posting entries inserted into inverted indexes.
        peak_pair_table: high-water mark of the Pair-Count aggregation
            table (the paper's memory bottleneck for that algorithm).
        itemsets_generated: candidate itemsets generated (Word-Groups).
        clusters_created: clusters created (Probe-Cluster / ClusterMem).
        cluster_probes: per-cluster fine-grained index probes.
        disk_appends: records appended to the pInfo disk store.
        disk_reads: records fetched back from the record store.
        records_scanned: record-granularity runtime checks performed by
            the driver loop (one per scanned record under a
            :class:`~repro.runtime.context.JoinContext`).
        checkpoint_writes: progress checkpoints flushed to disk.
        unknown_query_tokens: probe tokens outside the index vocabulary
            observed by :meth:`~repro.core.service.SimilarityIndex.query`.
            A rising rate signals vocabulary drift between the indexed
            corpus and live query traffic (time to re-index or rebind).
        bitmap_checks: candidate pairs tested by the bitmap signature
            filter (:mod:`repro.filters`). Deliberately excluded from
            :meth:`total_work` — a check is a popcount, far cheaper
            than the verification it replaces, and weighting it 1:1
            would make filtered runs gate *worse* than unfiltered.
        bitmap_rejects: candidate pairs the bitmap filter proved
            non-matching; these skip verification entirely and are not
            counted in ``pairs_verified``.
        accum_writes: first touches of a score-accumulator slot per
            probe (:mod:`repro.core.accumulator`) — the number of
            distinct candidate entities the accumulator backend
            materialized. Excluded from :meth:`total_work`: every
            write is already counted as a ``list_items_touched`` entry,
            and double-counting would make the accumulator path gate
            against an inflated number.
        accum_scans: posting entries examined by the accumulator
            backend's batch scans, including entries an ``accept``
            filter then discards. Excluded from :meth:`total_work` for
            the same reason as ``accum_writes`` (accepted entries are
            the ``list_items_touched``); kept as its own counter so the
            backend's raw scan volume stays observable.
        gallop_steps: bracket-doubling iterations performed by the
            accumulator backend's galloping searches into the rare-word
            (L) lists. Excluded from :meth:`total_work` —
            ``binary_searches`` already counts each search once, at the
            same weight the heap backend pays, keeping the two
            backends' work directly comparable.
        candidate_rejections_position: candidates killed by the PPJoin
            position filter (:mod:`repro.core.positional_filter`): the
            positional upper bound on their remaining overlap fell
            below the pair threshold mid-scan, so they never reached
            ``candidates_checked``. Excluded from :meth:`total_work` —
            each rejection is an O(1) comparison on a posting entry
            already counted as ``list_items_touched``, and the whole
            point of the filter is to *shrink* the gated work.
        candidate_rejections_suffix: position-filter survivors killed
            by the PPJoin+ suffix filter's divide-and-conquer Hamming
            bound before verification. Excluded from :meth:`total_work`
            for the same reason (the recursion volume stays observable
            as ``suffix_recursions`` in ``extra``).
    """

    probes: int = 0
    heap_pops: int = 0
    heap_pushes: int = 0
    list_items_touched: int = 0
    binary_searches: int = 0
    candidates_checked: int = 0
    pairs_generated: int = 0
    pairs_verified: int = 0
    pairs_output: int = 0
    index_entries: int = 0
    peak_pair_table: int = 0
    itemsets_generated: int = 0
    clusters_created: int = 0
    cluster_probes: int = 0
    disk_appends: int = 0
    disk_reads: int = 0
    records_scanned: int = 0
    checkpoint_writes: int = 0
    unknown_query_tokens: int = 0
    bitmap_checks: int = 0
    bitmap_rejects: int = 0
    accum_writes: int = 0
    accum_scans: int = 0
    gallop_steps: int = 0
    candidate_rejections_position: int = 0
    candidate_rejections_suffix: int = 0
    extra: dict = field(default_factory=dict)

    def merge(self, other: "CostCounters") -> None:
        """Accumulate another counter set into this one (in place)."""
        for f in fields(self):
            if f.name == "extra":
                for key, value in other.extra.items():
                    self.extra[key] = self.extra.get(key, 0) + value
            elif f.name == "peak_pair_table":
                self.peak_pair_table = max(self.peak_pair_table, other.peak_pair_table)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        """Return a plain-dict snapshot (for reports and benchmarks)."""
        out = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "extra"}
        out.update(self.extra)
        return out

    def total_work(self) -> int:
        """A single scalar summarizing merge work (used in bench tables)."""
        return (
            self.heap_pops
            + self.list_items_touched
            + self.binary_searches
            + self.pairs_generated
            + self.pairs_verified
        )
