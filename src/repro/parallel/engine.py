"""Parent-process side of the parallel sharded join engine.

``parallel_join`` shards a self-join by scan position: worker ``i`` of
``N`` gets the contiguous window ``[lo_i, hi_i)`` of the driven scan
and emits exactly the pairs the serial algorithm emits at those
positions (earlier positions are replayed for state, later ones are
not scanned). Disjoint windows therefore *partition* the serial pair
set, and the deterministic merge below — deduplicate on RID pair, sort
by ``(rid_a, rid_b)`` — returns a result pair-for-pair identical to
:func:`repro.core.join.similarity_join` for every supported algorithm.

Deduplication matters beyond belt-and-braces: a worker whose memory
budget trips under the default ``degrade`` policy finishes via the
full-dataset ClusterMem fallback and reports the *complete* pair set;
the merge collapses the overlap, keeping the result exact.

Runtime integration: the parent's :class:`JoinContext` deadline is
forwarded as remaining seconds, its cancellation token is bridged to a
shared ``multiprocessing.Event``, and per-shard checkpoints live in
``<checkpoint_dir>/shard-<i>/`` (see :mod:`repro.parallel.worker` for
the resume protocol). Counters are merged with
:meth:`CostCounters.merge`; note that state-replay work (index builds)
is *performed per worker*, so merged build-side counters scale with the
worker count while probe-side counters match the serial run.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from dataclasses import fields as dataclass_fields

import multiprocessing

from repro.core.join import _SPECS
from repro.core.records import Dataset
from repro.core.results import JoinResult, MatchPair
from repro.predicates.base import SimilarityPredicate
from repro.runtime.errors import (
    CheckpointMismatch,
    JoinCancelled,
    JoinRuntimeError,
    JoinTimeout,
    MemoryBudgetExceeded,
    SnapshotCorrupted,
)
from repro.utils.counters import CostCounters

from repro.parallel.worker import clear_shard_state, run_shard

__all__ = ["PARALLEL_ALGORITHMS", "parallel_join", "shard_bounds"]

#: Algorithms whose driven scan supports shard windows. Pair-Count and
#: Word-Groups generate pairs from whole-index aggregation rather than
#: a per-record scan, and ClusterMem's two-phase batch stream has no
#: stable position space across workers; all three are refused rather
#: than silently run serial.
PARALLEL_ALGORITHMS = frozenset(
    {
        "naive",
        "probe-count",
        "probe-count-stopwords",
        "probe-count-optmerge",
        "probe-count-online",
        "probe-count-sort",
        "probe-cluster",
        "prefix-filter",
        "positional-filter",
        # The approximate mode drives the same per-record scan (a pair
        # is emitted at its larger rid's position) and its path forest
        # is a pure function of the seed, so shard windows partition
        # its pair set exactly like the exact algorithms'.
        "approx",
    }
)

# How long the parent keeps polling after its own deadline before
# hard-terminating workers that failed to honour theirs.
_DEADLINE_GRACE_SECONDS = 10.0
_POLL_SECONDS = 0.05


def shard_bounds(n_records: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous scan-position windows, one per worker.

    The remainder is spread over the leading shards so window sizes
    differ by at most one.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    base, remainder = divmod(n_records, workers)
    bounds = []
    lo = 0
    for shard in range(workers):
        hi = lo + base + (1 if shard < remainder else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _counters_from_dict(payload: dict) -> CostCounters:
    """Rebuild CostCounters from the flat as_dict() wire form."""
    restored = CostCounters()
    known = {f.name for f in dataclass_fields(CostCounters)} - {"extra"}
    for key, value in payload.items():
        if key in known:
            setattr(restored, key, value)
        else:
            restored.extra[key] = value
    return restored


def _mp_context():
    """Fork when the platform has it (shares the dataset copy-on-write
    and keeps launch cheap); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _raise_shard_error(errors: dict, context) -> None:
    """Re-raise the most meaningful shard failure as its structured type.

    Real faults outrank resource trips, which outrank interruptions —
    sibling shards are cancelled as soon as one fails, so 'cancelled'
    reports are usually just collateral of the primary error.
    """
    by_kind: dict[str, dict] = {}
    for kind, payload in errors.values():
        by_kind.setdefault(kind, payload)
    if "crash" in by_kind:
        raise JoinRuntimeError(
            f"parallel join worker crashed: {by_kind['crash']['message']}"
        )
    if "corrupt" in by_kind:
        payload = by_kind["corrupt"]
        raise SnapshotCorrupted(payload["path"], payload["detail"])
    if "checkpoint" in by_kind:
        raise CheckpointMismatch(by_kind["checkpoint"]["message"])
    if "memory" in by_kind:
        payload = by_kind["memory"]
        raise MemoryBudgetExceeded(payload["entries"], payload["budget"])
    if "timeout" in by_kind:
        payload = by_kind["timeout"]
        if context is not None and context.deadline_seconds is not None:
            raise JoinTimeout(context.elapsed(), context.deadline_seconds)
        raise JoinTimeout(payload["elapsed"], payload["deadline"])
    if "cancelled" in by_kind:
        if context is not None:
            # The parent trips the shared cancel event when its own
            # deadline expires, so workers may observe "cancelled"
            # before their local deadline fires; report the true cause.
            remaining = context.remaining()
            if remaining is not None and remaining <= 0:
                raise JoinTimeout(context.elapsed(), context.deadline_seconds)
            if context.cancel_token.cancelled:
                raise JoinCancelled(context.cancel_token.reason)
        raise JoinCancelled(by_kind["cancelled"]["reason"])
    raise JoinRuntimeError(f"parallel join failed: {errors!r}")  # pragma: no cover


def parallel_join(
    dataset: Dataset,
    predicate: SimilarityPredicate,
    algorithm: str = "probe-count-optmerge",
    workers: int | None = None,
    context=None,
    batch_size: int = 4096,
    **kwargs,
) -> JoinResult:
    """Exact similarity self-join, sharded over worker processes.

    Pair-for-pair identical to ``similarity_join(dataset, predicate,
    algorithm)`` — same pairs, same similarities — with pairs returned
    in deterministic ``(rid_a, rid_b)`` order.

    Args:
        dataset: the tokenized records (pickled/forked to workers).
        predicate: the join condition.
        algorithm: a member of :data:`PARALLEL_ALGORITHMS`.
        workers: shard count; defaults to ``os.cpu_count()``. Clamped
            to the record count so no worker gets an empty window.
        context: optional :class:`~repro.runtime.context.JoinContext`.
            Deadline and cancellation propagate to every worker; a
            checkpointer makes each shard resumable under
            ``<directory>/shard-<i>/`` (resume with the *same* worker
            count — a different count is refused).
        batch_size: pairs per queue message when streaming results.
        kwargs: algorithm construction options.

    Raises the same structured errors as a serial join; on
    interruption every worker has flushed its shard checkpoint (when
    configured), so re-invoking with the same arguments resumes.
    """
    if algorithm not in PARALLEL_ALGORITHMS:
        raise ValueError(
            f"algorithm {algorithm!r} does not support sharded execution;"
            f" expected one of {sorted(PARALLEL_ALGORITHMS)}"
            + (" (run it serially via similarity_join)" if algorithm in _SPECS else "")
        )
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    workers = max(1, min(workers, len(dataset)))

    start = time.perf_counter()
    if context is not None:
        context.start()
        if context.cancel_token.cancelled:
            raise JoinCancelled(context.cancel_token.reason)
        remaining = context.remaining()
        if remaining is not None and remaining <= 0:
            raise JoinTimeout(context.elapsed(), context.deadline_seconds)
    else:
        remaining = None

    merged_counters = CostCounters()
    if len(dataset) == 0:
        merged_counters.extra["parallel_workers"] = workers
        return JoinResult(
            pairs=[],
            algorithm=f"parallel({algorithm}, workers={workers})",
            predicate=predicate.name,
            counters=merged_counters,
            elapsed_seconds=time.perf_counter() - start,
        )

    checkpoint_base = None
    checkpoint_interval = 1000
    if context is not None and context.checkpointer is not None:
        checkpoint_base = context.checkpointer.directory
        checkpoint_interval = context.checkpointer.interval_records

    mp_ctx = _mp_context()
    cancel_event = mp_ctx.Event()
    result_queue = mp_ctx.Queue()
    bounds = shard_bounds(len(dataset), workers)
    processes = []
    for shard, (lo, hi) in enumerate(bounds):
        spec = {
            "shard": shard,
            "n_shards": workers,
            "lo": lo,
            "hi": hi,
            "dataset": dataset,
            "predicate": predicate,
            "algorithm": algorithm,
            "algorithm_kwargs": kwargs,
            "batch_size": batch_size,
            "deadline_seconds": remaining,
            "memory_budget_entries": (
                context.memory_budget_entries if context is not None else None
            ),
            "on_memory_exceeded": (
                context.on_memory_exceeded if context is not None else "degrade"
            ),
            "checkpoint_dir": (
                os.path.join(checkpoint_base, f"shard-{shard}")
                if checkpoint_base is not None
                else None
            ),
            "checkpoint_interval": checkpoint_interval,
        }
        process = mp_ctx.Process(
            target=run_shard,
            args=(spec, result_queue, cancel_event),
            name=f"repro-join-shard-{shard}",
            daemon=True,
        )
        process.start()
        processes.append(process)

    pending = set(range(workers))
    pair_map: dict[tuple[int, int], MatchPair] = {}
    errors: dict[int, tuple[str, dict]] = {}
    infos: dict[int, dict] = {}

    def _handle(message) -> None:
        kind = message[0]
        shard = message[1]
        if kind == "pairs":
            for rid_a, rid_b, similarity in message[2]:
                key = (rid_a, rid_b)
                if key not in pair_map:
                    pair_map[key] = MatchPair(rid_a, rid_b, similarity)
        elif kind == "done":
            merged_counters.merge(_counters_from_dict(message[2]))
            infos[shard] = message[3]
            pending.discard(shard)
        elif kind == "error":
            errors[shard] = (message[2], message[3])
            pending.discard(shard)
            cancel_event.set()  # no point finishing sibling shards

    try:
        while pending:
            if (
                context is not None
                and context.cancel_token.cancelled
                and not cancel_event.is_set()
            ):
                cancel_event.set()
            overdue = (
                context is not None
                and context.remaining() is not None
                and context.remaining() <= 0
            )
            if overdue and not cancel_event.is_set():
                cancel_event.set()
            if (
                context is not None
                and context.remaining() is not None
                and context.remaining() < -_DEADLINE_GRACE_SECONDS
            ):
                # Workers should have timed out on their own by now;
                # assume they are wedged and reclaim them.
                for process in processes:
                    if process.is_alive():
                        process.terminate()
                raise JoinTimeout(context.elapsed(), context.deadline_seconds)
            try:
                _handle(result_queue.get(timeout=_POLL_SECONDS))
                continue
            except queue_module.Empty:
                pass
            dead = [
                shard for shard in pending if not processes[shard].is_alive()
            ]
            if dead:
                # The exited worker's messages may still be in flight;
                # drain before declaring it crashed.
                try:
                    while True:
                        _handle(result_queue.get_nowait())
                except queue_module.Empty:
                    pass
                for shard in dead:
                    if shard in pending:
                        exitcode = processes[shard].exitcode
                        errors[shard] = (
                            "crash",
                            {"message": f"worker exited with code {exitcode}"},
                        )
                        pending.discard(shard)
                        cancel_event.set()
    finally:
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=1.0)
        result_queue.close()
        result_queue.join_thread()

    if errors:
        _raise_shard_error(errors, context)

    pairs = [pair_map[key] for key in sorted(pair_map)]
    merged_counters.pairs_output = len(pairs)
    merged_counters.extra["parallel_workers"] = workers

    degraded_from = None
    degradation_reason = None
    for shard in sorted(infos):
        info = infos[shard]
        if info.get("degraded_from") and degraded_from is None:
            degraded_from = info["degraded_from"]
            degradation_reason = (
                f"shard {shard}: {info.get('degradation_reason')}"
            )

    if checkpoint_base is not None:
        for shard in range(workers):
            clear_shard_state(os.path.join(checkpoint_base, f"shard-{shard}"))
        context.checkpointer.clear()

    return JoinResult(
        pairs=pairs,
        algorithm=f"parallel({algorithm}, workers={workers})",
        predicate=predicate.name,
        counters=merged_counters,
        elapsed_seconds=time.perf_counter() - start,
        degraded_from=degraded_from,
        degradation_reason=degradation_reason,
    )
