"""Data-parallel sharded similarity joins over worker processes.

See :func:`parallel_join` for the entry point and
:mod:`repro.parallel.engine` / :mod:`repro.parallel.worker` for the
sharding and resume protocol. ``docs/operations.md`` covers worker
sizing and the per-shard checkpoint layout.
"""

from repro.parallel.engine import PARALLEL_ALGORITHMS, parallel_join, shard_bounds

__all__ = ["PARALLEL_ALGORITHMS", "parallel_join", "shard_bounds"]
