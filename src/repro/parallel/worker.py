"""Worker-process side of the parallel sharded join engine.

Each worker runs one shard of the self-join: the full driven scan with
:meth:`~repro.core.base.SetJoinAlgorithm.set_shard_window` restricting
pair emission to the shard's position window. State-building work
(index inserts, cluster assignment) is replayed for positions before
the window, so every worker sees exactly the serial algorithm's state
and its emitted pairs are exactly the serial pairs of its window.

Communication with the parent is a single message queue:

* ``("pairs", shard, [(rid_a, rid_b, similarity), ...])`` — result
  batches, streamed as soon as the shard finishes (capped at the
  engine's ``batch_size`` per message);
* ``("done", shard, counters_dict, info_dict)`` — terminal success;
* ``("error", shard, kind, payload)`` — terminal failure, where
  ``kind`` names the structured runtime error so the parent can
  re-raise the right type without unpickling exception objects.

Cancellation flows parent -> worker through a shared
``multiprocessing.Event`` wrapped in an :class:`EventCancellationToken`;
deadlines are passed as the *remaining* seconds at launch and anchored
in the worker's own :class:`~repro.runtime.context.JoinContext`.

When the parent context has a checkpointer, each shard checkpoints into
its own subdirectory, with the shard geometry baked into the algorithm
name (``probe-count@shard2.4``) so a resume with a different worker
count is refused by :meth:`JoinCheckpointer.validate` instead of
silently producing wrong pairs. A shard that completes while a sibling
is interrupted persists its finished result as a *done marker*
snapshot, so resuming the whole parallel join replays nothing for
already-finished shards.
"""

from __future__ import annotations

import os
import signal
import time

from repro.core.join import make_algorithm
from repro.runtime.checkpoint import JoinCheckpointer, dataset_fingerprint
from repro.runtime.context import CancellationToken, JoinContext
from repro.runtime.errors import (
    CheckpointMismatch,
    JoinCancelled,
    JoinTimeout,
    MemoryBudgetExceeded,
    SnapshotCorrupted,
)
from repro.runtime.snapshot import read_snapshot, write_snapshot

__all__ = ["EventCancellationToken", "run_shard", "shard_algorithm_name"]

DONE_MARKER_KIND = "parallel-shard-result"
DONE_MARKER_FILENAME = "shard-done.snap"


class EventCancellationToken(CancellationToken):
    """A cancellation token backed by a shared multiprocessing Event.

    The worker's join loop polls :attr:`cancelled` once per record; the
    parent trips the event from its own process to stop all workers.
    Local ``cancel()`` calls still work (they set the process-local
    latch without touching the shared event).
    """

    __slots__ = ("_event",)

    def __init__(self, event) -> None:
        super().__init__()
        self._event = event

    @property
    def cancelled(self) -> bool:
        if self._cancelled:
            return True
        if self._event.is_set():
            # Latch locally so the reason survives even if the parent
            # clears the event, and repeat polls skip the IPC check.
            self._cancelled = True
            self.reason = "cancelled by parallel-join parent"
            return True
        return False


def shard_algorithm_name(base_name: str, shard: int, n_shards: int) -> str:
    """Checkpoint identity of one shard of a parallel join.

    Embedding the shard geometry means a checkpoint written by shard 2
    of 4 can never be resumed as shard 2 of 8 — the window differs, so
    the pair set would be wrong. ``validate()`` compares names exactly.
    """
    return f"{base_name}@shard{shard}.{n_shards}"


def _done_marker_path(checkpoint_dir: str) -> str:
    return os.path.join(checkpoint_dir, DONE_MARKER_FILENAME)


def _load_done_marker(checkpoint_dir: str, meta: dict):
    """A previously-finished shard result, or None.

    Raises :class:`CheckpointMismatch` when a marker exists but belongs
    to a different invocation (changed dataset, predicate, or shard
    geometry) — resuming past it would silently drop that shard's
    pairs.
    """
    try:
        payload = read_snapshot(_done_marker_path(checkpoint_dir), kind=DONE_MARKER_KIND)
    except FileNotFoundError:
        return None
    mismatches = [
        f"{key} {payload.get(key)!r} != {expected!r}"
        for key, expected in meta.items()
        if payload.get(key) != expected
    ]
    if mismatches:
        raise CheckpointMismatch(
            "shard result marker belongs to a different parallel join: "
            + "; ".join(mismatches)
        )
    return payload


def _write_done_marker(checkpoint_dir: str, meta: dict, pairs, counters, info) -> None:
    payload = dict(meta)
    payload["pairs"] = pairs
    payload["counters"] = counters
    payload["info"] = info
    write_snapshot(_done_marker_path(checkpoint_dir), payload, kind=DONE_MARKER_KIND)


def clear_shard_state(checkpoint_dir: str) -> None:
    """Drop one shard's checkpoint + done marker (parallel join done)."""
    for path in (
        _done_marker_path(checkpoint_dir),
        os.path.join(checkpoint_dir, "join.ckpt"),
    ):
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
    try:
        os.rmdir(checkpoint_dir)
    except OSError:
        pass


def _stream_result(queue, shard: int, pairs, counters, info, batch_size: int) -> None:
    for start in range(0, len(pairs), batch_size):
        queue.put(("pairs", shard, pairs[start : start + batch_size]))
    queue.put(("done", shard, counters, info))


def run_shard(spec: dict, queue, cancel_event) -> None:
    """Process entry point: run one shard and report over ``queue``.

    Never raises — every outcome becomes a terminal queue message, so
    the parent's poll loop is the single place failures are interpreted.
    """
    try:
        # The terminal's Ctrl+C goes to the whole process group; the
        # parent translates it into the cancel event, which is the only
        # interruption channel workers honour (a raw KeyboardInterrupt
        # mid-queue-put could tear the message stream).
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    shard = spec["shard"]
    try:
        _run_shard(spec, queue, cancel_event)
    except JoinTimeout as exc:
        queue.put(
            ("error", shard, "timeout", {"elapsed": exc.elapsed, "deadline": exc.deadline})
        )
    except JoinCancelled as exc:
        queue.put(("error", shard, "cancelled", {"reason": exc.reason}))
    except MemoryBudgetExceeded as exc:
        queue.put(
            ("error", shard, "memory", {"entries": exc.entries, "budget": exc.budget})
        )
    except CheckpointMismatch as exc:
        queue.put(("error", shard, "checkpoint", {"message": str(exc)}))
    except SnapshotCorrupted as exc:
        queue.put(("error", shard, "corrupt", {"path": exc.path, "detail": exc.detail}))
    except BaseException as exc:  # noqa: BLE001 - relayed, not swallowed
        queue.put(
            ("error", shard, "crash", {"message": f"{type(exc).__name__}: {exc}"})
        )


def _run_shard(spec: dict, queue, cancel_event) -> None:
    shard = spec["shard"]
    n_shards = spec["n_shards"]
    dataset = spec["dataset"]
    predicate = spec["predicate"]
    batch_size = spec["batch_size"]

    algorithm = make_algorithm(spec["algorithm"], **spec["algorithm_kwargs"])
    algorithm.name = shard_algorithm_name(algorithm.name, shard, n_shards)
    algorithm.set_shard_window(spec["lo"], spec["hi"])

    checkpointer = None
    checkpoint_dir = spec["checkpoint_dir"]
    if checkpoint_dir is not None:
        marker_meta = {
            "algorithm": algorithm.name,
            "predicate": predicate.name,
            "fingerprint": dataset_fingerprint(dataset),
            "n_records": len(dataset),
        }
        finished = _load_done_marker(checkpoint_dir, marker_meta)
        if finished is not None:
            info = dict(finished["info"])
            info["resumed_finished_shard"] = True
            _stream_result(
                queue,
                shard,
                [tuple(pair) for pair in finished["pairs"]],
                finished["counters"],
                info,
                batch_size,
            )
            return
        checkpointer = JoinCheckpointer(
            checkpoint_dir, interval_records=spec["checkpoint_interval"]
        )

    context = JoinContext(
        deadline_seconds=spec["deadline_seconds"],
        cancel_token=EventCancellationToken(cancel_event),
        memory_budget_entries=spec["memory_budget_entries"],
        on_memory_exceeded=spec["on_memory_exceeded"],
        checkpointer=checkpointer,
    )

    start = time.perf_counter()
    result = algorithm.join(dataset, predicate, context=context)
    pairs = [(p.rid_a, p.rid_b, p.similarity) for p in result.pairs]
    counters = result.counters.as_dict()
    info = {
        "degraded_from": result.degraded_from,
        "degradation_reason": result.degradation_reason,
        "elapsed_seconds": time.perf_counter() - start,
        "window": [spec["lo"], spec["hi"]],
    }
    if checkpoint_dir is not None:
        # Persist the finished shard so a resume of the *whole* parallel
        # join (another shard was interrupted) skips this one entirely.
        _write_done_marker(checkpoint_dir, marker_meta, pairs, counters, info)
    _stream_result(queue, shard, pairs, counters, info, batch_size)
