"""Hamming / symmetric-difference predicate (framework extension).

``|r Δ s| <= k`` — the set-Hamming distance used by later
set-similarity-join work — rewrites to an overlap condition::

    |r ∩ s| >= (|r| + |s| - k) / 2   =: T(r, s)

which is non-decreasing in both set sizes, exactly what the §5
framework requires. The band filter is ``||r| - |s|| <= k`` (a size gap
already costs that much symmetric difference).

Exactness domain: like the edit-distance bound, the rewrite is vacuous
when ``T(r, s) <= 0`` — disjoint pairs with ``|r| + |s| <= k`` qualify
but share no words for an index join to find. Use
:func:`repro.core.join.hamming_join` for a wrapper that brute-force
covers that corner; the bare predicate is exact whenever every record
has more than ``k`` elements.
"""

from __future__ import annotations

from repro.core.records import Dataset
from repro.predicates.base import BandFilter, BoundPredicate, SimilarityPredicate

__all__ = ["HammingPredicate"]


class _BoundHamming(BoundPredicate):
    unit_scores = True

    def __init__(self, dataset: Dataset, k: int):
        super().__init__(dataset)
        self.k = k
        self._band: BandFilter | None = None

    def score_vector(self, rid: int) -> tuple[float, ...]:
        return (1.0,) * len(self.dataset[rid])

    def threshold(self, norm_r: float, norm_s: float) -> float:
        return (norm_r + norm_s - self.k) / 2.0

    def similarity_name(self) -> str:
        return "hamming"

    def natural_similarity(self, rid_r: int, rid_s: int, weight: float) -> float:
        """The symmetric-difference size (smaller is more similar)."""
        return self.norm(rid_r) + self.norm(rid_s) - 2.0 * weight

    def band_filter(self) -> BandFilter | None:
        if self._band is None or len(self._band.keys) != len(self.dataset):
            keys = tuple(float(len(record)) for record in self.dataset.records)
            self._band = BandFilter(keys=keys, radius=float(self.k))
        return self._band


class HammingPredicate(SimilarityPredicate):
    """Symmetric difference |r Δ s| <= k."""

    def __init__(self, k: int):
        if k < 0:
            raise ValueError(f"hamming bound must be >= 0, got {k}")
        self.k = k

    @property
    def name(self) -> str:
        return f"hamming(k={self.k})"

    def bind(self, dataset: Dataset) -> _BoundHamming:
        return _BoundHamming(dataset, self.k)
