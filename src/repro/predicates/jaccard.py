"""Jaccard-coefficient predicate (paper §5.2.1).

``Jaccard(r, s) = |r ∩ s| / |r ∪ s| >= f`` is rewritten as an overlap
condition with the record-pair-dependent threshold::

    |r ∩ s| >= f * (|r| + |s|) / (1 + f)   =: T(r, s)

which is non-decreasing in both set sizes, as the framework requires. The
additional filter is the size-ratio condition
``min(|r|/|s|, |s|/|r|) >= f``, expressed as the band
``|log|r| - log|s|| <= log(1/f)`` (§5.3).

The weighted variant replaces set sizes by total word weight; embedding
``score(w, r) = sqrt(weight(w))`` makes ``||r||`` the total weight and the
same threshold formula applies verbatim.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping

from repro.core.records import Dataset
from repro.predicates.base import BandFilter, BoundPredicate, SimilarityPredicate

__all__ = ["JaccardPredicate"]


class _BoundJaccard(BoundPredicate):
    def __init__(self, dataset: Dataset, f: float, weight_of: Callable[[int], float] | None):
        super().__init__(dataset)
        self.f = f
        self.weight_of = weight_of
        self.unit_scores = weight_of is None
        self._band: BandFilter | None = None

    def score_vector(self, rid: int) -> tuple[float, ...]:
        if self.weight_of is None:
            return (1.0,) * len(self.dataset[rid])
        return tuple(math.sqrt(self.weight_of(token)) for token in self.dataset[rid])

    def threshold(self, norm_r: float, norm_s: float) -> float:
        return self.f * (norm_r + norm_s) / (1.0 + self.f)

    def similarity_name(self) -> str:
        return "jaccard"

    def natural_similarity(self, rid_r: int, rid_s: int, weight: float) -> float:
        union = self.norm(rid_r) + self.norm(rid_s) - weight
        if union <= 0.0:
            return 0.0
        return weight / union

    def band_filter(self) -> BandFilter | None:
        if self._band is None or len(self._band.keys) != len(self.dataset):
            keys = tuple(
                math.log(self.norm(rid)) if self.norm(rid) > 0 else -math.inf
                for rid in range(len(self.dataset))
            )
            self._band = BandFilter(keys=keys, radius=-math.log(self.f))
        return self._band


class JaccardPredicate(SimilarityPredicate):
    """Jaccard coefficient >= f (optionally weighted).

    Args:
        f: fraction in (0, 1].
        weights: None for the unweighted coefficient, or a mapping /
            callable giving per-token weights for the weighted variant.
    """

    def __init__(self, f: float, weights: Mapping[int, float] | Callable[[int], float] | None = None):
        if not 0.0 < f <= 1.0:
            raise ValueError(f"jaccard fraction must be in (0, 1], got {f}")
        self.f = f
        self.weights = weights

    @property
    def name(self) -> str:
        return f"jaccard(f={self.f:g})"

    def bind(self, dataset: Dataset) -> _BoundJaccard:
        weight_of: Callable[[int], float] | None
        if self.weights is None:
            weight_of = None
        elif callable(self.weights):
            weight_of = self.weights
        else:
            mapping = self.weights

            def weight_of(token: int, _m: Mapping[int, float] = mapping) -> float:
                return _m.get(token, 1.0)

        return _BoundJaccard(dataset, self.f, weight_of)
