"""Cosine similarity on TF-IDF scores (paper §5.2.2).

Each record is a TF-IDF vector; the join selects pairs whose cosine is at
least ``f``. Framework embedding: ``score(w, s) = TF-IDF(w, s) / ||s||_2``
(unit-normalized), so the accumulated match weight *is* the cosine and the
threshold is the constant ``f``. Every record norm (Eq. 1) is 1.

The paper notes this predicate benefits most from MergeOpt's large-list
pruning, because frequent words have both the longest posting lists and
the lowest IDF scores — they land in ``L`` first.
"""

from __future__ import annotations

from repro.core.records import Dataset
from repro.predicates.base import BoundPredicate, SimilarityPredicate
from repro.text.tfidf import CorpusStats

__all__ = ["CosinePredicate"]


class _BoundCosine(BoundPredicate):
    record_independent_scores = False

    def __init__(self, dataset: Dataset, f: float, stats: CorpusStats):
        super().__init__(dataset)
        self.f = f
        self.stats = stats

    def score_vector(self, rid: int) -> tuple[float, ...]:
        tokens = self.dataset[rid]
        raw = [self.stats.score(token) for token in tokens]
        norm = sum(value * value for value in raw) ** 0.5
        if norm == 0.0:
            return (0.0,) * len(tokens)
        return tuple(value / norm for value in raw)

    def threshold(self, norm_r: float, norm_s: float) -> float:
        return self.f

    def approx_jaccard_floor(self) -> float | None:
        # For equal token weights, cos >= f forces x >= f*sqrt(ab) and
        # x <= min(a, b), so sqrt(a/b) ranges over [f, 1/f] and
        # J = x/(a+b-x) >= f / (f + 1/f - f) = f^2 — exact. With TF-IDF
        # weights the bound is heuristic (a few rare tokens can carry
        # the cosine), so the planner flags it best-effort.
        return self.f * self.f

    def similarity_name(self) -> str:
        return "cosine"


class CosinePredicate(SimilarityPredicate):
    """TF-IDF cosine similarity >= f.

    Args:
        f: fraction in (0, 1].
        stats: optional precomputed :class:`CorpusStats`; when omitted,
            IDF statistics are computed from the joined dataset at bind
            time (the paper's preprocessing pass).
    """

    def __init__(self, f: float, stats: CorpusStats | None = None):
        if not 0.0 < f <= 1.0:
            raise ValueError(f"cosine fraction must be in (0, 1], got {f}")
        self.f = f
        self.stats = stats

    @property
    def name(self) -> str:
        return f"cosine(f={self.f:g})"

    def bind(self, dataset: Dataset) -> _BoundCosine:
        stats = self.stats if self.stats is not None else CorpusStats(dataset.records)
        return _BoundCosine(dataset, self.f, stats)
