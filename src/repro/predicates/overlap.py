"""T-overlap predicates: the paper's primary join condition (§2).

``OverlapPredicate(T)`` selects pairs sharing at least ``T`` common words.
``WeightedOverlapPredicate(T, weights)`` generalizes to the "weighted
match > T" predicate of the introduction, where each word carries an
arbitrary weight (e.g. inverse document frequency).

Framework embedding: the framework accumulates the *product*
``score(w, r) * score(w, s)`` per matched word (§5). Choosing
``score(w, r) = sqrt(weight(w))`` makes the product equal ``weight(w)``,
so the accumulated match weight is exactly the paper's "total weight of
common words", and the record norm ``||r|| = sum(score^2)`` is the total
record weight. The threshold is the constant ``T``.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping

from repro.core.records import Dataset
from repro.predicates.base import BoundPredicate, SimilarityPredicate

__all__ = ["OverlapPredicate", "WeightedOverlapPredicate"]


class _BoundOverlap(BoundPredicate):
    """Unweighted T-overlap bound to a dataset: all scores are 1."""

    unit_scores = True

    def __init__(self, dataset: Dataset, t: float):
        super().__init__(dataset)
        self.t = t

    def score_vector(self, rid: int) -> tuple[float, ...]:
        return (1.0,) * len(self.dataset[rid])

    def threshold(self, norm_r: float, norm_s: float) -> float:
        return self.t

    def similarity_name(self) -> str:
        return "overlap"


class OverlapPredicate(SimilarityPredicate):
    """Intersect-size >= T: the T-overlap join of §2.

    ``T = 1`` recovers the classical non-zero-overlap join.
    """

    def __init__(self, t: float):
        if t <= 0:
            raise ValueError(f"overlap threshold must be positive, got {t}")
        self.t = t

    @property
    def name(self) -> str:
        return f"overlap(T={self.t:g})"

    def bind(self, dataset: Dataset) -> _BoundOverlap:
        return _BoundOverlap(dataset, self.t)


class _BoundWeightedOverlap(BoundPredicate):
    """Weighted T-overlap: score(w, r) = sqrt(weight(w))."""

    def __init__(self, dataset: Dataset, t: float, weight_of: Callable[[int], float]):
        super().__init__(dataset)
        self.t = t
        self.weight_of = weight_of

    def score_vector(self, rid: int) -> tuple[float, ...]:
        return tuple(math.sqrt(self.weight_of(token)) for token in self.dataset[rid])

    def threshold(self, norm_r: float, norm_s: float) -> float:
        return self.t

    def similarity_name(self) -> str:
        return "weighted-overlap"


class WeightedOverlapPredicate(SimilarityPredicate):
    """Weighted match >= T with per-word weights.

    Args:
        t: threshold on total common-word weight.
        weights: either a mapping token-id -> weight, a callable
            token-id -> weight, or the string ``"idf"`` to weight each
            word by ``log(1 + N / df(w))`` computed from the dataset at
            bind time (the "inverse of frequency in the database" weight
            the introduction suggests).
    """

    def __init__(self, t: float, weights: Mapping[int, float] | Callable[[int], float] | str = "idf"):
        if t <= 0:
            raise ValueError(f"overlap threshold must be positive, got {t}")
        self.t = t
        self.weights = weights

    @property
    def name(self) -> str:
        return f"weighted-overlap(T={self.t:g})"

    def bind(self, dataset: Dataset) -> _BoundWeightedOverlap:
        weights = self.weights
        if weights == "idf":
            n = max(len(dataset), 1)
            frequency = dataset.frequency

            def weight_of(token: int, _n: int = n, _freq: dict = frequency) -> float:
                return math.log(1.0 + _n / _freq.get(token, 1))

        elif callable(weights):
            weight_of = weights
        else:
            mapping = weights

            def weight_of(token: int, _m: Mapping[int, float] = mapping) -> float:
                return _m.get(token, 1.0)

        bound = _BoundWeightedOverlap(dataset, self.t, weight_of)
        for token in list(dataset.frequency):
            if weight_of(token) < 0:
                raise ValueError(f"word weights must be non-negative (token {token})")
        return bound
