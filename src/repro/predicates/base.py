"""Predicate protocol: the paper's general optimization framework (§5.1).

An (unbound) :class:`SimilarityPredicate` describes a join condition; at
join time it is bound to a :class:`~repro.core.records.Dataset`, producing
a :class:`BoundPredicate` that precomputes per-record score vectors and
norms. The join algorithms only ever talk to the bound form.

Floating point discipline: candidate generation inside the merge
algorithms accepts candidates whose *accumulated* match weight is within
``WEIGHT_EPS`` of the threshold, and the final decision for every emitted
pair is made by :meth:`BoundPredicate.verify`, which recomputes the match
weight in a canonical token order. The naive baseline uses the same
``verify``, so all algorithms agree bit-for-bit on the output set.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.records import Dataset

__all__ = ["WEIGHT_EPS", "BandFilter", "BoundPredicate", "SimilarityPredicate"]

# Accumulated-vs-canonical match weights differ only by float summation
# order; this slack makes candidate generation a guaranteed superset.
WEIGHT_EPS = 1e-7


@dataclass(frozen=True)
class BandFilter:
    """A filter of the form ``|l(r) - l(s)| <= radius`` (§5.3).

    ``keys[rid]`` holds ``l(rid)`` for every record. The same object
    drives both the in-merge filter (applied when a frontier record is
    pushed into the heap, §5 "Additional Filters") and the band-join
    partitioning algorithms of §5.3.
    """

    keys: tuple[float, ...]
    radius: float

    def accepts(self, rid_a: int, rid_b: int) -> bool:
        """True when the pair survives the filter."""
        return abs(self.keys[rid_a] - self.keys[rid_b]) <= self.radius + 1e-12


class BoundPredicate(ABC):
    """A similarity predicate bound to a concrete dataset.

    Subclasses implement :meth:`score_vector` and :meth:`threshold`; the
    base class derives norms, canonical match weights, verification, and
    the index-level threshold bound from those.
    """

    #: True when threshold satisfaction is necessary but not sufficient
    #: (edit distance: q-gram count bound) and verify() needs payloads.
    requires_payload_verification = False

    #: True when score(w, r) depends only on w (overlap, Jaccard, ...).
    #: Word-Groups requires this — a word group has one weight per word.
    record_independent_scores = True

    #: True when every score is exactly 1.0, so the match weight *is*
    #: the intersection size and a record's norm is its size. The
    #: prefix-filter stack (prefix/position/suffix filters) requires
    #: this — its lemmas count tokens, not weights. Declared statically
    #: here (instance attribute where it depends on construction, e.g.
    #: weighted Jaccard); predicates that leave it False are checked by
    #: a full score scan in
    #: :func:`repro.core.token_order.ensure_unit_scores`.
    unit_scores = False

    #: Whether :meth:`SetJoinAlgorithm._verify_pair` may use the 64-bit
    #: word-signature prefilter. Sound only for predicates whose verify
    #: is the match-weight threshold test (zero common tokens => weight
    #: zero => fails any positive threshold); predicates that verify on
    #: payloads (edit distance) opt out.
    use_signature_prefilter = True

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self._score_vectors: list[tuple[float, ...] | None] = [None] * len(dataset)
        self._norms: list[float | None] = [None] * len(dataset)
        self._score_maps: list[dict[int, float] | None] = [None] * len(dataset)
        self._signatures: list[int | None] = [None] * len(dataset)

    # ------------------------------------------------------------------
    # Abstract surface
    # ------------------------------------------------------------------

    @abstractmethod
    def score_vector(self, rid: int) -> tuple[float, ...]:
        """``score(w, r)`` for each token of record ``rid``, in token order."""

    @abstractmethod
    def threshold(self, norm_r: float, norm_s: float) -> float:
        """``T(r, s)`` as a non-decreasing function of the two norms."""

    @abstractmethod
    def similarity_name(self) -> str:
        """Human-readable name of the natural similarity value."""

    def band_filter(self) -> BandFilter | None:
        """Optional band filter; None when the predicate has no filter."""
        return None

    def approx_jaccard_floor(self) -> float | None:
        """Optional token-Jaccard lower bound for qualifying pairs.

        Consumed by :mod:`repro.approx` to size its LSH candidate
        generator. ``None`` (the default) asks the planner to derive a
        bound itself — sound for unit-score predicates, a conservative
        default otherwise. Weighted predicates with a better analytic
        handle (TF-IDF cosine) override this; an override is treated as
        a *heuristic* floor unless the derivation is exact for the
        weighting in use.
        """
        return None

    # ------------------------------------------------------------------
    # Derived machinery
    # ------------------------------------------------------------------

    def extend_to(self, n_records: int) -> None:
        """Grow the per-record caches to cover a grown dataset.

        Used by the incremental :class:`~repro.core.service.SimilarityIndex`
        between appends; valid when scores of existing records are
        unaffected by the new ones (corpus-statistic predicates like
        TF-IDF cosine should rebind instead).
        """
        missing = n_records - len(self._score_vectors)
        if missing > 0:
            self._score_vectors.extend([None] * missing)
            self._norms.extend([None] * missing)
            self._score_maps.extend([None] * missing)
            self._signatures.extend([None] * missing)

    def cached_score_vector(self, rid: int) -> tuple[float, ...]:
        """Memoized :meth:`score_vector`."""
        vector = self._score_vectors[rid]
        if vector is None:
            vector = tuple(self.score_vector(rid))
            self._score_vectors[rid] = vector
        return vector

    def score_map(self, rid: int) -> dict[int, float]:
        """Memoized token -> score mapping for record ``rid``."""
        mapping = self._score_maps[rid]
        if mapping is None:
            tokens = self.dataset[rid]
            mapping = dict(zip(tokens, self.cached_score_vector(rid)))
            self._score_maps[rid] = mapping
        return mapping

    def signature(self, rid: int) -> int:
        """64-bit Bloom-style word signature of record ``rid``, memoized.

        Bit ``token % 64`` is set for every token; two records with a
        common token therefore always share a signature bit, so a
        disjoint AND proves an empty intersection (the converse does not
        hold — collisions only cost a wasted full verification).
        """
        value = self._signatures[rid]
        if value is None:
            value = 0
            for token in self.dataset[rid]:
                value |= 1 << (token & 63)
            self._signatures[rid] = value
        return value

    def norm(self, rid: int) -> float:
        """``||r|| = sum(score(w, r)^2)`` (paper Eq. 1), memoized."""
        value = self._norms[rid]
        if value is None:
            value = sum(s * s for s in self.cached_score_vector(rid))
            self._norms[rid] = value
        return value

    def index_threshold(self, norm_r: float, min_norm: float) -> float:
        """``T(r, I) = min_s T(r, s) = T(r, minS)`` by monotonicity (§5.1.1)."""
        return self.threshold(norm_r, min_norm)

    def match_weight(self, rid_r: int, rid_s: int) -> float:
        """Canonical ``sum(score(w, r) * score(w, s))`` over common words.

        Iterates the smaller record against the larger one's score map so
        the summation order is deterministic regardless of which algorithm
        asks.
        """
        if len(self.dataset[rid_r]) > len(self.dataset[rid_s]):
            rid_r, rid_s = rid_s, rid_r
        other = self.score_map(rid_s)
        total = 0.0
        tokens = self.dataset[rid_r]
        scores = self.cached_score_vector(rid_r)
        for token, score in zip(tokens, scores):
            score_s = other.get(token)
            if score_s is not None:
                total += score * score_s
        return total

    def satisfied(self, weight: float, norm_r: float, norm_s: float) -> bool:
        """Threshold test with the canonical float tolerance."""
        return weight >= self.threshold(norm_r, norm_s) - WEIGHT_EPS / 10

    def verify(self, rid_r: int, rid_s: int) -> tuple[bool, float]:
        """Exact decision for a candidate pair.

        Returns ``(matches, natural_similarity)``. The default recomputes
        the canonical match weight and applies threshold + band filter;
        predicates with a necessary-but-insufficient bound (edit distance)
        override this to run their exact verifier.
        """
        band = self.band_filter()
        if band is not None and not band.accepts(rid_r, rid_s):
            return False, 0.0
        weight = self.match_weight(rid_r, rid_s)
        ok = self.satisfied(weight, self.norm(rid_r), self.norm(rid_s))
        return ok, self.natural_similarity(rid_r, rid_s, weight)

    def natural_similarity(self, rid_r: int, rid_s: int, weight: float) -> float:
        """Convert a match weight into the predicate's natural measure.

        Default: the match weight itself (overlap-style predicates).
        """
        return weight


class SimilarityPredicate(ABC):
    """An unbound predicate: a join condition awaiting a dataset."""

    @abstractmethod
    def bind(self, dataset: Dataset) -> BoundPredicate:
        """Bind to a dataset, precomputing whatever corpus stats we need."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in benchmark tables."""
