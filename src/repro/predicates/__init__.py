"""Similarity predicates in the paper's general framework (§5).

A predicate supplies three things (paper §5):

* a **word match score** ``score(w, r)`` — the contribution of word ``w``
  in record ``r``; a matched word contributes the product
  ``score(w, r) * score(w, s)``;
* a **threshold function** ``T(r, s)``, any non-decreasing function of the
  record norms ``||r|| = sum(score(w, r)^2)`` (Eq. 1);
* optional **filters** of the band form ``|l(r) - l(s)| <= k`` that reject
  pairs before their common words are counted (§5.3).

All join algorithms in :mod:`repro.core` are written against this
interface, so every optimization (MergeOpt, online probing, pre-sorting,
clustering, limited memory) applies to every predicate — the paper's
central generalization claim.
"""

from repro.predicates.base import BandFilter, BoundPredicate, SimilarityPredicate
from repro.predicates.cosine import CosinePredicate
from repro.predicates.dice import DicePredicate, OverlapCoefficientPredicate
from repro.predicates.edit_distance import EditDistancePredicate
from repro.predicates.hamming import HammingPredicate
from repro.predicates.jaccard import JaccardPredicate
from repro.predicates.overlap import OverlapPredicate, WeightedOverlapPredicate

__all__ = [
    "BandFilter",
    "BoundPredicate",
    "CosinePredicate",
    "DicePredicate",
    "EditDistancePredicate",
    "HammingPredicate",
    "JaccardPredicate",
    "OverlapCoefficientPredicate",
    "OverlapPredicate",
    "SimilarityPredicate",
    "WeightedOverlapPredicate",
]
