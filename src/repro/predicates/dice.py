"""Dice and overlap-coefficient predicates (framework extensions).

The paper's framework (§5) accepts any threshold function that is
non-decreasing in the record norms. These two measures are standard in
the later set-similarity-join literature and fall out of the framework
directly, so we include them as extension predicates:

* **Dice**: ``2|r∩s| / (|r|+|s|) >= f``  ⇔  ``|r∩s| >= f(|r|+|s|)/2``.
  Size-ratio filter: ``min(|r|,|s|)/max(|r|,|s|) >= f/(2-f)``.
* **Overlap coefficient**: ``|r∩s| / min(|r|,|s|) >= f``  ⇔
  ``|r∩s| >= f·min(|r|,|s|)`` — ``min`` is non-decreasing in each
  argument, so the monotonicity requirement holds; it admits no
  size-ratio filter.
"""

from __future__ import annotations

import math

from repro.core.records import Dataset
from repro.predicates.base import BandFilter, BoundPredicate, SimilarityPredicate

__all__ = ["DicePredicate", "OverlapCoefficientPredicate"]


class _BoundDice(BoundPredicate):
    unit_scores = True

    def __init__(self, dataset: Dataset, f: float):
        super().__init__(dataset)
        self.f = f
        self._band: BandFilter | None = None

    def score_vector(self, rid: int) -> tuple[float, ...]:
        return (1.0,) * len(self.dataset[rid])

    def threshold(self, norm_r: float, norm_s: float) -> float:
        return self.f * (norm_r + norm_s) / 2.0

    def similarity_name(self) -> str:
        return "dice"

    def natural_similarity(self, rid_r: int, rid_s: int, weight: float) -> float:
        total = self.norm(rid_r) + self.norm(rid_s)
        if total <= 0.0:
            return 0.0
        return 2.0 * weight / total

    def band_filter(self) -> BandFilter | None:
        if self._band is None or len(self._band.keys) != len(self.dataset):
            keys = tuple(
                math.log(self.norm(rid)) if self.norm(rid) > 0 else -math.inf
                for rid in range(len(self.dataset))
            )
            ratio = self.f / (2.0 - self.f)
            self._band = BandFilter(keys=keys, radius=-math.log(ratio))
        return self._band


class DicePredicate(SimilarityPredicate):
    """Dice coefficient >= f."""

    def __init__(self, f: float):
        if not 0.0 < f <= 1.0:
            raise ValueError(f"dice fraction must be in (0, 1], got {f}")
        self.f = f

    @property
    def name(self) -> str:
        return f"dice(f={self.f:g})"

    def bind(self, dataset: Dataset) -> _BoundDice:
        return _BoundDice(dataset, self.f)


class _BoundOverlapCoefficient(BoundPredicate):
    unit_scores = True

    def __init__(self, dataset: Dataset, f: float):
        super().__init__(dataset)
        self.f = f

    def score_vector(self, rid: int) -> tuple[float, ...]:
        return (1.0,) * len(self.dataset[rid])

    def threshold(self, norm_r: float, norm_s: float) -> float:
        return self.f * min(norm_r, norm_s)

    def similarity_name(self) -> str:
        return "overlap-coefficient"

    def natural_similarity(self, rid_r: int, rid_s: int, weight: float) -> float:
        smaller = min(self.norm(rid_r), self.norm(rid_s))
        if smaller <= 0.0:
            return 0.0
        return weight / smaller


class OverlapCoefficientPredicate(SimilarityPredicate):
    """Overlap coefficient (Szymkiewicz–Simpson) >= f."""

    def __init__(self, f: float):
        if not 0.0 < f <= 1.0:
            raise ValueError(f"overlap-coefficient fraction must be in (0, 1], got {f}")
        self.f = f

    @property
    def name(self) -> str:
        return f"overlap-coeff(f={self.f:g})"

    def bind(self, dataset: Dataset) -> _BoundOverlapCoefficient:
        return _BoundOverlapCoefficient(dataset, self.f)
