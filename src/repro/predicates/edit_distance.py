"""Edit-distance predicate via the q-gram count bound (paper §5.2.3).

For strings ``r, s`` with ``edit_distance(r, s) <= k``:

* ``|length(r) - length(s)| <= k`` (the band filter), and
* the number of matching q-grams satisfies
  ``n12 >= max(length(r), length(s)) - 1 - q(k - 1)``.

The q-gram count predicate is evaluated as a set join after turning each
string into its *bag* of padded q-grams. Bags are encoded as sets by
numbering repeated occurrences (``("abc", 0), ("abc", 1), ...``), which
makes set intersection equal the bag match count — without this, strings
with repeated q-grams (e.g. ``"aaaa"``) could be missed and the join
would not be exact.

Because the bound is necessary but not sufficient, every candidate pair
is verified with a banded O(k·n) dynamic program on the original strings
(held as dataset payloads).

Note: ``T(r, s)`` can be non-positive for very short strings, in which
case qualifying pairs may share *no* q-grams and an index join cannot see
them. :func:`repro.core.join.edit_distance_join` handles that corner by
brute-force verification among short strings; the predicate alone is
exact whenever every record's string is longer than ``1 + q(k-1)``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.core.records import Dataset
from repro.predicates.base import BandFilter, BoundPredicate, SimilarityPredicate
from repro.text.editdist import banded_edit_distance
from repro.text.tokenizers import normalize, qgrams

__all__ = ["EditDistancePredicate", "numbered_qgrams", "qgram_dataset"]


def numbered_qgrams(text: str, q: int = 3) -> list[str]:
    """Padded q-grams with occurrence numbers: the bag-as-set encoding."""
    counts: Counter[str] = Counter()
    out = []
    for gram in qgrams(normalize(text), q=q, pad=True):
        out.append(f"{gram}\x00{counts[gram]}")
        counts[gram] += 1
    return out


def qgram_dataset(strings: Sequence[str], q: int = 3) -> Dataset:
    """Build the q-gram bag dataset for an edit-distance join.

    Strings are kept as payloads so the verifier can reach them.
    """
    return Dataset.from_token_lists(
        (numbered_qgrams(text, q=q) for text in strings), payloads=list(strings)
    )


class _BoundEditDistance(BoundPredicate):
    requires_payload_verification = True
    # verify() decides on the payload strings, not the q-gram match
    # weight; the signature prefilter's zero-weight reasoning does not
    # apply, so it must stay off.
    use_signature_prefilter = False
    # Every numbered q-gram scores 1.0, so the prefix-filter stack may
    # generate candidates from the q-gram count bound.
    unit_scores = True
    # The bitmap filter may still prune: threshold() is the q-gram
    # lemma's *necessary* bound on the common numbered-gram count, so a
    # weight cap below it proves ed > k (repro.filters.adapters).
    bitmap_qgram_bound = True

    def __init__(self, dataset: Dataset, k: int, q: int):
        super().__init__(dataset)
        if dataset.payloads is None:
            raise ValueError(
                "edit-distance joins need the source strings as dataset payloads;"
                " build the dataset with qgram_dataset()"
            )
        self.k = k
        self.q = q
        self._lengths = tuple(len(normalize(str(p))) for p in dataset.payloads)
        self._band: BandFilter | None = None

    def string_length(self, rid: int) -> int:
        """Normalized length of the source string."""
        return self._lengths[rid]

    def score_vector(self, rid: int) -> tuple[float, ...]:
        return (1.0,) * len(self.dataset[rid])

    def threshold(self, norm_r: float, norm_s: float) -> float:
        # A padded string of length n has n + q - 1 q-grams, so the norm
        # (the q-gram count) determines the length.
        length_r = norm_r - (self.q - 1)
        length_s = norm_s - (self.q - 1)
        return max(length_r, length_s) - 1.0 - self.q * (self.k - 1)

    def similarity_name(self) -> str:
        return "edit-distance"

    def band_filter(self) -> BandFilter | None:
        if self._band is None:
            self._band = BandFilter(
                keys=tuple(float(length) for length in self._lengths),
                radius=float(self.k),
            )
        return self._band

    def verify(self, rid_r: int, rid_s: int) -> tuple[bool, float]:
        """Exact banded-DP verification on the source strings.

        The returned "similarity" is the edit distance itself (smaller is
        more similar); a value of ``k + 1`` stands for "greater than k".
        """
        if abs(self._lengths[rid_r] - self._lengths[rid_s]) > self.k:
            return False, float(self.k + 1)
        a = normalize(str(self.dataset.payload(rid_r)))
        b = normalize(str(self.dataset.payload(rid_s)))
        distance = banded_edit_distance(a, b, self.k)
        return distance <= self.k, float(distance)


class EditDistancePredicate(SimilarityPredicate):
    """edit_distance(r, s) <= k over strings, via q-gram candidates.

    The dataset must be built with :func:`qgram_dataset` (or otherwise
    carry the source strings as payloads and numbered padded q-grams as
    tokens).
    """

    def __init__(self, k: int, q: int = 3):
        if k < 0:
            raise ValueError(f"edit-distance bound must be >= 0, got {k}")
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.k = k
        self.q = q

    @property
    def name(self) -> str:
        return f"edit-distance(k={self.k}, q={self.q})"

    def bind(self, dataset: Dataset) -> _BoundEditDistance:
        return _BoundEditDistance(dataset, self.k, self.q)

    def short_string_cutoff(self) -> int:
        """Lengths at or below this can have non-positive thresholds.

        ``T(r, s) <= 0``  ⇔  ``max(len_r, len_s) <= 1 + q(k-1)``; pairs in
        that regime need brute-force handling for exactness.
        """
        return 1 + self.q * (self.k - 1)
