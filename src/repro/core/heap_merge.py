"""Basic heap-based posting-list merge (paper §2.1).

The Probe-Count algorithm merges the RID lists of every probe word with a
heap over the list frontiers: repeatedly pop the minimum RID, accumulate
its weight while successive popped RIDs are equal, and push the popped
list's next RID. Candidates whose accumulated weight reaches the
threshold are returned.

This is the unoptimized baseline that MergeOpt (``merge_opt.py``)
improves on; it merges *all* lists regardless of the threshold.

The inner loop is the hottest code in the two-pass Probe-Count variants,
so it is written flat: per-list ids/scores/probe-score are hoisted into
parallel locals, the pop/accumulate/advance/push step is one shared
inline loop (not a helper called per popped entry), and the work
counters are accumulated in local integers that are added to
``counters`` once per merge. The counter totals and the returned
candidate list are bit-identical to the straightforward formulation
(tests pin this).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.core.inverted_index import PostingList
from repro.predicates.base import WEIGHT_EPS
from repro.utils.counters import CostCounters

__all__ = ["heap_merge"]


def heap_merge(
    lists: list[tuple[PostingList, float]],
    threshold_of: Callable[[int], float],
    counters: CostCounters,
    accept: Callable[[int], bool] | None = None,
) -> list[tuple[int, float]]:
    """Merge posting lists, returning ``(entity_id, weight)`` candidates.

    Args:
        lists: ``(posting_list, probe_score)`` pairs from the index probe;
            a match in list ``l_w`` contributes
            ``probe_score * entry_score``.
        threshold_of: maps an entity id to its pair threshold ``T(r, s)``.
        counters: work counters to update.
        accept: optional id-level filter (e.g. "only ids smaller than the
            probing record" for two-pass self-joins); filtered ids are
            skipped entirely.

    Returns candidates with ``weight >= T(r, s) - eps`` in increasing id
    order.
    """
    n_lists = len(lists)
    ids_of: list = [None] * n_lists
    scores_of: list = [None] * n_lists
    probe_of: list = [0.0] * n_lists
    frontiers: list[int] = [0] * n_lists
    heap: list[tuple[int, int]] = []
    pushes = 0
    for list_idx, (plist, probe_score) in enumerate(lists):
        ids = plist.ids
        ids_of[list_idx] = ids
        scores_of[list_idx] = plist.scores
        probe_of[list_idx] = probe_score
        position = 0
        n = len(ids)
        if accept is not None:
            while position < n and not accept(ids[position]):
                position += 1
        if position < n:
            heap.append((ids[position], list_idx))
            frontiers[list_idx] = position + 1
            pushes += 1
        else:
            frontiers[list_idx] = position
    heapq.heapify(heap)

    heappop = heapq.heappop
    heappush = heapq.heappush
    pops = 0
    touched = 0
    checked = 0
    candidates: list[tuple[int, float]] = []
    append = candidates.append
    while heap:
        # One shared pop/accumulate/advance/push step serves both the
        # first pop of a run of equal RIDs and every follow-up pop;
        # counter totals are unchanged versus the unrolled form (pinned
        # by a counter-identity test).
        current, list_idx = heappop(heap)
        weight = 0.0
        while True:
            pops += 1
            position = frontiers[list_idx]
            weight += probe_of[list_idx] * scores_of[list_idx][position - 1]
            touched += 1
            ids = ids_of[list_idx]
            n = len(ids)
            if accept is not None:
                while position < n and not accept(ids[position]):
                    position += 1
            if position < n:
                heappush(heap, (ids[position], list_idx))
                pushes += 1
                frontiers[list_idx] = position + 1
            else:
                frontiers[list_idx] = position
            if heap and heap[0][0] == current:
                _, list_idx = heappop(heap)
            else:
                break
        checked += 1
        if weight >= threshold_of(current) - WEIGHT_EPS:
            append((current, weight))
    counters.heap_pops += pops
    counters.heap_pushes += pushes
    counters.list_items_touched += touched
    counters.candidates_checked += checked
    return candidates
