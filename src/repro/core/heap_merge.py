"""Basic heap-based posting-list merge (paper §2.1).

The Probe-Count algorithm merges the RID lists of every probe word with a
heap over the list frontiers: repeatedly pop the minimum RID, accumulate
its weight while successive popped RIDs are equal, and push the popped
list's next RID. Candidates whose accumulated weight reaches the
threshold are returned.

This is the unoptimized baseline that MergeOpt (``merge_opt.py``)
improves on; it merges *all* lists regardless of the threshold.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.core.inverted_index import PostingList
from repro.predicates.base import WEIGHT_EPS
from repro.utils.counters import CostCounters

__all__ = ["heap_merge"]


def heap_merge(
    lists: list[tuple[PostingList, float]],
    threshold_of: Callable[[int], float],
    counters: CostCounters,
    accept: Callable[[int], bool] | None = None,
) -> list[tuple[int, float]]:
    """Merge posting lists, returning ``(entity_id, weight)`` candidates.

    Args:
        lists: ``(posting_list, probe_score)`` pairs from the index probe;
            a match in list ``l_w`` contributes
            ``probe_score * entry_score``.
        threshold_of: maps an entity id to its pair threshold ``T(r, s)``.
        counters: work counters to update.
        accept: optional id-level filter (e.g. "only ids smaller than the
            probing record" for two-pass self-joins); filtered ids are
            skipped entirely.

    Returns candidates with ``weight >= T(r, s) - eps`` in increasing id
    order.
    """
    heap: list[tuple[int, int]] = []
    frontiers: list[int] = []
    for list_idx, (plist, _probe_score) in enumerate(lists):
        position = 0
        if accept is not None:
            ids = plist.ids
            n = len(ids)
            while position < n and not accept(ids[position]):
                position += 1
        if position < len(plist.ids):
            heap.append((plist.ids[position], list_idx))
            frontiers.append(position + 1)
            counters.heap_pushes += 1
        else:
            frontiers.append(position)
    heapq.heapify(heap)

    candidates: list[tuple[int, float]] = []
    while heap:
        current, list_idx = heapq.heappop(heap)
        counters.heap_pops += 1
        weight = _contribution(lists, list_idx, frontiers, counters)
        _advance(heap, lists, list_idx, frontiers, accept, counters)
        while heap and heap[0][0] == current:
            _, list_idx = heapq.heappop(heap)
            counters.heap_pops += 1
            weight += _contribution(lists, list_idx, frontiers, counters)
            _advance(heap, lists, list_idx, frontiers, accept, counters)
        counters.candidates_checked += 1
        if weight >= threshold_of(current) - WEIGHT_EPS:
            candidates.append((current, weight))
    return candidates


def _contribution(
    lists: list[tuple[PostingList, float]],
    list_idx: int,
    frontiers: list[int],
    counters: CostCounters,
) -> float:
    """Weight contributed by the entry just popped from ``list_idx``."""
    plist, probe_score = lists[list_idx]
    position = frontiers[list_idx] - 1
    counters.list_items_touched += 1
    return probe_score * plist.scores[position]


def _advance(
    heap: list[tuple[int, int]],
    lists: list[tuple[PostingList, float]],
    list_idx: int,
    frontiers: list[int],
    accept: Callable[[int], bool] | None,
    counters: CostCounters,
) -> None:
    """Push the next (accepted) entry of ``list_idx`` into the heap."""
    plist, _probe_score = lists[list_idx]
    ids = plist.ids
    n = len(ids)
    position = frontiers[list_idx]
    if accept is not None:
        while position < n and not accept(ids[position]):
            position += 1
    if position < n:
        heapq.heappush(heap, (ids[position], list_idx))
        counters.heap_pushes += 1
        frontiers[list_idx] = position + 1
    else:
        frontiers[list_idx] = position
