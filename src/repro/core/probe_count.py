"""The Probe-Count family of join algorithms.

Variants, in the order the paper develops them:

* ``basic`` — §2.1: build the full inverted index in one pass, then probe
  it with every record, merging all matching lists with a heap.
* ``stopwords`` — §3.1: ``basic`` with the highest-frequency words
  removed from the index and each record's threshold reduced by the
  weight of the stopwords it contains (candidates are then verified, so
  the join stays exact).
* ``optmerge`` — §3.1: ``basic`` with the heap merge replaced by the
  threshold-sensitive MergeOpt (Algorithm 1 / 3).
* ``online`` — §3.2: single pass; each record probes the *partial* index
  before being inserted, halving the merge work and producing each pair
  exactly once.
* ``sort`` — §3.3 / §5.1.2: ``online`` over records pre-sorted by
  decreasing norm, so heavy records are processed while posting lists
  are short (and, for non-constant thresholds, while ``T(r, I)`` is
  still high).

``ProbeCountJoin(variant=...)`` selects one; results are identical across
variants (tests enforce this), only the work differs.
"""

from __future__ import annotations

from repro.core.base import SetJoinAlgorithm, _band_accept
from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.predicates.base import WEIGHT_EPS, BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["ProbeCountJoin", "VARIANTS"]

VARIANTS = ("basic", "stopwords", "optmerge", "online", "sort")


class ProbeCountJoin(SetJoinAlgorithm):
    """Inverted-index probe join (paper §2.1 with the §3.1–§3.3 options).

    Args:
        variant: one of ``basic``, ``stopwords``, ``optmerge``,
            ``online``, ``sort``.
        stopword_budget_fraction: for the ``stopwords`` variant, the
            fraction of the minimum index threshold that the removed
            words' maximum contribution may not exceed; the paper's
            "top T-1 words" rule corresponds to the default 1.0 with
            unit weights.
    """

    def __init__(self, variant: str = "optmerge", stopword_budget_fraction: float = 1.0):
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
        self.variant = variant
        self.stopword_budget_fraction = stopword_budget_fraction
        self.name = f"probe-count-{variant}"

    # ------------------------------------------------------------------

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        if self.variant in ("online", "sort"):
            return self._run_online(dataset, bound, counters)
        if self.variant == "stopwords":
            return self._run_stopwords(dataset, bound, counters)
        return self._run_two_pass(dataset, bound, counters)

    def _supports_index_backend(self, backend: str) -> bool:
        # online/sort insert as they go; the write-once mapped file
        # needs the full build pass the two-pass variants have.
        return backend == "mmap" and self.variant in (
            "basic",
            "optmerge",
            "stopwords",
        )

    def _build_full_index(
        self,
        dataset: Dataset,
        bound: BoundPredicate,
        counters: CostCounters,
        keep=None,
    ):
        """One full build pass; returns ``(index, dispose)``.

        ``keep`` optionally filters each record's ``(tokens, scores)``
        before insertion (the stopwords variant). Under
        ``index_backend="mmap"`` the pass lands in a write-once columnar
        file probed zero-copy through the mapping — build inserts are
        not charged to the memory budget (the data leaves RAM); the
        opened index charges its directory plus each posting list on
        first touch instead. ``dispose`` must run when probing is done
        (closes the mapping and removes a temp file).
        """
        if self.index_backend == "mmap":
            from repro.storage.mmap_index import JoinIndexBuilder

            builder = JoinIndexBuilder(self.index_path)
            for rid in range(len(dataset)):
                self._tick(counters)
                tokens = dataset[rid]
                scores = bound.cached_score_vector(rid)
                if keep is not None:
                    tokens, scores = keep(tokens, scores)
                builder.insert(rid, tokens, scores, bound.norm(rid))
            index = builder.finish(counters)
            return index, index.dispose
        index = ScoredInvertedIndex()
        for rid in range(len(dataset)):
            self._tick(counters)
            tokens = dataset[rid]
            scores = bound.cached_score_vector(rid)
            if keep is not None:
                tokens, scores = keep(tokens, scores)
            index.insert(rid, tokens, scores, bound.norm(rid), counters)
        # The build phase is over; freeze the columnar postings so the
        # probe phase provably cannot mutate shared lists.
        index.seal()
        return index, _noop_dispose

    # ------------------------------------------------------------------
    # Two-pass variants: basic / optmerge
    # ------------------------------------------------------------------

    def _run_two_pass(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        index, dispose = self._build_full_index(dataset, bound, counters)
        try:
            band = bound.band_filter()
            pairs: list[MatchPair] = []
            use_optmerge = self.variant == "optmerge"
            for _position, rid, replay in self._drive(
                range(len(dataset)), counters, pairs
            ):
                if replay:
                    continue
                counters.probes += 1
                lists = index.probe_lists(dataset[rid], bound.cached_score_vector(rid))
                if not lists:
                    continue
                norm_r = bound.norm(rid)
                threshold_of = _threshold_closure(bound, norm_r)
                accept = _band_accept(band, rid) if band is not None else None
                if use_optmerge:
                    index_threshold = bound.index_threshold(norm_r, index.min_norm)
                    candidates = self._merge_opt_lists(
                        lists, index_threshold, threshold_of, counters, accept
                    )
                else:
                    candidates = self._merge_lists(lists, threshold_of, counters, accept)
                for sid, _weight in candidates:
                    # The full index contains rid itself and yields each pair
                    # twice; emit once, in canonical orientation.
                    if sid < rid:
                        self._verify_pair(bound, sid, rid, counters, pairs)
            return pairs
        finally:
            dispose()

    # ------------------------------------------------------------------
    # Stopwords variant (§3.1)
    # ------------------------------------------------------------------

    def _run_stopwords(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        stopwords = self._select_stopwords(dataset, bound)
        counters.extra["stopwords"] = len(stopwords)

        def keep(tokens, scores):
            kept_tokens = []
            kept_scores = []
            for token, score in zip(tokens, scores):
                if token not in stopwords:
                    kept_tokens.append(token)
                    kept_scores.append(score)
            return kept_tokens, kept_scores

        index, dispose = self._build_full_index(dataset, bound, counters, keep=keep)
        try:
            band = bound.band_filter()
            pairs: list[MatchPair] = []
            for _position, rid, replay in self._drive(
                range(len(dataset)), counters, pairs
            ):
                if replay:
                    continue
                counters.probes += 1
                tokens = dataset[rid]
                scores = bound.cached_score_vector(rid)
                probe_tokens = []
                probe_scores = []
                stop_contribution = 0.0
                for token, score in zip(tokens, scores):
                    if token in stopwords:
                        # Assume, pessimistically, that the partner record
                        # shares the stopword at the maximum indexed score.
                        stop_contribution += score * stopwords[token]
                    else:
                        probe_tokens.append(token)
                        probe_scores.append(score)
                lists = index.probe_lists(probe_tokens, probe_scores)
                if not lists:
                    continue
                norm_r = bound.norm(rid)

                def threshold_of(sid: int, _n=norm_r, _cut=stop_contribution) -> float:
                    return bound.threshold(_n, bound.norm(sid)) - _cut

                accept = _band_accept(band, rid) if band is not None else None
                candidates = self._merge_lists(lists, threshold_of, counters, accept)
                for sid, _weight in candidates:
                    if sid < rid:
                        self._verify_pair(bound, sid, rid, counters, pairs)
            return pairs
        finally:
            dispose()

    def _select_stopwords(self, dataset: Dataset, bound: BoundPredicate) -> dict[int, float]:
        """Pick the highest-frequency words whose combined maximum
        contribution stays below the smallest possible pair threshold.

        Sound: a pair overlapping *only* on stopwords cannot reach its
        threshold, so every qualifying pair still shares a kept word.
        With unit weights and T-overlap this is exactly "the top T-1
        highest frequency words" of §3.1. Returns token -> max score.
        """
        max_score: dict[int, float] = {}
        min_norm = float("inf")
        for rid in range(len(dataset)):
            scores = bound.cached_score_vector(rid)
            for token, score in zip(dataset[rid], scores):
                if score > max_score.get(token, 0.0):
                    max_score[token] = score
            norm = bound.norm(rid)
            if norm < min_norm:
                min_norm = norm
        if not max_score:
            return {}
        min_threshold = bound.threshold(min_norm, min_norm) * self.stopword_budget_fraction
        by_frequency = sorted(
            dataset.frequency.items(), key=lambda item: (-item[1], item[0])
        )
        stopwords: dict[int, float] = {}
        budget = 0.0
        for token, _freq in by_frequency:
            contribution = max_score.get(token, 0.0) ** 2
            if budget + contribution >= min_threshold - WEIGHT_EPS:
                break
            budget += contribution
            stopwords[token] = max_score[token]
        return stopwords

    # ------------------------------------------------------------------
    # Online / sorted variants (§3.2, §3.3)
    # ------------------------------------------------------------------

    def _run_online(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        if self.variant == "sort":
            # §5.1.2: decreasing norm (== decreasing size for unit scores).
            order = sorted(range(len(dataset)), key=lambda rid: (-bound.norm(rid), rid))
        else:
            order = list(range(len(dataset)))
        band = bound.band_filter()
        # The index is keyed by *processing position* so posting lists
        # stay id-sorted even when records are processed out of RID order.
        index = ScoredInvertedIndex()
        pairs: list[MatchPair] = []
        for position, rid, replay in self._drive(order, counters, pairs):
            tokens = dataset[rid]
            scores = bound.cached_score_vector(rid)
            norm_r = bound.norm(rid)
            # On resume-replay the record is only re-inserted into the
            # index; its probe already ran (pairs restored from the
            # checkpoint).
            if not replay:
                counters.probes += 1
            lists = index.probe_lists(tokens, scores) if not replay else None
            if lists:

                def threshold_of(pos: int, _n=norm_r) -> float:
                    return bound.threshold(_n, bound.norm(order[pos]))

                index_threshold = bound.index_threshold(norm_r, index.min_norm)
                accept = None
                if band is not None:
                    keys = band.keys
                    radius = band.radius + 1e-12
                    key_r = keys[rid]

                    def accept(pos: int, _k=key_r, _rad=radius) -> bool:
                        return abs(keys[order[pos]] - _k) <= _rad

                candidates = self._merge_opt_lists(
                    lists, index_threshold, threshold_of, counters, accept
                )
                for pos, _weight in candidates:
                    sid = order[pos]
                    self._verify_pair(
                        bound, min(rid, sid), max(rid, sid), counters, pairs
                    )
            index.insert(position, tokens, scores, norm_r, counters)
        return pairs


def _noop_dispose() -> None:
    """Nothing to release for the in-memory index."""


def _threshold_closure(bound: BoundPredicate, norm_r: float):
    """entity id -> T(r, s), capturing the probe record's norm."""

    def threshold_of(sid: int) -> float:
        return bound.threshold(norm_r, bound.norm(sid))

    return threshold_of
