"""Naive O(n^2) join: the ground-truth oracle for every test.

Examines every record pair (restricted by the predicate's band filter
when one exists, which does not change the result — filters are sound)
and applies the same exact verification the optimized algorithms use, so
result equivalence is a meaningful end-to-end check.
"""

from __future__ import annotations

from repro.core.base import SetJoinAlgorithm
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.predicates.base import BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["NaiveJoin"]


class NaiveJoin(SetJoinAlgorithm):
    """Quadratic all-pairs verification."""

    name = "naive"

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        n = len(dataset)
        band = bound.band_filter()
        pairs: list[MatchPair] = []
        if band is None:
            for _position, rid_a, replay in self._drive(range(n), counters, pairs):
                if replay:
                    continue
                for rid_b in range(rid_a + 1, n):
                    self._verify_pair(bound, rid_a, rid_b, counters, pairs)
            return pairs
        # With a band filter, sort by filter key and only examine pairs
        # inside the band window (sound: the filter never rejects a true
        # match).
        order = sorted(range(n), key=lambda rid: band.keys[rid])
        radius = band.radius + 1e-12
        start = 0
        for pos_b, rid_b, replay in self._drive(order, counters, pairs):
            key_b = band.keys[rid_b]
            while start < pos_b and key_b - band.keys[order[start]] > radius:
                start += 1
            if replay:
                continue
            for pos_a in range(start, pos_b):
                rid_a = order[pos_a]
                self._verify_pair(
                    bound, min(rid_a, rid_b), max(rid_a, rid_b), counters, pairs
                )
        return pairs
