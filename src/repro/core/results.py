"""Join results: matched pairs plus instrumentation.

All algorithms emit pairs in canonical orientation ``rid_a < rid_b`` and
return a :class:`JoinResult` that carries the pairs, the work counters,
and wall-clock time — the three quantities the benchmark harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.counters import CostCounters

__all__ = ["JoinResult", "MatchPair"]


@dataclass(frozen=True, order=True)
class MatchPair:
    """One matched record pair.

    Self-join algorithms emit pairs in canonical orientation
    ``rid_a < rid_b`` (use :meth:`make`); for non-self joins ``rid_a`` is
    the left-side RID and ``rid_b`` the right-side RID, each in its own
    dataset's numbering.

    ``similarity`` is the predicate's natural measure: overlap weight for
    T-overlap, the Jaccard/Dice/cosine fraction, or the edit distance
    (where smaller is more similar).
    """

    rid_a: int
    rid_b: int
    similarity: float = 0.0

    @staticmethod
    def make(rid_x: int, rid_y: int, similarity: float) -> "MatchPair":
        """Build a canonical pair from RIDs in either order."""
        if rid_x < rid_y:
            return MatchPair(rid_x, rid_y, similarity)
        return MatchPair(rid_y, rid_x, similarity)


@dataclass
class JoinResult:
    """Output of one join execution.

    ``degraded_from`` / ``degradation_reason`` record graceful
    degradation: when a join running under a
    :class:`~repro.runtime.context.JoinContext` memory budget tripped
    the budget and was completed by the budget-respecting ClusterMem
    algorithm instead, ``degraded_from`` names the original algorithm
    (and ``algorithm`` keeps that requested name). The pair set is
    unaffected — every algorithm is exact.
    """

    pairs: list[MatchPair]
    algorithm: str
    predicate: str
    counters: CostCounters = field(default_factory=CostCounters)
    elapsed_seconds: float = 0.0
    degraded_from: str | None = None
    degradation_reason: str | None = None
    #: Algorithm-specific annotations that are *not* work counters:
    #: the approximate mode reports its resolved plan and sampled
    #: recall estimate here (``approx_*`` / ``recall_*`` keys). Unlike
    #: ``counters.extra`` these values are never summed across shards.
    extra: dict = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """Whether the join fell back to ClusterMem mid-run."""
        return self.degraded_from is not None

    def __len__(self) -> int:
        return len(self.pairs)

    def pair_set(self) -> set[tuple[int, int]]:
        """RID pairs as a set (the correctness-comparison currency)."""
        return {(p.rid_a, p.rid_b) for p in self.pairs}

    def sorted_pairs(self) -> list[MatchPair]:
        """Pairs in (rid_a, rid_b) order, for deterministic output."""
        return sorted(self.pairs, key=lambda p: (p.rid_a, p.rid_b))

    def __repr__(self) -> str:
        degraded = ", degraded=cluster-mem" if self.degraded else ""
        return (
            f"JoinResult(algorithm={self.algorithm!r}, predicate={self.predicate!r},"
            f" pairs={len(self.pairs)}, elapsed={self.elapsed_seconds:.3f}s{degraded})"
        )
