"""Common driver machinery shared by every join algorithm.

A :class:`SetJoinAlgorithm` performs an exact similarity self-join of a
:class:`~repro.core.records.Dataset` under a
:class:`~repro.predicates.SimilarityPredicate`. Candidate generation
differs per algorithm; the final decision for every emitted pair is
always :meth:`BoundPredicate.verify`, so all algorithms (including the
naive baseline) agree exactly on the output set.

``join_between`` implements the non-self join ("the extension to
non-self-joins is obvious", §2): index one side, probe with the other.

Runtime hardening lives here so every algorithm inherits it. ``join``
accepts an optional :class:`~repro.runtime.context.JoinContext`; the
:meth:`_drive` / :meth:`_tick` helpers run its record-granularity
checks (deadline, cancellation, memory budget) inside each algorithm's
scan loop, handle checkpoint writes and resume-replay, and — when the
memory budget trips under the default policy — degrade the join to the
budget-respecting ClusterMem algorithm instead of dying.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.core.accumulator import (
    ScoreAccumulator,
    accumulate_merge,
    accumulate_merge_opt,
    resolve_merge_backend,
    use_accumulator,
)
from repro.core.heap_merge import heap_merge
from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.merge_opt import merge_opt
from repro.core.records import Dataset
from repro.core.results import JoinResult, MatchPair
from repro.filters.bitmap import resolve_bitmap_filter
from repro.filters.pruner import BitmapPruner
from repro.predicates.base import WEIGHT_EPS, BoundPredicate, SimilarityPredicate
from repro.runtime.errors import JoinInterrupted, MemoryBudgetExceeded
from repro.utils.counters import CostCounters

__all__ = ["SetJoinAlgorithm"]


class SetJoinAlgorithm(ABC):
    """Base class: timing, binding, verification, non-self joins, and
    the hardened-runtime driver (deadline/cancel/memory checks,
    checkpoint/resume, graceful degradation)."""

    name: str = "abstract"

    #: Algorithms that structurally honour a memory budget (ClusterMem)
    #: set this True; the context then skips the runtime memory check,
    #: whose cumulative insert counters would misfire on them.
    respects_memory_budget: bool = False

    #: Bitmap candidate filter knob (:mod:`repro.filters`): ``None``/
    #: ``False`` off, ``True`` defaults, an int width, or a
    #: :class:`~repro.filters.BitmapFilterConfig`. Set via
    #: ``make_algorithm(..., bitmap_filter=...)`` so it flows through
    #: ``similarity_join`` and the parallel workers' algorithm specs
    #: without touching any ``join()`` signature. The filter is sound
    #: (see ``repro/filters/adapters.py``): the emitted pair set is
    #: identical with it on or off.
    bitmap_filter = None

    #: Merge-backend knob (:mod:`repro.core.accumulator`): ``"heap"``
    #: forces the classic frontier-heap merge, ``"accumulator"`` the
    #: ScanCount-style score accumulator, and ``"auto"`` (default)
    #: picks per probe from the lists' total entry count. Set via
    #: ``make_algorithm(..., merge_backend=...)`` — like
    #: ``bitmap_filter`` it is an instance attribute, so it flows
    #: through ``similarity_join``, the parallel workers' algorithm
    #: specs, and the CLI without touching ``join()`` signatures.
    #: Candidate sets are pair-for-pair identical across backends.
    merge_backend: str = "auto"

    #: Index-backend knob (:mod:`repro.storage.mmap_index`):
    #: ``"memory"`` (default) builds the in-RAM
    #: :class:`~repro.core.inverted_index.ScoredInvertedIndex`;
    #: ``"mmap"`` lands the build pass in a write-once columnar file and
    #: probes it zero-copy through the mapping, so resident memory is
    #: the token directory plus touched postings instead of the full
    #: index. Set via ``make_algorithm(..., index_backend=...)`` — the
    #: same instance-attribute pattern as ``bitmap_filter`` and
    #: ``merge_backend``, so it flows through ``similarity_join``, the
    #: parallel workers' algorithm specs, and the CLI unchanged. Only
    #: two-pass builds can use it (``join()`` raises a clear error
    #: otherwise); pairs are bit-identical across backends.
    index_backend: str = "memory"

    #: Optional explicit file path for the mapped index; ``None`` uses a
    #: ``mkstemp`` temp file removed when the join finishes.
    index_path: str | None = None

    # Per-run merge state: the resolved backend string and the dense
    # accumulator buffer, armed by join()/join_between() and shared by
    # every probe of one execution via _merge_lists/_merge_opt_lists.
    _merge_mode: str | None = None
    _accumulator: ScoreAccumulator | None = None

    # Shard window over the driven scan, set by set_shard_window() and
    # consumed by _drive(). Positions before the window are replayed
    # (state rebuilt, no pair emission, same as checkpoint replay);
    # positions past the window end the scan. The parallel engine gives
    # each worker a disjoint window, so the shard pair sets partition
    # the serial pair set exactly.
    _shard_lo: int = 0
    _shard_hi: int | None = None

    # Per-run driver state, installed by join() for the duration of one
    # execution and consumed by _drive()/_tick().
    _context = None
    _checkpointer = None
    _checkpoint_meta: dict | None = None
    _resume_position: int = -1
    _restored_pairs: list[MatchPair] = []
    _bitmap = None

    def join(
        self,
        dataset: Dataset,
        predicate: SimilarityPredicate,
        context=None,
    ) -> JoinResult:
        """Exact similarity self-join; pairs are canonical (a < b).

        Args:
            dataset: the tokenized records.
            predicate: the join condition.
            context: optional :class:`~repro.runtime.context.JoinContext`
                carrying a deadline, cancellation token, memory budget,
                and/or checkpointer. Interruptions raise the structured
                errors of :mod:`repro.runtime.errors`; with a
                checkpointer attached, progress is flushed first so the
                invocation can be resumed.
        """
        self._check_index_backend()
        bound = predicate.bind(dataset)
        counters = CostCounters()
        restored = self._install_runtime(dataset, predicate, context, counters)
        self._arm_merge_backend(len(dataset))
        config = resolve_bitmap_filter(self.bitmap_filter)
        if config is not None:
            self._bitmap = BitmapPruner.for_join(bound, config, counters)
        if context is not None:
            context.start()
        start = time.perf_counter()
        degraded_from = None
        degradation_reason = None
        try:
            try:
                pairs = restored + self._run(dataset, bound, counters)
            except MemoryBudgetExceeded as exc:
                if context is None or context.on_memory_exceeded != "degrade":
                    raise
                pairs = self._degraded_fallback(dataset, predicate, context, counters)
                degraded_from = self.name
                degradation_reason = str(exc)
        finally:
            self._uninstall_runtime()
        if context is not None and context.checkpointer is not None:
            context.checkpointer.clear()
        elapsed = time.perf_counter() - start
        counters.pairs_output = len(pairs)
        return JoinResult(
            pairs=pairs,
            algorithm=self.name,
            predicate=predicate.name,
            counters=counters,
            elapsed_seconds=elapsed,
            degraded_from=degraded_from,
            degradation_reason=degradation_reason,
        )

    @abstractmethod
    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        """Produce the verified match pairs."""

    def set_shard_window(self, lo: int, hi: int | None) -> None:
        """Restrict pair emission to scan positions ``[lo, hi)``.

        Positions before ``lo`` are processed in replay mode — all state
        (index inserts, cluster assignment) is rebuilt deterministically
        but no pairs are emitted; positions at or past ``hi`` are not
        scanned at all. Emitted pairs are exactly those the serial run
        emits at positions inside the window, so disjoint windows
        partition the serial pair set. Used by
        :func:`repro.parallel.parallel_join`; ``(0, None)`` restores the
        unsharded behaviour.
        """
        if lo < 0:
            raise ValueError(f"shard window start must be >= 0, got {lo}")
        if hi is not None and hi < lo:
            raise ValueError(f"shard window end {hi} precedes start {lo}")
        self._shard_lo = lo
        self._shard_hi = hi

    # ------------------------------------------------------------------
    # Hardened-runtime driver
    # ------------------------------------------------------------------

    def _install_runtime(
        self, dataset: Dataset, predicate, context, counters: CostCounters
    ) -> list[MatchPair]:
        """Arm the per-run driver state; returns pairs restored from a
        checkpoint (empty when starting fresh)."""
        self._context = context
        self._checkpointer = None
        self._checkpoint_meta = None
        self._resume_position = -1
        self._restored_pairs = []
        if context is None or context.checkpointer is None:
            return []
        from repro.runtime.checkpoint import dataset_fingerprint

        checkpointer = context.checkpointer
        meta = {
            "algorithm": self.name,
            "predicate": predicate.name,
            "fingerprint": dataset_fingerprint(dataset),
            "n_records": len(dataset),
        }
        self._checkpointer = checkpointer
        self._checkpoint_meta = meta
        state = checkpointer.load()
        if state is None:
            return []
        checkpointer.validate(state, **meta)
        self._resume_position = state.position
        self._restored_pairs = state.match_pairs()
        counters.merge(state.cost_counters())
        return list(self._restored_pairs)

    def _uninstall_runtime(self) -> None:
        self._context = None
        self._checkpointer = None
        self._checkpoint_meta = None
        self._resume_position = -1
        self._restored_pairs = []
        self._bitmap = None
        self._merge_mode = None
        self._accumulator = None

    def _tick(self, counters: CostCounters) -> None:
        """Record-granularity runtime check (no checkpoint handling).

        For state-building loops that emit no pairs (index construction,
        ClusterMem phase 1): an interruption here leaves any existing
        checkpoint untouched — replay is idempotent, so the previous
        checkpoint stays valid.
        """
        if self._context is not None:
            self._context.tick(
                counters, check_memory=not self.respects_memory_budget
            )

    def _drive(self, order, counters: CostCounters, pairs: list[MatchPair]):
        """The shared scan loop: yields ``(position, rid, replay)``.

        Wraps each algorithm's pair-emitting record loop with the full
        runtime protocol:

        * runs :meth:`_tick` before each record;
        * yields ``replay=True`` for positions already covered by a
          restored checkpoint — the algorithm must rebuild its state
          (index inserts, cluster assignment) for them but skip pair
          emission, which the checkpoint already holds;
        * checkpoints after every ``interval_records`` completed
          positions, and flushes a final checkpoint when a deadline,
          cancellation, or (strict-mode) memory trip interrupts the
          scan, so the invocation is resumable.

        ``pairs`` must be the same list object the algorithm appends
        emitted pairs to.
        """
        context = self._context
        checkpointer = self._checkpointer
        resume_position = self._resume_position
        shard_lo = self._shard_lo
        shard_hi = self._shard_hi
        for position, rid in enumerate(order):
            if shard_hi is not None and position >= shard_hi:
                return
            if context is not None:
                try:
                    context.tick(
                        counters, check_memory=not self.respects_memory_budget
                    )
                except (JoinInterrupted, MemoryBudgetExceeded):
                    self._flush_checkpoint(position - 1, counters, pairs)
                    raise
            replay = position <= resume_position or position < shard_lo
            yield position, rid, replay
            if (
                checkpointer is not None
                and not replay
                and checkpointer.due(position)
            ):
                self._flush_checkpoint(position, counters, pairs)

    def _flush_checkpoint(
        self, position: int, counters: CostCounters, pairs: list[MatchPair]
    ) -> None:
        """Persist progress through ``position`` (no-op when it would
        lose ground against the restored checkpoint)."""
        if self._checkpointer is None or position < 0:
            return
        if position <= self._resume_position:
            return  # interrupted mid-replay: the old checkpoint stands
        counters.checkpoint_writes += 1
        self._checkpointer.write(
            position=position,
            pairs=self._restored_pairs + pairs,
            counters=counters,
            **self._checkpoint_meta,
        )

    def _degraded_fallback(
        self, dataset: Dataset, predicate, context, counters: CostCounters
    ) -> list[MatchPair]:
        """Finish the join under the memory budget via ClusterMem.

        The partial run's pairs are discarded (ClusterMem re-derives the
        complete set exactly); its work counters are kept, so the final
        counters account for everything actually performed.
        """
        from repro.core.cluster_mem import ClusterMemJoin, MemoryBudget

        fallback = ClusterMemJoin(MemoryBudget(context.memory_budget_entries))
        fallback.bitmap_filter = self.bitmap_filter
        result = fallback.join(
            dataset, predicate, context=context.for_degraded_run()
        )
        counters.merge(result.counters)
        counters.extra["degradations"] = counters.extra.get("degradations", 0) + 1
        return result.pairs

    # ------------------------------------------------------------------
    # Index-backend dispatch
    # ------------------------------------------------------------------

    def _supports_index_backend(self, backend: str) -> bool:
        """Whether this algorithm can honour a non-default index backend.

        The mapped index is write-once, so only algorithms with a
        separate full build pass can use it; overriders (Probe-Count's
        two-pass variants) return True for ``"mmap"``.
        """
        return False

    def _check_index_backend(self) -> None:
        from repro.storage.mmap_index import resolve_index_backend

        backend = resolve_index_backend(self.index_backend)
        if backend != "memory" and not self._supports_index_backend(backend):
            raise ValueError(
                f"algorithm {self.name!r} does not support"
                f" index_backend={backend!r}: the write-once mapped index"
                " needs a two-pass build (use probe-count,"
                " probe-count-optmerge, or probe-count-stopwords)"
            )

    # ------------------------------------------------------------------
    # Merge-backend dispatch
    # ------------------------------------------------------------------

    def _arm_merge_backend(self, n_entities: int) -> None:
        """Resolve the knob and size the dense buffer for one execution.

        ``n_entities`` is the entity-id bound: record ids, processing
        positions and cluster ids are all below the record count, so
        one buffer of that size serves every probe of the join. Ids
        outside it (never the case for the built-in drivers) fall back
        to the sparse path inside the accumulator.
        """
        self._merge_mode = resolve_merge_backend(self.merge_backend)
        if self._merge_mode != "heap" and n_entities > 0:
            self._accumulator = ScoreAccumulator(n_entities)

    def _merge_mode_of(self) -> str:
        # Resolved at arm time; algorithms driven outside join() (unit
        # tests calling _run directly) resolve lazily and run sparse.
        mode = self._merge_mode
        if mode is None:
            mode = resolve_merge_backend(self.merge_backend)
        return mode

    def _merge_lists(self, lists, threshold_of, counters, accept=None):
        """Backend-dispatched ``heap_merge``-contract merge."""
        if use_accumulator(self._merge_mode_of(), lists):
            return accumulate_merge(
                lists, threshold_of, counters, accept, acc=self._accumulator
            )
        return heap_merge(lists, threshold_of, counters, accept)

    def _merge_opt_lists(
        self, lists, index_threshold, threshold_of, counters, accept=None
    ):
        """Backend-dispatched ``merge_opt``-contract merge."""
        if use_accumulator(self._merge_mode_of(), lists):
            return accumulate_merge_opt(
                lists, index_threshold, threshold_of, counters, accept,
                acc=self._accumulator,
            )
        return merge_opt(lists, index_threshold, threshold_of, counters, accept)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _verify_pair(
        self,
        bound: BoundPredicate,
        rid_a: int,
        rid_b: int,
        counters: CostCounters,
        out: list[MatchPair],
    ) -> bool:
        """Run exact verification and emit the pair if it matches.

        With the bitmap filter armed (``bitmap_filter=`` knob), pairs
        whose popcount weight cap provably cannot reach the threshold
        are rejected first; those count as ``bitmap_checks``/
        ``bitmap_rejects``, never as ``pairs_verified`` — that counter
        keeps meaning "exact verifications performed".

        When the bound predicate supports it, a 64-bit word-signature
        prefilter (Bloom-style OR of token bits) rejects pairs sharing
        no tokens without computing the full match weight — sound
        whenever the pair threshold is positive, because zero common
        tokens means zero match weight. ``pairs_verified`` counts the
        pair either way, so work counters stay comparable.
        """
        bitmap = self._bitmap
        if bitmap is not None and bitmap.rejects(rid_a, rid_b, counters):
            return False
        counters.pairs_verified += 1
        if (
            bound.use_signature_prefilter
            and not bound.signature(rid_a) & bound.signature(rid_b)
            and bound.threshold(bound.norm(rid_a), bound.norm(rid_b)) > WEIGHT_EPS
        ):
            extra = counters.extra
            extra["signature_skips"] = extra.get("signature_skips", 0) + 1
            return False
        ok, similarity = bound.verify(rid_a, rid_b)
        if ok:
            out.append(MatchPair.make(rid_a, rid_b, similarity))
        return ok

    def join_between(
        self,
        left: Dataset,
        right: Dataset,
        predicate: SimilarityPredicate,
        context=None,
    ) -> JoinResult:
        """Non-self join: index ``right``, probe with ``left``.

        Returned pairs use ``rid_a`` = left RID and ``rid_b`` = right RID
        (both in their own dataset's numbering; ``rid_a < rid_b`` is not
        enforced here since the id spaces differ).

        ``context`` enables deadline/cancellation/memory checks per
        probed record; checkpoint/resume is not supported here.
        """
        from repro.storage.mmap_index import resolve_index_backend

        if resolve_index_backend(self.index_backend) != "memory":
            raise ValueError(
                "join_between does not support a mapped index backend"
            )
        if left.vocabulary is not None and left.vocabulary is not right.vocabulary:
            raise ValueError(
                "join_between needs both datasets built over the same vocabulary"
                " object (pass vocabulary= when constructing the second one)"
            )
        combined_payloads = None
        if left.payloads is not None and right.payloads is not None:
            combined_payloads = list(left.payloads) + list(right.payloads)
        combined = Dataset(
            list(left.records) + list(right.records),
            vocabulary=left.vocabulary,
            payloads=combined_payloads,
        )
        bound = predicate.bind(combined)
        counters = CostCounters()
        self._context = context
        self._arm_merge_backend(len(combined))
        if context is not None:
            context.start()
        start = time.perf_counter()
        try:
            offset = len(left)
            index = ScoredInvertedIndex()
            for rid in range(offset, len(combined)):
                self._tick(counters)
                index.insert(
                    rid,
                    combined[rid],
                    bound.cached_score_vector(rid),
                    bound.norm(rid),
                    counters,
                )
            band = bound.band_filter()
            pairs: list[MatchPair] = []
            for rid in range(len(left)):
                self._tick(counters)
                counters.probes += 1
                lists = index.probe_lists(combined[rid], bound.cached_score_vector(rid))
                if not lists:
                    continue
                norm_r = bound.norm(rid)
                index_threshold = bound.index_threshold(norm_r, index.min_norm)
                accept = None
                if band is not None:
                    accept = _band_accept(band, rid)
                candidates = self._merge_opt_lists(
                    lists,
                    index_threshold,
                    lambda sid, _n=norm_r, _b=bound: _b.threshold(_n, _b.norm(sid)),
                    counters,
                    accept=accept,
                )
                for sid, _weight in candidates:
                    counters.pairs_verified += 1
                    ok, similarity = bound.verify(rid, sid)
                    if ok:
                        pairs.append(MatchPair(rid, sid - offset, similarity))
        finally:
            self._context = None
            self._merge_mode = None
            self._accumulator = None
        elapsed = time.perf_counter() - start
        counters.pairs_output = len(pairs)
        return JoinResult(
            pairs=pairs,
            algorithm=f"{self.name}/between",
            predicate=predicate.name,
            counters=counters,
            elapsed_seconds=elapsed,
        )


def _band_accept(band, rid):
    """Closure factory for the in-merge band filter."""
    keys = band.keys
    radius = band.radius + 1e-12
    key_r = keys[rid]

    def accept(sid: int) -> bool:
        return abs(keys[sid] - key_r) <= radius

    return accept
