"""Common driver machinery shared by every join algorithm.

A :class:`SetJoinAlgorithm` performs an exact similarity self-join of a
:class:`~repro.core.records.Dataset` under a
:class:`~repro.predicates.SimilarityPredicate`. Candidate generation
differs per algorithm; the final decision for every emitted pair is
always :meth:`BoundPredicate.verify`, so all algorithms (including the
naive baseline) agree exactly on the output set.

``join_between`` implements the non-self join ("the extension to
non-self-joins is obvious", §2): index one side, probe with the other.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.merge_opt import merge_opt
from repro.core.records import Dataset
from repro.core.results import JoinResult, MatchPair
from repro.predicates.base import BoundPredicate, SimilarityPredicate
from repro.utils.counters import CostCounters

__all__ = ["SetJoinAlgorithm"]


class SetJoinAlgorithm(ABC):
    """Base class: timing, binding, verification, non-self joins."""

    name: str = "abstract"

    def join(self, dataset: Dataset, predicate: SimilarityPredicate) -> JoinResult:
        """Exact similarity self-join; pairs are canonical (a < b)."""
        bound = predicate.bind(dataset)
        counters = CostCounters()
        start = time.perf_counter()
        pairs = self._run(dataset, bound, counters)
        elapsed = time.perf_counter() - start
        counters.pairs_output = len(pairs)
        return JoinResult(
            pairs=pairs,
            algorithm=self.name,
            predicate=predicate.name,
            counters=counters,
            elapsed_seconds=elapsed,
        )

    @abstractmethod
    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        """Produce the verified match pairs."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _verify_pair(
        bound: BoundPredicate,
        rid_a: int,
        rid_b: int,
        counters: CostCounters,
        out: list[MatchPair],
    ) -> bool:
        """Run exact verification and emit the pair if it matches."""
        counters.pairs_verified += 1
        ok, similarity = bound.verify(rid_a, rid_b)
        if ok:
            out.append(MatchPair.make(rid_a, rid_b, similarity))
        return ok

    def join_between(
        self, left: Dataset, right: Dataset, predicate: SimilarityPredicate
    ) -> JoinResult:
        """Non-self join: index ``right``, probe with ``left``.

        Returned pairs use ``rid_a`` = left RID and ``rid_b`` = right RID
        (both in their own dataset's numbering; ``rid_a < rid_b`` is not
        enforced here since the id spaces differ).
        """
        if left.vocabulary is not None and left.vocabulary is not right.vocabulary:
            raise ValueError(
                "join_between needs both datasets built over the same vocabulary"
                " object (pass vocabulary= when constructing the second one)"
            )
        combined_payloads = None
        if left.payloads is not None and right.payloads is not None:
            combined_payloads = list(left.payloads) + list(right.payloads)
        combined = Dataset(
            list(left.records) + list(right.records),
            vocabulary=left.vocabulary,
            payloads=combined_payloads,
        )
        bound = predicate.bind(combined)
        counters = CostCounters()
        start = time.perf_counter()
        offset = len(left)
        index = ScoredInvertedIndex()
        for rid in range(offset, len(combined)):
            index.insert(
                rid,
                combined[rid],
                bound.cached_score_vector(rid),
                bound.norm(rid),
                counters,
            )
        band = bound.band_filter()
        pairs: list[MatchPair] = []
        for rid in range(len(left)):
            counters.probes += 1
            lists = index.probe_lists(combined[rid], bound.cached_score_vector(rid))
            if not lists:
                continue
            norm_r = bound.norm(rid)
            index_threshold = bound.index_threshold(norm_r, index.min_norm)
            accept = None
            if band is not None:
                accept = _band_accept(band, rid)
            candidates = merge_opt(
                lists,
                index_threshold,
                lambda sid, _n=norm_r, _b=bound: _b.threshold(_n, _b.norm(sid)),
                counters,
                accept=accept,
            )
            for sid, _weight in candidates:
                counters.pairs_verified += 1
                ok, similarity = bound.verify(rid, sid)
                if ok:
                    pairs.append(MatchPair(rid, sid - offset, similarity))
        elapsed = time.perf_counter() - start
        counters.pairs_output = len(pairs)
        return JoinResult(
            pairs=pairs,
            algorithm=f"{self.name}/between",
            predicate=predicate.name,
            counters=counters,
            elapsed_seconds=elapsed,
        )


def _band_accept(band, rid):
    """Closure factory for the in-merge band filter."""
    keys = band.keys
    radius = band.radius + 1e-12
    key_r = keys[rid]

    def accept(sid: int) -> bool:
        return abs(keys[sid] - key_r) <= radius

    return accept
