"""Dynamic-threshold merge for the most-similar-cluster search (§4.1.1).

Probe-Cluster must simultaneously (a) find every cluster whose overlap
with the probing record reaches the join threshold ``T`` and (b) find the
*most similar* cluster even when its overlap is below ``T`` (to pick a
home cluster under limited memory). Running MergeOpt at threshold ``T``
would miss (b); running it at a tiny threshold would forfeit its pruning.

The paper's solution: start the probe with a low threshold and raise it
as matching clusters are found — "dynamic increases of thresholds can be
efficiently handled in MergeOpt because that just implies that some lists
would be removed from the heap and put in the direct search list".

Implementation of that list demotion: when the threshold rises, the
longest lists still in the heap whose cumulative maximum contribution
falls below the new threshold are *demoted* — their in-heap frontier
entry is consumed normally when popped but no successor is pushed, and
subsequent candidates probe them by doubling binary search from the
frontier instead. Per-candidate bookkeeping of which lists already
contributed via the heap prevents double counting.

The caller never sees a threshold lower than it has returned, and raises
are clamped so the threshold never exceeds the join threshold ``T`` —
hence every cluster with overlap >= T is still reported (§4.1.1: "each
subsequent cluster returned by MergeOpt will have an overlap either
greater than T or no less than the threshold of all previous clusters").
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.core.inverted_index import PostingList
from repro.predicates.base import WEIGHT_EPS
from repro.utils.counters import CostCounters
from repro.utils.search import gallop_search_from

__all__ = ["merge_dynamic"]


def merge_dynamic(
    lists: list[tuple[PostingList, float]],
    initial_threshold: float,
    threshold_cap: float,
    on_candidate: Callable[[int, float], float],
    counters: CostCounters,
    accept: Callable[[int], bool] | None = None,
) -> None:
    """Merge with a monotonically rising threshold.

    Args:
        lists: ``(posting_list, probe_score)`` probe matches.
        initial_threshold: starting threshold (e.g. ``0.2 * T``).
        threshold_cap: upper clamp for raises — the join threshold ``T``;
            candidates at or above it are always reported.
        on_candidate: called with ``(entity_id, weight)`` for every
            candidate whose completed weight reaches the current
            threshold; returns the (possibly raised) new threshold.
        counters: work counters to update.
        accept: optional id-level filter applied before heap insertion.
    """
    if not lists:
        return
    ordered = sorted(lists, key=lambda item: -len(item[0]))
    n_lists = len(ordered)
    cumulative: list[float] = []
    running = 0.0
    for plist, probe_score in ordered:
        running += probe_score * plist.max_score
        cumulative.append(running)

    threshold = min(initial_threshold, threshold_cap)
    k = _split_point(cumulative, threshold)
    # Per-list state. Lists [0, k) start in L; lists [k, n) start in S.
    search_from = [0] * n_lists  # L / demoted binary-search resume points
    frontiers = [0] * n_lists  # next-unpushed position for S lists
    demoted = [False] * n_lists

    heap: list[tuple[int, int]] = []
    for list_idx in range(k, n_lists):
        plist, _probe_score = ordered[list_idx]
        position = _first_accepted(plist, 0, accept)
        if position < len(plist.ids):
            heap.append((plist.ids[position], list_idx))
            frontiers[list_idx] = position + 1
            counters.heap_pushes += 1
        else:
            frontiers[list_idx] = position
    heapq.heapify(heap)

    while heap:
        current, list_idx = heapq.heappop(heap)
        counters.heap_pops += 1
        counters.list_items_touched += 1
        contributed = {list_idx}
        plist, probe_score = ordered[list_idx]
        weight = probe_score * plist.scores[frontiers[list_idx] - 1]
        if not demoted[list_idx]:
            _push_next(heap, ordered, list_idx, frontiers, accept, counters)
        while heap and heap[0][0] == current:
            _, list_idx = heapq.heappop(heap)
            counters.heap_pops += 1
            counters.list_items_touched += 1
            contributed.add(list_idx)
            plist, probe_score = ordered[list_idx]
            weight += probe_score * plist.scores[frontiers[list_idx] - 1]
            if not demoted[list_idx]:
                _push_next(heap, ordered, list_idx, frontiers, accept, counters)

        counters.candidates_checked += 1
        # Complete the weight by searching L and demoted lists,
        # smallest-first, with the early-termination bound.
        for i in range(k - 1, -1, -1):
            if i in contributed:
                continue
            if weight + cumulative[i] < threshold - WEIGHT_EPS:
                break
            plist, probe_score = ordered[i]
            counters.binary_searches += 1
            position = gallop_search_from(plist.ids, current, search_from[i])
            search_from[i] = position
            if position < len(plist.ids) and plist.ids[position] == current:
                weight += probe_score * plist.scores[position]

        if weight >= threshold - WEIGHT_EPS:
            new_threshold = on_candidate(current, weight)
            new_threshold = min(max(new_threshold, threshold), threshold_cap)
            if new_threshold > threshold + WEIGHT_EPS:
                threshold = new_threshold
                new_k = _split_point(cumulative, threshold)
                for i in range(k, new_k):
                    demoted[i] = True
                    search_from[i] = frontiers[i]
                k = max(k, new_k)


def _split_point(cumulative: list[float], threshold: float) -> int:
    """Largest prefix length with cumulative max contribution < threshold."""
    k = 0
    while k < len(cumulative) and cumulative[k] < threshold - WEIGHT_EPS:
        k += 1
    return k


def _first_accepted(
    plist: PostingList, position: int, accept: Callable[[int], bool] | None
) -> int:
    if accept is None:
        return position
    ids = plist.ids
    n = len(ids)
    while position < n and not accept(ids[position]):
        position += 1
    return position


def _push_next(
    heap: list[tuple[int, int]],
    ordered: list[tuple[PostingList, float]],
    list_idx: int,
    frontiers: list[int],
    accept: Callable[[int], bool] | None,
    counters: CostCounters,
) -> None:
    plist, _probe_score = ordered[list_idx]
    position = _first_accepted(plist, frontiers[list_idx], accept)
    if position < len(plist.ids):
        heapq.heappush(heap, (plist.ids[position], list_idx))
        counters.heap_pushes += 1
        frontiers[list_idx] = position + 1
    else:
        frontiers[list_idx] = position
