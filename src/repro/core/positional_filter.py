"""PPJoin+-style prefix/position/suffix filter stack.

The paper's threshold-sensitive merge inspired the prefix-filter line
(SSJoin, AllPairs, PPJoin, PPJoin+). :mod:`repro.core.prefix_filter`
stops at the basic prefix lemma; this algorithm adds the rest of the
stack, each layer a strictly tighter necessary condition on the
candidate before it reaches exact verification:

1. **Global ordering + prefix filter** — records canonicalized into
   the rarest-first rank order of :class:`~repro.core.token_order
   .TokenOrder`; only each record's prefix is indexed and probed.
2. **Length filter folded into the probe** — records are processed in
   ascending ``(size, rid)`` order, so posting lists carry
   non-decreasing sizes and the size bound ``T(r, s) <= |s|`` becomes
   one binary search per probed list (a prefix cut, not a scan).
3. **Position filter (PPJoin)** — postings carry ``(rid, position)``;
   on each prefix-token match the candidate's total overlap is upper-
   bounded by ``acc + 1 + min(remaining_r, remaining_s)``, and a
   candidate whose bound falls below the pair threshold is killed
   mid-scan (``candidate_rejections_position``), never reaching
   ``candidates_checked``.
4. **Suffix filter (PPJoin+)** — survivors whose prefix overlap alone
   does not already qualify get a divide-and-conquer Hamming-distance
   lower bound on their unmatched suffixes (recursion depth capped by
   ``suffix_max_depth``, recursions counted in
   ``extra["suffix_recursions"]``); a bound that caps the total
   overlap below the pair threshold rejects the candidate
   (``candidate_rejections_suffix``) without verification.

Soundness of the asymmetric prefixes: a record is indexed under the
prefix for ``t_index = ceil(T(|s|, |s|))`` — every later prober has
size >= |s| and T is non-decreasing, so ``t_index`` lower-bounds the
pair threshold of any pair s participates in as the indexed side. A
probe scans the (longer) prefix for ``t_probe = ceil(T(|r|, size_lo))``
where ``size_lo`` is the smallest *eligible* present size (one whose
required overlap fits inside it). Both are <= the true pair threshold,
and the prefix lemma holds for any such pair of relaxations, so every
qualifying pair that shares at least one token is generated. The one
caveat is shared with every index join in this package (including
``prefix-filter``): a pair with an *empty* intersection that still
satisfies the predicate (possible only for Hamming with ``|r| + |s| <=
k``) cannot surface from an inverted index; ``hamming_join`` brute-
forces that corner.

Every candidate that survives the stack is exactly verified by the
shared :meth:`~repro.core.base.SetJoinAlgorithm._verify_pair`, so the
emitted pairs are bit-identical to ``prefix-filter``/``naive`` — the
stack only changes how much work it takes to get there. The driver
protocol (deadlines, cancellation, checkpoint/resume, shard windows)
and the bitmap/merge-backend knobs are inherited from the shared base;
``merge_backend`` is accepted but has no effect here, since the stack
never merges posting lists (candidates accumulate one token at a
time).
"""

from __future__ import annotations

import math
from bisect import bisect_left

from repro.core.base import SetJoinAlgorithm
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.core.token_order import TokenOrder, ensure_unit_scores
from repro.predicates.base import WEIGHT_EPS, BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["PositionalFilterJoin"]


def _suffix_hamming_lb(x, xlo, xhi, y, ylo, yhi, depth, calls):
    """Lower bound on ``|x[xlo:xhi] Δ y[ylo:yhi]|`` (PPJoin+ suffix probe).

    Both slices are strictly increasing rank-id sequences. Pick the
    middle element ``w`` of the x-slice and locate it in the y-slice:
    every common element smaller than ``w`` lies in the left halves and
    every larger one in the right halves, so the symmetric difference
    decomposes exactly and the bound recurses on both sides (+1 when
    ``w`` itself is unmatched). At ``depth`` 0 the slice-length
    difference is the bound. ``calls[0]`` accumulates the recursion
    count for the ``suffix_recursions`` counter.
    """
    calls[0] += 1
    lx = xhi - xlo
    ly = yhi - ylo
    if lx == 0 or ly == 0:
        return lx + ly
    if depth <= 0:
        return lx - ly if lx >= ly else ly - lx
    xmid = xlo + (lx >> 1)
    w = x[xmid]
    pos = bisect_left(y, w, ylo, yhi)
    if pos < yhi and y[pos] == w:
        return _suffix_hamming_lb(
            x, xlo, xmid, y, ylo, pos, depth - 1, calls
        ) + _suffix_hamming_lb(x, xmid + 1, xhi, y, pos + 1, yhi, depth - 1, calls)
    return (
        1
        + _suffix_hamming_lb(x, xlo, xmid, y, ylo, pos, depth - 1, calls)
        + _suffix_hamming_lb(x, xmid + 1, xhi, y, pos, yhi, depth - 1, calls)
    )


class PositionalFilterJoin(SetJoinAlgorithm):
    """PPJoin+ filter stack on the global token ordering.

    Args:
        suffix_filter: apply the PPJoin+ suffix refinement to position-
            filter survivors (on by default; the position filter alone
            is already exact, just less selective).
        suffix_max_depth: recursion depth cap of the suffix bound.
            PPJoin+'s recommended 2 balances pruning against the cost
            of the probe itself; 0 degenerates to the plain
            length-difference bound.
    """

    name = "positional-filter"

    def __init__(self, suffix_filter: bool = True, suffix_max_depth: int = 2):
        if suffix_max_depth < 0:
            raise ValueError(
                f"suffix_max_depth must be >= 0, got {suffix_max_depth}"
            )
        self.suffix_filter = suffix_filter
        self.suffix_max_depth = suffix_max_depth

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        ensure_unit_scores(dataset, bound)
        n = len(dataset)
        if n == 0:
            return []
        canon = TokenOrder.for_dataset(dataset).canonicalize_all(dataset)
        sizes_of = [len(record) for record in canon]
        # Ascending (size, rid): every record probes before it is
        # inserted, so each pair is generated exactly once, at the
        # larger record's scan position; appends then carry
        # non-decreasing sizes, which is what makes the length filter a
        # bisect cut into each posting list.
        order = sorted(range(n), key=sizes_of.__getitem__)
        distinct_sizes = sorted(set(sizes_of))
        n_sizes = len(distinct_sizes)
        band = bound.band_filter()
        threshold = bound.threshold
        ceil = math.ceil
        do_suffix = self.suffix_filter
        suffix_depth = self.suffix_max_depth
        suffix_calls = [0]

        # token (rank id) -> parallel posting columns: partner sizes
        # (non-decreasing — the bisect key), rids, and the token's
        # position inside the partner's canonical record.
        index: dict[int, tuple[list[int], list[int], list[int]]] = {}
        index_get = index.get
        pairs: list[MatchPair] = []
        # Reused per probe (allocating fresh dicts per record was
        # measurable): candidate rid -> accumulated prefix overlap
        # (-1 = killed by the position filter), candidate rid -> last
        # matched (probe_pos, partner_pos), and partner size -> required
        # overlap for the current prober.
        acc: dict[int, int] = {}
        acc_get = acc.get
        last_match: dict[int, tuple[int, int]] = {}
        required_of: dict[int, int] = {}
        required_get = required_of.get
        # Monotone cursor into distinct_sizes: the smallest size whose
        # required overlap still fits inside it. Eligibility only
        # shrinks as the prober grows (T is non-decreasing in the probe
        # norm), so the cursor never moves backwards.
        size_lo_idx = 0

        for _position, rid, replay in self._drive(order, counters, pairs):
            record = canon[rid]
            size = sizes_of[rid]
            norm_r = float(size)
            # Index-side threshold: the loosest pair threshold this
            # record can see from any later (same-or-larger) prober.
            t_index = ceil(threshold(norm_r, norm_r) - WEIGHT_EPS)
            if t_index < 1:
                t_index = 1

            if not replay:
                counters.probes += 1
                while size_lo_idx < n_sizes:
                    partner = distinct_sizes[size_lo_idx]
                    t_partner = ceil(threshold(norm_r, float(partner)) - WEIGHT_EPS)
                    if (1 if t_partner < 1 else t_partner) <= partner:
                        break
                    size_lo_idx += 1
                if size_lo_idx < n_sizes:
                    size_lo = distinct_sizes[size_lo_idx]
                else:
                    size_lo = size + 1  # nothing indexed can match
                if size_lo <= size:
                    self._probe(
                        bound,
                        rid,
                        record,
                        size,
                        size_lo,
                        index_get,
                        acc,
                        acc_get,
                        last_match,
                        required_of,
                        required_get,
                        canon,
                        sizes_of,
                        band,
                        do_suffix,
                        suffix_depth,
                        suffix_calls,
                        counters,
                        pairs,
                    )

            # Insert the (shorter) index prefix; a record whose own
            # symmetric threshold exceeds its size cannot match any
            # later prober either, so it is not indexed at all.
            if t_index <= size:
                prefix_length = size - t_index + 1
                for position in range(prefix_length):
                    entry = index_get(record[position])
                    if entry is None:
                        index[record[position]] = entry = ([], [], [])
                    entry[0].append(size)
                    entry[1].append(rid)
                    entry[2].append(position)
                counters.index_entries += prefix_length

        if suffix_calls[0]:
            extra = counters.extra
            extra["suffix_recursions"] = (
                extra.get("suffix_recursions", 0) + suffix_calls[0]
            )
        return pairs

    def _probe(
        self,
        bound,
        rid,
        record,
        size,
        size_lo,
        index_get,
        acc,
        acc_get,
        last_match,
        required_of,
        required_get,
        canon,
        sizes_of,
        band,
        do_suffix,
        suffix_depth,
        suffix_calls,
        counters,
        pairs,
    ) -> None:
        """One record's probe: scan, position-filter, suffix-filter, verify."""
        norm_r = float(size)
        threshold = bound.threshold
        ceil = math.ceil
        # Probe-side threshold: the loosest pair threshold against any
        # eligible indexed partner — attained at the smallest eligible
        # size because T is non-decreasing in the partner norm.
        t_probe = ceil(threshold(norm_r, float(size_lo)) - WEIGHT_EPS)
        if t_probe < 1:
            t_probe = 1
        prefix_length = size - t_probe + 1

        acc.clear()
        last_match.clear()
        required_of.clear()
        touched = 0
        searches = 0
        position_kills = 0
        for i in range(prefix_length):
            entry = index_get(record[i])
            if entry is None:
                continue
            post_sizes, post_rids, post_positions = entry
            count = len(post_rids)
            cut = bisect_left(post_sizes, size_lo)
            searches += 1
            touched += count - cut
            remaining_r = size - i - 1
            for k in range(cut, count):
                sid = post_rids[k]
                overlap = acc_get(sid, 0)
                if overlap < 0:
                    continue
                size_s = post_sizes[k]
                required = required_get(size_s)
                if required is None:
                    required = ceil(threshold(norm_r, float(size_s)) - WEIGHT_EPS)
                    if required < 1:
                        required = 1
                    required_of[size_s] = required
                j = post_positions[k]
                remaining_s = size_s - j - 1
                upper = overlap + 1 + (
                    remaining_r if remaining_r < remaining_s else remaining_s
                )
                if upper < required:
                    acc[sid] = -1
                    position_kills += 1
                else:
                    acc[sid] = overlap + 1
                    last_match[sid] = (i, j)
        counters.binary_searches += searches
        counters.list_items_touched += touched
        counters.candidate_rejections_position += position_kills

        if band is not None:
            band_keys = band.keys
            radius = band.radius + 1e-12
            key_r = band_keys[rid]
        for sid, overlap in acc.items():
            if overlap <= 0:
                continue
            counters.candidates_checked += 1
            if band is not None and abs(band_keys[sid] - key_r) > radius:
                continue
            size_s = sizes_of[sid]
            required = required_of[size_s]
            if do_suffix and overlap < required:
                i_last, j_last = last_match[sid]
                other = canon[sid]
                suffix_r = size - i_last - 1
                suffix_s = size_s - j_last - 1
                distance = _suffix_hamming_lb(
                    record, i_last + 1, size,
                    other, j_last + 1, size_s,
                    suffix_depth, suffix_calls,
                )
                if overlap + ((suffix_r + suffix_s - distance) >> 1) < required:
                    counters.candidate_rejections_suffix += 1
                    continue
            if sid < rid:
                self._verify_pair(bound, sid, rid, counters, pairs)
            else:
                self._verify_pair(bound, rid, sid, counters, pairs)
