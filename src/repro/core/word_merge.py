"""Word-merged index compression — the paper's discarded option (§4.1).

§4.1 lists two ways to compress the inverted index: (1) group together
words with overlapping record lists, or (2) group together records with
overlapping words. The paper implements (1) with MinHash signatures on
each word's RID list, observes that "the larger lists did not overlap
enough" and that "the error in merging unrelated large word lists leads
to bad partitioning decisions causing overall performance to
deteriorate", and drops it in favour of (2).

We reproduce option (1) faithfully so its failure can be measured (see
``benchmarks/bench_ablation.py``):

* Words whose RID-list MinHash signatures agree on >= k*p slots are
  merged into *superwords*.
* A record maps to its multiset of superwords; the superword score is
  the multiplicity (how many of the record's words map there).
* Because distinct shared words can collapse into one shared superword,
  the superword match weight ``sum(mult_r * mult_s)`` is an *upper
  bound* on the true shared-word count (``min(a,b) <= a*b`` for counts
  >= 1), so running the T-overlap join over superwords yields a
  candidate superset; exact verification on the original records keeps
  the join exact.

Restriction: unweighted overlap-style predicates only (the candidate
bound argument needs unit word scores).
"""

from __future__ import annotations

import time

from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.merge_opt import merge_opt
from repro.core.records import Dataset
from repro.core.results import JoinResult, MatchPair
from repro.core.token_order import ensure_unit_scores
from repro.mining.minhash import compact_groups
from repro.predicates.base import BoundPredicate, SimilarityPredicate
from repro.utils.counters import CostCounters

__all__ = ["WordMergedIndexJoin", "merge_words"]


def merge_words(
    dataset: Dataset, k: int = 16, p: float = 0.9, seed: int = 0
) -> dict[int, int]:
    """Map each token to its superword id via RID-list MinHash merging."""
    tokens = sorted(dataset.frequency)
    rid_lists: dict[int, list[int]] = {token: [] for token in tokens}
    for rid, record in enumerate(dataset.records):
        for token in record:
            rid_lists[token].append(rid)
    clusters = compact_groups([rid_lists[token] for token in tokens], k=k, p=p, seed=seed)
    mapping: dict[int, int] = {}
    for superword, members in enumerate(clusters):
        for member in members:
            mapping[tokens[member]] = superword
    return mapping


class WordMergedIndexJoin:
    """T-overlap join over a word-merged (compressed) index.

    Exact (candidates verified on the original records), but expected to
    be slow — this class exists to measure the paper's negative result.

    Args:
        minhash_k / minhash_p / seed: word-merging parameters.
    """

    name = "word-merged-index"

    def __init__(self, minhash_k: int = 16, minhash_p: float = 0.9, seed: int = 0):
        self.minhash_k = minhash_k
        self.minhash_p = minhash_p
        self.seed = seed

    def join(self, dataset: Dataset, predicate: SimilarityPredicate) -> JoinResult:
        bound = predicate.bind(dataset)
        self._check_unit_scores(dataset, bound)
        counters = CostCounters()
        start = time.perf_counter()
        mapping = merge_words(
            dataset, k=self.minhash_k, p=self.minhash_p, seed=self.seed
        )
        n_superwords = len(set(mapping.values()))
        counters.extra["words"] = len(mapping)
        counters.extra["superwords"] = n_superwords

        # Superword multiset per record: (sorted superword ids, counts).
        compressed: list[tuple[tuple[int, ...], tuple[float, ...]]] = []
        for record in dataset.records:
            counts: dict[int, int] = {}
            for token in record:
                superword = mapping[token]
                counts[superword] = counts.get(superword, 0) + 1
            ordered = tuple(sorted(counts))
            compressed.append((ordered, tuple(float(counts[s]) for s in ordered)))

        index = ScoredInvertedIndex()
        pairs: list[MatchPair] = []
        for rid, (supertokens, multiplicities) in enumerate(compressed):
            counters.probes += 1
            lists = index.probe_lists(supertokens, multiplicities)
            if lists:
                norm_r = bound.norm(rid)

                def threshold_of(sid: int, _n=norm_r) -> float:
                    return bound.threshold(_n, bound.norm(sid))

                index_threshold = bound.index_threshold(norm_r, index.min_norm)
                for sid, _weight in merge_opt(
                    lists, index_threshold, threshold_of, counters
                ):
                    # The superword weight only upper-bounds the true
                    # overlap: verify on the original records.
                    self._verify(bound, sid, rid, counters, pairs)
            index.insert(rid, supertokens, multiplicities, bound.norm(rid), counters)
        counters.pairs_output = len(pairs)
        return JoinResult(
            pairs=pairs,
            algorithm=self.name,
            predicate=predicate.name,
            counters=counters,
            elapsed_seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _check_unit_scores(dataset: Dataset, bound: BoundPredicate) -> None:
        ensure_unit_scores(dataset, bound, what="word-merged join")

    @staticmethod
    def _verify(bound, rid_a, rid_b, counters, pairs) -> None:
        counters.pairs_verified += 1
        ok, similarity = bound.verify(rid_a, rid_b)
        if ok:
            pairs.append(MatchPair.make(rid_a, rid_b, similarity))
