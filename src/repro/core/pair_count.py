"""Pair-Count join (paper §2.2) and its threshold optimization (§3.1).

For every posting list, generate all RID pairs it implies and aggregate
each pair's total matched weight in a hash table; finally keep pairs at
or above their threshold. This is the unnested self-join + group-by plan
of Gravano et al. Its fatal flaw — reproduced here and measured by the
``peak_pair_table`` counter — is the memory needed for all distinct
pairs.

The §3.1 optimization mirrors MergeOpt: pairs are *not* generated from
the longest lists ``L`` (whose combined maximum contribution is below the
smallest possible threshold); candidate pairs from the short lists are
completed by binary-searching both RIDs in each ``L`` list, terminating
early on cumulative weights.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.base import SetJoinAlgorithm
from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.predicates.base import WEIGHT_EPS, BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["PairCountJoin", "PairTableOverflow"]


class PairTableOverflow(RuntimeError):
    """Raised when the aggregation table exceeds the configured limit.

    Models the paper's observation that Pair-Count runs out of memory
    ("even at 20,000 records the number of record pairs it generates does
    not fit in one gigabyte of main memory").
    """

    def __init__(self, n_pairs: int, limit: int):
        super().__init__(
            f"pair aggregation table reached {n_pairs} entries (limit {limit})"
        )
        self.n_pairs = n_pairs
        self.limit = limit


class PairCountJoin(SetJoinAlgorithm):
    """RID-pair generation + hash aggregation (§2.2).

    Args:
        optimized: apply the §3.1 threshold optimization (skip the
            longest lists, verify into them by binary search).
        pair_limit: optional cap on the aggregation table size; exceeding
            it raises :class:`PairTableOverflow`. Mimics a memory budget.
    """

    def __init__(self, optimized: bool = True, pair_limit: int | None = None):
        self.optimized = optimized
        self.pair_limit = pair_limit
        self.name = "pair-count-optmerge" if optimized else "pair-count"

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        index = ScoredInvertedIndex()
        for rid in range(len(dataset)):
            self._tick(counters)
            index.insert(
                rid, dataset[rid], bound.cached_score_vector(rid), bound.norm(rid), counters
            )
        # Order lists by decreasing length; with the optimization the
        # maximal prefix L below the smallest possible threshold is
        # skipped during generation.
        lists = sorted(
            ((index.get(token), token) for token in index.tokens()),
            key=lambda item: -len(item[0]),
        )
        cumulative: list[float] = []
        running = 0.0
        for plist, _token in lists:
            running += plist.max_score * plist.max_score
            cumulative.append(running)
        min_threshold = bound.threshold(index.min_norm, index.min_norm)
        k = 0
        if self.optimized:
            while k < len(lists) and cumulative[k] < min_threshold - WEIGHT_EPS:
                k += 1
        counters.extra["skipped_lists"] = k

        table: dict[tuple[int, int], float] = {}
        for plist, _token in lists[k:]:
            # Per-list runtime check: the memory budget sees the growing
            # aggregation table through peak_pair_table (the paper's
            # memory bottleneck for this algorithm), so a budgeted
            # context degrades to ClusterMem right when Pair-Count
            # starts to blow up.
            self._tick(counters)
            ids = plist.ids
            scores = plist.scores
            n = len(ids)
            for i in range(n):
                rid_i = ids[i]
                score_i = scores[i]
                for j in range(i + 1, n):
                    key = (rid_i, ids[j])
                    counters.pairs_generated += 1
                    weight = table.get(key)
                    if weight is None:
                        table[key] = score_i * scores[j]
                    else:
                        table[key] = weight + score_i * scores[j]
            if len(table) > counters.peak_pair_table:
                counters.peak_pair_table = len(table)
            if self.pair_limit is not None and len(table) > self.pair_limit:
                raise PairTableOverflow(len(table), self.pair_limit)

        large = lists[:k]
        pairs: list[MatchPair] = []
        for (rid_a, rid_b), weight in table.items():
            counters.candidates_checked += 1
            if counters.candidates_checked % 512 == 0:
                self._tick(counters)
            pair_threshold = bound.threshold(bound.norm(rid_a), bound.norm(rid_b))
            if self.optimized:
                # Complete the weight from the skipped long lists,
                # smallest-first, with early termination (§3.1).
                for i in range(k - 1, -1, -1):
                    if weight + cumulative[i] < pair_threshold - WEIGHT_EPS:
                        break
                    plist, _token = large[i]
                    weight += _pair_contribution(plist, rid_a, rid_b, counters)
            if weight >= pair_threshold - WEIGHT_EPS:
                self._verify_pair(bound, rid_a, rid_b, counters, pairs)
        return pairs


def _pair_contribution(plist, rid_a: int, rid_b: int, counters: CostCounters) -> float:
    """score(w, a) * score(w, b) if both RIDs are in the list, else 0."""
    counters.binary_searches += 2
    ids = plist.ids
    pos_a = bisect_left(ids, rid_a)
    if pos_a >= len(ids) or ids[pos_a] != rid_a:
        return 0.0
    pos_b = bisect_left(ids, rid_b, pos_a + 1)
    if pos_b >= len(ids) or ids[pos_b] != rid_b:
        return 0.0
    return plist.scores[pos_a] * plist.scores[pos_b]
