"""Prefix-filter join — the successor technique, as a comparison point.

This paper's threshold-sensitive merge directly inspired the
prefix-filtering line of set-similarity joins (Chaudhuri et al.'s
SSJoin, Bayardo et al.'s AllPairs, Xiao et al.'s PPJoin). The key
lemma: order the token universe canonically (rarest first); if
``|r ∩ s| >= t`` then the first ``|r| - t + 1`` tokens of ``r`` and the
first ``|s| - t + 1`` tokens of ``s`` (in that order) must share a
token. Indexing only prefixes makes posting lists short where MergeOpt
instead *skips* long lists.

Implementation notes:

* Online (probe before insert), like §3.2.
* Per-record prefix lengths use the sound per-record bound
  ``t_r = T(r, minS)`` — the same index-level threshold bound the
  MergeOpt engines use — so any predicate with unit scores and a
  monotone threshold (overlap, Jaccard, Dice, Hamming,
  overlap-coefficient) is supported; every candidate is exactly
  verified.
* The predicate's band filter is applied before verification.

The accompanying benchmark pits this against MergeOpt on the paper's
workloads — a comparison the paper itself predates.
"""

from __future__ import annotations

import math

from repro.core.base import SetJoinAlgorithm
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.predicates.base import WEIGHT_EPS, BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["PrefixFilterJoin"]


class PrefixFilterJoin(SetJoinAlgorithm):
    """AllPairs-style prefix-filtered join (unit-score predicates)."""

    name = "prefix-filter"

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        self._check_unit_scores(dataset, bound)
        if len(dataset) == 0:
            return []
        # Canonical order: ascending document frequency, rarest first.
        frequency = dataset.frequency
        rank = {
            token: position
            for position, token in enumerate(
                sorted(frequency, key=lambda t: (frequency[t], t))
            )
        }
        ordered_records = [
            sorted(record, key=rank.__getitem__) for record in dataset.records
        ]
        min_norm = min((bound.norm(rid) for rid in range(len(dataset))), default=0.0)
        band = bound.band_filter()

        index: dict[int, list[int]] = {}
        index_get = index.get
        pairs: list[MatchPair] = []
        # One candidate set for the whole scan, cleared per record:
        # allocating a fresh set per probe was measurable on large
        # corpora (this loop runs once per record).
        candidates: set[int] = set()
        candidates_update = candidates.update
        for rid, ordered in enumerate(ordered_records):
            counters.probes += 1
            size = len(ordered)
            threshold_floor = bound.index_threshold(bound.norm(rid), min_norm)
            # Records whose minimum possible pair threshold exceeds their
            # size can never match anything.
            if threshold_floor > size + WEIGHT_EPS:
                continue
            t = max(1, math.ceil(threshold_floor - WEIGHT_EPS))
            prefix_length = size - t + 1
            prefix = ordered[:prefix_length]

            candidates.clear()
            touched = 0
            for token in prefix:
                plist = index_get(token)
                if plist is not None:
                    touched += len(plist)
                    candidates_update(plist)
            counters.list_items_touched += touched
            counters.candidates_checked += len(candidates)
            key_r = None
            if band is not None:
                key_r = band.keys[rid]
                radius = band.radius + 1e-12
            for sid in sorted(candidates):
                if band is not None and abs(band.keys[sid] - key_r) > radius:
                    continue
                self._verify_pair(bound, sid, rid, counters, pairs)

            for token in prefix:
                index.setdefault(token, []).append(rid)
            counters.index_entries += prefix_length
        return pairs

    @staticmethod
    def _check_unit_scores(dataset: Dataset, bound: BoundPredicate) -> None:
        if not bound.record_independent_scores:
            raise ValueError("prefix filtering here supports unit-score predicates only")
        for rid in range(min(len(dataset), 5)):
            if any(score != 1.0 for score in bound.cached_score_vector(rid)):
                raise ValueError(
                    "prefix filtering here supports unit-score predicates only"
                )
