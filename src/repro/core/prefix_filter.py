"""Prefix-filter join — the successor technique, as a comparison point.

This paper's threshold-sensitive merge directly inspired the
prefix-filtering line of set-similarity joins (Chaudhuri et al.'s
SSJoin, Bayardo et al.'s AllPairs, Xiao et al.'s PPJoin). The key
lemma: order the token universe canonically (rarest first); if
``|r ∩ s| >= t`` then the first ``|r| - t + 1`` tokens of ``r`` and the
first ``|s| - t + 1`` tokens of ``s`` (in that order) must share a
token. Indexing only prefixes makes posting lists short where MergeOpt
instead *skips* long lists.

Implementation notes:

* Online (probe before insert), like §3.2, driven through the shared
  runtime loop, so deadlines, cancellation, checkpoint/resume, and
  shard windows all work here.
* The global ordering and record canonicalization come from
  :class:`~repro.core.token_order.TokenOrder` (shared with the full
  PPJoin+ stack of :mod:`repro.core.positional_filter`).
* Per-record prefix lengths use the sound per-record bound
  ``t_r = T(r, minS)`` — the same index-level threshold bound the
  MergeOpt engines use — so any predicate with unit scores and a
  monotone threshold (overlap, Jaccard, Dice, Hamming,
  overlap-coefficient) is supported; every candidate is exactly
  verified.
* Candidates accumulate in an insertion-ordered dict and are probed in
  that order: first-insertion order is a pure function of the posting
  lists, so emission order stays deterministic (serial, resumed, and
  sharded runs agree) without the per-probe ``sorted()`` the first
  version paid for.
* The predicate's band filter is applied before verification.

The accompanying benchmark pits this against MergeOpt and the full
positional stack on the paper's workloads — a comparison the paper
itself predates.
"""

from __future__ import annotations

import math

from repro.core.base import SetJoinAlgorithm
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.core.token_order import TokenOrder, ensure_unit_scores
from repro.predicates.base import WEIGHT_EPS, BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["PrefixFilterJoin"]


class PrefixFilterJoin(SetJoinAlgorithm):
    """AllPairs-style prefix-filtered join (unit-score predicates)."""

    name = "prefix-filter"

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        ensure_unit_scores(dataset, bound)
        if len(dataset) == 0:
            return []
        ordered_records = TokenOrder.for_dataset(dataset).canonicalize_all(dataset)
        min_norm = min((bound.norm(rid) for rid in range(len(dataset))), default=0.0)
        band = bound.band_filter()

        index: dict[int, list[int]] = {}
        index_get = index.get
        pairs: list[MatchPair] = []
        # One candidate dict for the whole scan, cleared per record:
        # allocating fresh containers per probe was measurable on large
        # corpora (this loop runs once per record).
        candidates: dict[int, None] = {}
        candidates_update = candidates.update
        fromkeys = dict.fromkeys
        for _position, rid, replay in self._drive(
            range(len(dataset)), counters, pairs
        ):
            if not replay:
                counters.probes += 1
            ordered = ordered_records[rid]
            size = len(ordered)
            threshold_floor = bound.index_threshold(bound.norm(rid), min_norm)
            # Records whose minimum possible pair threshold exceeds their
            # size can never match anything.
            if threshold_floor > size + WEIGHT_EPS:
                continue
            t = max(1, math.ceil(threshold_floor - WEIGHT_EPS))
            prefix_length = size - t + 1
            prefix = ordered[:prefix_length]

            # Replay (checkpoint resume / shard warm-up) rebuilds the
            # index only; the probe's pairs are already accounted for.
            if not replay:
                candidates.clear()
                touched = 0
                for token in prefix:
                    plist = index_get(token)
                    if plist is not None:
                        touched += len(plist)
                        candidates_update(fromkeys(plist))
                counters.list_items_touched += touched
                counters.candidates_checked += len(candidates)
                key_r = None
                if band is not None:
                    key_r = band.keys[rid]
                    radius = band.radius + 1e-12
                for sid in candidates:
                    if band is not None and abs(band.keys[sid] - key_r) > radius:
                        continue
                    self._verify_pair(bound, sid, rid, counters, pairs)

            for token in prefix:
                index.setdefault(token, []).append(rid)
            counters.index_entries += prefix_length
        return pairs
