"""Deduplication convenience layer (the paper's motivating application).

"Applications like data cleaning and data integration extensively rely
on such joins for deduplicating records with text fields like names and
addresses." This module turns a similarity join's pair list into
duplicate *groups* (connected components) and wraps the common
text-in / groups-out workflow into one call.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.core.join import similarity_join
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.predicates.base import SimilarityPredicate

__all__ = ["connected_components", "dedupe_texts"]


def connected_components(
    pairs: Iterable[MatchPair | tuple[int, int]], n_records: int
) -> list[list[int]]:
    """Group records into duplicate clusters via union-find.

    Args:
        pairs: matched pairs (MatchPair or plain (rid_a, rid_b)).
        n_records: total number of records.

    Returns one sorted RID list per group of size >= 2, ordered by the
    group's smallest member. Singletons are omitted.
    """
    parent = list(range(n_records))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for pair in pairs:
        if isinstance(pair, MatchPair):
            rid_a, rid_b = pair.rid_a, pair.rid_b
        else:
            rid_a, rid_b = pair
        root_a, root_b = find(rid_a), find(rid_b)
        if root_a != root_b:
            parent[max(root_a, root_b)] = min(root_a, root_b)

    groups: dict[int, list[int]] = {}
    for rid in range(n_records):
        groups.setdefault(find(rid), []).append(rid)
    return [
        sorted(members)
        for _root, members in sorted(groups.items())
        if len(members) >= 2
    ]


def dedupe_texts(
    texts: Sequence[str],
    predicate: SimilarityPredicate,
    tokenizer: Callable[[str], Sequence[str]],
    algorithm: str = "probe-cluster",
    **kwargs,
) -> list[list[int]]:
    """One-call text deduplication.

    Tokenizes, joins, and returns duplicate groups (lists of indexes
    into ``texts``), each sorted, groups ordered by smallest member.

    Example::

        groups = dedupe_texts(citations, JaccardPredicate(0.8), tokenize_words)
    """
    dataset = Dataset.from_texts(texts, tokenizer)
    result = similarity_join(dataset, predicate, algorithm=algorithm, **kwargs)
    return connected_components(result.pairs, len(texts))
