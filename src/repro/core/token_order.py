"""Global rarest-first token ordering for the prefix-filter stack.

The prefix-filter family (SSJoin, AllPairs, PPJoin/PPJoin+) needs every
record rewritten into one *canonical global order* — ascending document
frequency, rarest token first — so that "the first k tokens of r" is a
meaningful prefix to index and probe. This module computes that
ordering once per join and canonicalizes records into tuples of dense
*rank ids* (position of the token in the global order), which makes
every downstream operation integer-friendly:

* index keys are small dense ints,
* a record's canonical form is strictly increasing, so binary search
  works directly on it (the PPJoin+ suffix filter relies on this),
* comparing two tokens' global order is integer comparison.

Shared by :class:`~repro.core.prefix_filter.PrefixFilterJoin` and
:class:`~repro.core.positional_filter.PositionalFilterJoin`; kept free
of per-algorithm state so one instance could be reused across joins
over the same dataset.
"""

from __future__ import annotations

from repro.core.records import Dataset

__all__ = ["TokenOrder", "ensure_unit_scores"]


class TokenOrder:
    """The canonical global token ordering of one dataset.

    ``rank[token]`` is the token's position in the ordering: ascending
    document frequency, ties broken by token id so the order is total
    and reproducible. Rarest first — rare tokens give short posting
    lists, which is the entire point of indexing only prefixes.
    """

    __slots__ = ("rank",)

    def __init__(self, rank: dict[int, int]):
        self.rank = rank

    @classmethod
    def for_dataset(cls, dataset: Dataset) -> "TokenOrder":
        """Build the ordering from the dataset's document frequencies."""
        frequency = dataset.frequency
        return cls(
            {
                token: position
                for position, token in enumerate(
                    sorted(frequency, key=lambda t: (frequency[t], t))
                )
            }
        )

    def canonicalize(self, record) -> tuple[int, ...]:
        """One record as a strictly increasing tuple of rank ids."""
        rank = self.rank
        return tuple(sorted(rank[token] for token in record))

    def canonicalize_all(self, dataset: Dataset) -> list[tuple[int, ...]]:
        """Every record of ``dataset``, canonicalized (indexed by rid)."""
        rank = self.rank
        return [
            tuple(sorted(rank[token] for token in record))
            for record in dataset.records
        ]


def ensure_unit_scores(
    dataset: Dataset, bound, what: str = "prefix filtering here"
) -> None:
    """Raise unless every token score in the dataset is exactly 1.0.

    The prefix lemma counts *tokens*, so prefix/position/suffix
    filtering is sound only for unit-score predicates (overlap,
    Jaccard, Dice, overlap-coefficient, Hamming, and the q-gram bound
    of edit distance). Predicates declare this statically via the
    ``unit_scores`` attribute of
    :class:`~repro.predicates.base.BoundPredicate`; for predicates that
    don't (custom subclasses, weighted variants), every record is
    scanned — sampling a fixed head of the dataset would silently
    accept a corpus whose non-unit scores start past the sample.

    ``what`` names the rejecting component in the error message; other
    unit-score-only consumers (compressed join, disk index, word merge)
    share this check.
    """
    if not bound.record_independent_scores:
        raise ValueError(f"{what} supports unit-score predicates only")
    if getattr(bound, "unit_scores", False):
        return
    for rid in range(len(dataset)):
        if any(score != 1.0 for score in bound.cached_score_vector(rid)):
            raise ValueError(f"{what} supports unit-score predicates only")
