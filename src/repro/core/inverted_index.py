"""Scored inverted index (paper §2.1, generalized per §5.1.1).

Maps each word to the list of entities (record ids, or cluster ids for
Probe-Cluster) containing it, together with the entity's score for that
word. Entities must be inserted in increasing id order so every posting
list stays id-sorted — the property the heap merge and the doubling
binary search rely on.

Posting storage is columnar: ids live in an ``array('q')`` and scores
in a parallel ``array('d')``. Compared to lists of boxed ints/floats
this is ~6x more compact, keeps each column contiguous for the merge
loops (and the score-accumulator backend's batch scans), and slices
cheaply. Both columns still support the ``Sequence`` protocol, so the
heap merge, the galloping binary search, and ``bisect`` work unchanged.

Per §5.1.1 the index incrementally maintains, for each word ``w``, the
maximum score ``score(w, I) = max_s score(w, s)`` (Eq. 3), and globally
the minimum entity norm ``minS = min_s ||s||`` used to bound the
threshold ``T(r, I) = T(r, minS)``.
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_left
from collections.abc import Iterable, Sequence

from repro.utils.counters import CostCounters

__all__ = ["PostingList", "ScoredInvertedIndex"]


class PostingList:
    """Id-sorted entities containing one word, with per-entity scores.

    Columnar: ``ids`` is an ``array('q')`` and ``scores`` an
    ``array('d')``, kept index-aligned. A list can be :meth:`seal`-ed
    into a frozen view once its build phase is over; sealed lists
    reject further mutation, which is what makes a built index safe to
    share across probe threads and snapshot without copying.
    """

    __slots__ = ("ids", "scores", "max_score", "sealed")

    def __init__(self):
        self.ids: array = array("q")
        self.scores: array = array("d")
        self.max_score: float = 0.0
        self.sealed: bool = False

    def __len__(self) -> int:
        return len(self.ids)

    def seal(self) -> "PostingList":
        """Freeze the list: any further ``append``/``insert_sorted``
        raises. Idempotent; returns self for chaining."""
        self.sealed = True
        return self

    def append(self, entity_id: int, score: float) -> None:
        if self.sealed:
            raise ValueError("posting list is sealed; no further inserts")
        if self.ids and entity_id <= self.ids[-1]:
            raise ValueError(
                f"entities must be inserted in increasing id order"
                f" (got {entity_id} after {self.ids[-1]})"
            )
        self.ids.append(entity_id)
        self.scores.append(score)
        if score > self.max_score:
            self.max_score = score

    def insert_sorted(self, entity_id: int, score: float) -> bool:
        """Insert (or score-raise) an entity keeping the list id-sorted.

        Needed by the cluster-level index, where an old cluster can gain
        a new word after younger clusters already hold it. If the entity
        is present, its score is raised to the max (the §5.1.3 cluster
        summary semantics).

        Returns True when a **new** entry was inserted, False when an
        existing entry was (possibly) score-raised. Callers mutating a
        list owned by a :class:`ScoredInvertedIndex` must bump its
        ``n_entries`` by exactly the number of True returns —
        ``ScoredInvertedIndex.audit_n_entries`` checks the invariant.
        """
        if self.sealed:
            raise ValueError("posting list is sealed; no further inserts")
        position = bisect_left(self.ids, entity_id)
        inserted = False
        if position < len(self.ids) and self.ids[position] == entity_id:
            if score > self.scores[position]:
                self.scores[position] = score
        else:
            self.ids.insert(position, entity_id)
            self.scores.insert(position, score)
            inserted = True
        if score > self.max_score:
            self.max_score = score
        return inserted


class ScoredInvertedIndex:
    """Word -> posting-list index with the §5.1.1 incremental statistics."""

    def __init__(self):
        self._postings: dict[int, PostingList] = {}
        self.min_norm: float = math.inf
        self.n_entries: int = 0
        self.n_entities: int = 0

    def __len__(self) -> int:
        """Number of distinct indexed words."""
        return len(self._postings)

    def __contains__(self, token: int) -> bool:
        return token in self._postings

    def get(self, token: int) -> PostingList | None:
        return self._postings.get(token)

    def get_or_create(self, token: int) -> PostingList:
        """Posting list for ``token``, created empty if absent.

        Callers mutating the list directly must keep ``n_entries`` in
        step: ``insert_sorted`` returns True for each genuinely new
        entry, and exactly those must bump ``n_entries`` (see
        ``ClusterSet.assign``). :meth:`audit_n_entries` verifies the
        bookkeeping.
        """
        plist = self._postings.get(token)
        if plist is None:
            plist = PostingList()
            self._postings[token] = plist
        return plist

    def tokens(self) -> Iterable[int]:
        return self._postings.keys()

    def seal(self) -> "ScoredInvertedIndex":
        """Freeze every posting list (see :meth:`PostingList.seal`).

        Call once the build phase is over; probing never mutates, so a
        sealed index is safe to share read-only. Returns self.
        """
        for plist in self._postings.values():
            plist.sealed = True
        return self

    def audit_n_entries(self) -> int:
        """Assert ``n_entries`` matches the actual posting entry count.

        Catches drift from callers that mutate posting lists through
        ``get_or_create``/``insert_sorted`` without the required
        bookkeeping. Returns the (verified) entry count.
        """
        actual = sum(len(plist) for plist in self._postings.values())
        if actual != self.n_entries:
            raise AssertionError(
                f"n_entries drift: recorded {self.n_entries},"
                f" posting lists hold {actual} entries"
            )
        return actual

    def insert(
        self,
        entity_id: int,
        tokens: Sequence[int],
        scores: Sequence[float],
        norm: float,
        counters: CostCounters | None = None,
    ) -> None:
        """Insert one entity under all its words.

        ``norm`` is the entity's ``||s||`` (Eq. 1); for clusters, callers
        pass the cluster summary ``||C|| = min over members`` (§5.1.3).
        """
        postings = self._postings
        for token, score in zip(tokens, scores):
            plist = postings.get(token)
            if plist is None:
                plist = PostingList()
                postings[token] = plist
            plist.append(entity_id, score)
        self.n_entries += len(tokens)
        self.n_entities += 1
        if norm < self.min_norm:
            self.min_norm = norm
        if counters is not None:
            counters.index_entries += len(tokens)

    def add_entity_tokens(
        self,
        entity_id: int,
        tokens: Sequence[int],
        scores: Sequence[float],
        counters: CostCounters | None = None,
    ) -> None:
        """Append extra words for an existing entity (cluster growth).

        Used by Probe-Cluster when a record joins a cluster and brings
        new words (§3.4 / §4 step 3). The entity must still be the
        largest id in each touched posting list **or** already present;
        words whose list already ends with this entity get their score
        raised to the max (the §5.1.3 cluster summary
        ``score(w, C) = max over members``).
        """
        postings = self._postings
        added = 0
        for token, score in zip(tokens, scores):
            plist = postings.get(token)
            if plist is None:
                plist = PostingList()
                postings[token] = plist
            if plist.ids and plist.ids[-1] == entity_id:
                if score > plist.scores[-1]:
                    plist.scores[-1] = score
                    if score > plist.max_score:
                        plist.max_score = score
            else:
                plist.append(entity_id, score)
                added += 1
        self.n_entries += added
        if counters is not None:
            counters.index_entries += added

    def update_min_norm(self, norm: float) -> None:
        """Lower the index-wide minimum norm (cluster summaries shrink)."""
        if norm < self.min_norm:
            self.min_norm = norm

    def probe_lists(
        self, tokens: Sequence[int], probe_scores: Sequence[float]
    ) -> list[tuple[PostingList, float]]:
        """Posting lists matching the probe record's words.

        Returns ``(posting_list, probe_score)`` for each probe word that
        exists in the index, skipping zero-score words.
        """
        out = []
        postings = self._postings
        for token, probe_score in zip(tokens, probe_scores):
            if probe_score == 0.0:
                continue
            plist = postings.get(token)
            if plist is not None and len(plist) > 0:
                out.append((plist, probe_score))
        return out
