"""Top-k most-similar-pairs join (extension).

The paper's related work (§6) discusses Cohen's top-r similar-pairs
problem and notes that MergeOpt's "early termination and split
strategies ... bear resemblance to the A* search" used there. This
module closes the loop: the general framework makes top-k a small
extension of the threshold join, because a *rising* threshold is
exactly what the framework's monotone machinery supports.

Strategy: run the online probe (single pass, MergeOpt per probe) while
maintaining the best ``k`` pairs seen so far. Once ``k`` pairs are
known, the predicate's fraction is ratcheted up to the current k-th
best similarity, which immediately tightens ``T(r, s)``, ``T(r, I)``
and the band filter of every subsequent probe. Raising the threshold
to an already-achieved similarity can never lose a better pair, so the
returned pairs are exactly the top k.

Supported predicates: any whose strength is a single fraction/threshold
parameter that the natural similarity is compared against — Jaccard,
cosine, Dice, overlap coefficient, and plain overlap.
"""

from __future__ import annotations

import heapq
import time

from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.merge_opt import merge_opt
from repro.core.records import Dataset
from repro.core.results import JoinResult, MatchPair
from repro.predicates.base import SimilarityPredicate
from repro.utils.counters import CostCounters

__all__ = ["TopKJoin"]


class TopKJoin:
    """Exact top-k most similar pairs under a rising-threshold probe.

    Args:
        k: number of pairs to return (fewer if the data has fewer
            pairs above ``floor``).
        predicate_factory: callable mapping a threshold value to a
            :class:`SimilarityPredicate` — e.g. ``JaccardPredicate`` or
            ``lambda f: CosinePredicate(f)``.
        floor: the initial (weakest) threshold; pairs below it are never
            considered. A higher floor is faster but may return fewer
            than ``k`` pairs.
        higher_is_better: False for distance-like measures.
    """

    name = "top-k"

    def __init__(
        self,
        k: int,
        predicate_factory,
        floor: float,
        higher_is_better: bool = True,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not higher_is_better:
            raise NotImplementedError(
                "distance-like (lower-is-better) measures are not supported;"
                " use a similarity predicate"
            )
        self.k = k
        self.predicate_factory = predicate_factory
        self.floor = floor

    def join(self, dataset: Dataset, predicate: SimilarityPredicate | None = None) -> JoinResult:
        """Return the top-k pairs (as a JoinResult sorted best-first).

        ``predicate`` is ignored (present for interface compatibility);
        the predicate is built from ``predicate_factory``.
        """
        counters = CostCounters()
        start = time.perf_counter()
        current = self.floor
        bound = self.predicate_factory(current).bind(dataset)
        # Min-heap of (similarity, rid_a, rid_b): the worst of the best
        # k pairs sits on top.
        best: list[tuple[float, int, int]] = []

        order = sorted(range(len(dataset)), key=lambda rid: (-bound.norm(rid), rid))
        index = ScoredInvertedIndex()
        band = bound.band_filter()
        for position, rid in enumerate(order):
            tokens = dataset[rid]
            scores = bound.cached_score_vector(rid)
            norm_r = bound.norm(rid)
            counters.probes += 1
            lists = index.probe_lists(tokens, scores)
            if lists:

                def threshold_of(pos: int, _n=norm_r) -> float:
                    return bound.threshold(_n, bound.norm(order[pos]))

                accept = None
                if band is not None:
                    keys = band.keys
                    radius = band.radius + 1e-12
                    key_r = keys[rid]

                    def accept(pos: int) -> bool:
                        return abs(keys[order[pos]] - key_r) <= radius

                index_threshold = bound.index_threshold(norm_r, index.min_norm)
                for pos, _weight in merge_opt(
                    lists, index_threshold, threshold_of, counters, accept
                ):
                    sid = order[pos]
                    counters.pairs_verified += 1
                    ok, similarity = bound.verify(min(rid, sid), max(rid, sid))
                    if not ok:
                        continue
                    entry = (similarity, min(rid, sid), max(rid, sid))
                    if len(best) < self.k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
                    if len(best) == self.k and best[0][0] > current:
                        # Ratchet: tighten the predicate to the k-th best.
                        current = best[0][0]
                        bound = self._retighten(bound, current)
                        band = bound.band_filter()
            index.insert(position, tokens, scores, norm_r, counters)

        pairs = [
            MatchPair(rid_a, rid_b, similarity)
            for similarity, rid_a, rid_b in sorted(best, reverse=True)
        ]
        counters.pairs_output = len(pairs)
        return JoinResult(
            pairs=pairs,
            algorithm=f"top-{self.k}",
            predicate=self.predicate_factory(self.floor).name,
            counters=counters,
            elapsed_seconds=time.perf_counter() - start,
        )

    def _retighten(self, old_bound, new_threshold: float):
        """Rebind at the tighter threshold, keeping cached score state."""
        new_bound = self.predicate_factory(new_threshold).bind(old_bound.dataset)
        # Score vectors and norms are threshold-independent; reuse them.
        new_bound._score_vectors = old_bound._score_vectors
        new_bound._norms = old_bound._norms
        new_bound._score_maps = old_bound._score_maps
        return new_bound
