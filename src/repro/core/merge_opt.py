"""MergeOpt: threshold-sensitive list merge (paper §3.1 Algorithm 1,
generalized form §5.1.1 Algorithm 3).

Given the posting lists matching a probe record, sorted by decreasing
length, the algorithm picks the largest prefix ``L`` whose cumulative
maximum contribution stays below the index-level threshold bound
``T(r, I)``. Records appearing *only* in ``L`` lists cannot reach the
threshold, so only the remaining (short) lists ``S`` are heap-merged.
Each candidate popped from the heap is then completed by doubling binary
searches into the ``L`` lists in increasing size order, terminating early
once even full membership in the remaining ``L`` lists cannot reach the
candidate-specific threshold ``T(r, m)`` (Algorithm 3 step 9 uses this
tighter bound).

On skewed real-life data the few longest lists carry most of the merge
cost, so skipping them yields the paper's 5–100x speedups.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.core.inverted_index import PostingList
from repro.predicates.base import WEIGHT_EPS
from repro.utils.counters import CostCounters
from repro.utils.search import gallop_search_from

__all__ = ["merge_opt", "split_lists"]


def split_lists(
    lists: list[tuple[PostingList, float]], index_threshold: float
) -> tuple[list[tuple[PostingList, float]], list[float], int]:
    """Order lists by decreasing length and find the L/S split point.

    Returns ``(ordered_lists, cumulative_weights, k)`` where
    ``ordered_lists[:k]`` is ``L`` (skipped from the heap merge) and
    ``cumulative_weights[i]`` is the §3.1 ``cumulativeWt`` — the maximum
    total contribution of lists ``0..i``.
    """
    ordered = sorted(lists, key=lambda item: -len(item[0]))
    cumulative: list[float] = []
    running = 0.0
    for plist, probe_score in ordered:
        running += probe_score * plist.max_score
        cumulative.append(running)
    k = 0
    while k < len(ordered) and cumulative[k] < index_threshold - WEIGHT_EPS:
        k += 1
    return ordered, cumulative, k


def merge_opt(
    lists: list[tuple[PostingList, float]],
    index_threshold: float,
    threshold_of: Callable[[int], float],
    counters: CostCounters,
    accept: Callable[[int], bool] | None = None,
) -> list[tuple[int, float]]:
    """Threshold-optimized merge; same contract as ``heap_merge``.

    Args:
        lists: ``(posting_list, probe_score)`` probe matches.
        index_threshold: ``T(r, I)``, the smallest possible pair threshold
            against any indexed entity (§5.1.1).
        threshold_of: entity id -> exact pair threshold ``T(r, s)``.
        counters: work counters to update.
        accept: optional id-level filter applied before heap insertion
            (the §5 "apply filter(r, n) before pushing" step) and to the
            final candidates.

    Returns ``(entity_id, weight)`` candidates in increasing id order.
    """
    if not lists:
        return []
    ordered, cumulative, k = split_lists(lists, index_threshold)
    large = ordered[:k]
    small = ordered[k:]
    # Per-L-list search frontiers: candidates arrive in increasing id
    # order, so each binary search can resume where the last one ended.
    search_from = [0] * k

    heap: list[tuple[int, int]] = []
    frontiers = [0] * len(small)
    for list_idx, (plist, _probe_score) in enumerate(small):
        position = _first_accepted(plist, 0, accept)
        if position < len(plist.ids):
            heap.append((plist.ids[position], list_idx))
            frontiers[list_idx] = position + 1
            counters.heap_pushes += 1
        else:
            frontiers[list_idx] = position
    heapq.heapify(heap)

    candidates: list[tuple[int, float]] = []
    while heap:
        current, list_idx = heapq.heappop(heap)
        counters.heap_pops += 1
        counters.list_items_touched += 1
        plist, probe_score = small[list_idx]
        weight = probe_score * plist.scores[frontiers[list_idx] - 1]
        _push_next(heap, small, list_idx, frontiers, accept, counters)
        while heap and heap[0][0] == current:
            _, list_idx = heapq.heappop(heap)
            counters.heap_pops += 1
            counters.list_items_touched += 1
            plist, probe_score = small[list_idx]
            weight += probe_score * plist.scores[frontiers[list_idx] - 1]
            _push_next(heap, small, list_idx, frontiers, accept, counters)

        counters.candidates_checked += 1
        pair_threshold = threshold_of(current)
        # Algorithm 1 steps 8-11: search L lists smallest-first, bailing
        # out when even full membership in the rest cannot reach T(r, m).
        for i in range(k - 1, -1, -1):
            if weight + cumulative[i] < pair_threshold - WEIGHT_EPS:
                break
            plist, probe_score = large[i]
            counters.binary_searches += 1
            position = gallop_search_from(plist.ids, current, search_from[i])
            search_from[i] = position
            if position < len(plist.ids) and plist.ids[position] == current:
                weight += probe_score * plist.scores[position]
        if weight >= pair_threshold - WEIGHT_EPS:
            candidates.append((current, weight))
    return candidates


def _first_accepted(
    plist: PostingList, position: int, accept: Callable[[int], bool] | None
) -> int:
    if accept is None:
        return position
    ids = plist.ids
    n = len(ids)
    while position < n and not accept(ids[position]):
        position += 1
    return position


def _push_next(
    heap: list[tuple[int, int]],
    small: list[tuple[PostingList, float]],
    list_idx: int,
    frontiers: list[int],
    accept: Callable[[int], bool] | None,
    counters: CostCounters,
) -> None:
    plist, _probe_score = small[list_idx]
    position = _first_accepted(plist, frontiers[list_idx], accept)
    if position < len(plist.ids):
        heapq.heappush(heap, (plist.ids[position], list_idx))
        counters.heap_pushes += 1
        frontiers[list_idx] = position + 1
    else:
        frontiers[list_idx] = position
