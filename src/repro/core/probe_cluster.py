"""Probe-Cluster: the paper's final in-memory algorithm (§3.4, §4.1.1).

Builds on the online, pre-sorted Probe-Count by clustering related
records inside the index: posting lists point at disjoint *clusters* of
records rather than individual records, shrinking the lists that the
merge has to process when the data contains many high-overlap records.

Per scanned record ``r``:

1. Probe the cluster-level index with MergeOpt at the join threshold —
   "we perform the usual probe-merge operation over the index and get
   back a list of clusters C(r) each of whose union of words have T
   overlap with r".
2. For each cluster in ``C(r)``, probe that cluster's private
   record-level index with MergeOpt and emit verified pairs (singleton
   clusters are verified directly).
3. Assign ``r`` to the most similar cluster (similarity = overlap /
   union, the §4.1.1 ratio "that prevents large clusters from getting
   too large too fast") if it is similar enough and not full; otherwise
   open a new cluster. Update the cluster-level index with the words
   ``r`` contributes.

The lower, dynamically-raised home-search threshold of §4.1.1 — needed
when memory pressure forces records into clusters below the join
threshold — lives in :class:`~repro.core.cluster_mem.ClusterMemJoin`.
"""

from __future__ import annotations

from repro.core.base import SetJoinAlgorithm
from repro.core.clusters import Cluster, ClusterSet
from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.predicates.base import BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["ProbeClusterJoin"]


class ProbeClusterJoin(SetJoinAlgorithm):
    """Online clustered probe join (§3.4).

    Args:
        sort: pre-sort records by decreasing norm (§3.3/§5.1.2); the
            paper's final algorithm includes this.
        home_similarity: minimum overlap/union ratio for joining an
            existing cluster instead of opening a new one (the paper
            derives its value from a target records-per-cluster estimate;
            it is a free parameter here).
        max_cluster_records: optional cap ``NR`` on records per cluster.
        max_clusters: optional cap ``Ng`` on the number of clusters; when
            reached, records are force-assigned to the best (or smallest)
            cluster. Unlimited by default.
    """

    def __init__(
        self,
        sort: bool = True,
        home_similarity: float = 0.5,
        max_cluster_records: int | None = None,
        max_clusters: int | None = None,
    ):
        if not 0.0 <= home_similarity <= 1.0:
            raise ValueError(
                f"home_similarity must be in [0, 1], got {home_similarity}"
            )
        self.sort = sort
        self.home_similarity = home_similarity
        self.max_cluster_records = max_cluster_records
        self.max_clusters = max_clusters
        self.name = "probe-cluster"
        #: populated by the last join: rid -> cluster id (inspection).
        self.last_assignment: dict[int, int] = {}

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        if self.sort:
            order = sorted(range(len(dataset)), key=lambda rid: (-bound.norm(rid), rid))
        else:
            order = list(range(len(dataset)))
        band = bound.band_filter()
        clusters = ClusterSet()
        pairs: list[MatchPair] = []
        self.last_assignment = {}

        for position, rid, replay in self._drive(order, counters, pairs):
            tokens = dataset[rid]
            scores = bound.cached_score_vector(rid)
            norm_r = bound.norm(rid)
            if not replay:
                counters.probes += 1
            # The cluster probe must run even on resume-replay: the home
            # assignment below depends on it and rebuilds the cluster
            # state deterministically. Only the pair-emitting fine joins
            # are skipped (their pairs were restored from the checkpoint).
            join_clusters, home = self._probe_clusters(
                clusters, tokens, scores, norm_r, bound, counters
            )
            if not replay:
                for cid in join_clusters:
                    self._fine_join(
                        clusters[cid], rid, tokens, scores, norm_r, bound, band,
                        order, counters, pairs,
                    )
            target = self._assign_home(
                clusters, home, position, rid, tokens, scores, norm_r, counters
            )
            self._maintain_fine_index(
                target, dataset, bound, position, rid, tokens, scores, norm_r, counters
            )
        return pairs

    @staticmethod
    def _maintain_fine_index(
        cluster: Cluster,
        dataset: Dataset,
        bound: BoundPredicate,
        position: int,
        rid: int,
        tokens: tuple[int, ...],
        scores: tuple[float, ...],
        norm_r: float,
        counters: CostCounters,
    ) -> None:
        """Lazy per-cluster record index: built at the second member.

        Singleton clusters are fine-joined by direct verification, so
        indexing them would be wasted work; the index materializes when
        a cluster first grows to two members.
        """
        if len(cluster) == 1:
            return
        if cluster.index is None:
            cluster.index = ScoredInvertedIndex()
            first_position = cluster.positions[0]
            first_rid = cluster.rids[0]
            cluster.index.insert(
                first_position,
                dataset[first_rid],
                bound.cached_score_vector(first_rid),
                bound.norm(first_rid),
                counters,
            )
        cluster.index.insert(position, tokens, scores, norm_r, counters)

    # ------------------------------------------------------------------

    def _probe_clusters(
        self,
        clusters: ClusterSet,
        tokens: tuple[int, ...],
        scores: tuple[float, ...],
        norm_r: float,
        bound: BoundPredicate,
        counters: CostCounters,
    ) -> tuple[list[int], tuple[int, float] | None]:
        """One dynamic probe: (J(r), best home candidate).

        The home candidate is ``(cid, similarity)`` or None.
        """
        if not clusters.clusters:
            return [], None
        lists = clusters.index.probe_lists(tokens, scores)
        if not lists:
            return [], None
        # §3.4: one MergeOpt probe at the join threshold returns every
        # cluster C(r) whose word union has T overlap with r; the home
        # cluster is chosen among those by similarity. (The lower,
        # dynamically-raised home-search threshold belongs to the
        # limited-memory variant, §4.1.1 — see ClusterMemJoin.)
        join_threshold = bound.index_threshold(norm_r, clusters.index.min_norm)
        candidates = self._merge_opt_lists(
            lists,
            join_threshold,
            lambda cid: bound.threshold(norm_r, clusters.cluster_norm(cid)),
            counters,
        )
        nr_cap = self.max_cluster_records
        joins: list[int] = []
        best_cid = -1
        best_similarity = -1.0
        for cid, weight in candidates:
            joins.append(cid)
            cluster = clusters[cid]
            if nr_cap is None or len(cluster) < nr_cap:
                union = norm_r + cluster.union_norm - weight
                similarity = weight / union if union > 0 else 0.0
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_cid = cid
        home = (best_cid, best_similarity) if best_cid >= 0 else None
        return joins, home

    def _fine_join(
        self,
        cluster: Cluster,
        rid: int,
        tokens: tuple[int, ...],
        scores: tuple[float, ...],
        norm_r: float,
        bound: BoundPredicate,
        band,
        order: list[int],
        counters: CostCounters,
        pairs: list[MatchPair],
    ) -> None:
        """Exact record-level probe inside one matching cluster."""
        counters.cluster_probes += 1
        if len(cluster) == 1:
            # Singleton cluster: the cluster-level match IS the record
            # match; verify directly instead of probing a 1-record index.
            sid = cluster.rids[0]
            self._verify_pair(bound, min(rid, sid), max(rid, sid), counters, pairs)
            return
        assert cluster.index is not None
        lists = cluster.index.probe_lists(tokens, scores)
        if not lists:
            return

        def threshold_of(pos: int) -> float:
            return bound.threshold(norm_r, bound.norm(order[pos]))

        accept = None
        if band is not None:
            keys = band.keys
            radius = band.radius + 1e-12
            key_r = keys[rid]

            def accept(pos: int) -> bool:
                return abs(keys[order[pos]] - key_r) <= radius

        index_threshold = bound.index_threshold(norm_r, cluster.index.min_norm)
        candidates = self._merge_opt_lists(
            lists, index_threshold, threshold_of, counters, accept
        )
        for pos, _weight in candidates:
            sid = order[pos]
            self._verify_pair(bound, min(rid, sid), max(rid, sid), counters, pairs)

    def _assign_home(
        self,
        clusters: ClusterSet,
        home: tuple[int, float] | None,
        position: int,
        rid: int,
        tokens: tuple[int, ...],
        scores: tuple[float, ...],
        norm_r: float,
        counters: CostCounters,
    ) -> Cluster:
        target: Cluster | None = None
        if home is not None and home[1] >= self.home_similarity:
            target = clusters[home[0]]
        if target is None:
            if self.max_clusters is None or len(clusters) < self.max_clusters:
                target = clusters.new_cluster()
                counters.clusters_created += 1
            elif home is not None:
                target = clusters[home[0]]
            else:
                # Forced overflow: every cluster is unrelated and the
                # cluster budget is spent; pick the smallest cluster.
                target = min(clusters.clusters, key=len)
        clusters.assign(target, position, rid, tokens, scores, norm_r)
        self.last_assignment[rid] = target.cid
        return target
