"""Dataset container: tokenized records over an integer vocabulary.

Every join algorithm in this package operates on a :class:`Dataset` — a
collection of records where each record is a sorted tuple of distinct
integer token ids. The mapping from token strings to ids (the
"vocabulary"), corpus frequencies, and optional raw payloads (the original
strings, needed by the edit-distance verifier) live here too.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Sequence

__all__ = ["Dataset"]


class Dataset:
    """An immutable collection of tokenized set-valued records.

    Args:
        records: one sorted tuple of distinct token ids per record.
        vocabulary: optional token-string -> token-id mapping.
        payloads: optional per-record raw payload (e.g. the source string
            for edit-distance joins, or the original structured record).

    Records keep their positional index as their RID; all join results
    refer to these RIDs.
    """

    def __init__(
        self,
        records: Sequence[tuple[int, ...]],
        vocabulary: dict[str, int] | None = None,
        payloads: Sequence | None = None,
    ):
        if payloads is not None and len(payloads) != len(records):
            raise ValueError(
                f"payloads length {len(payloads)} != records length {len(records)}"
            )
        self.records: list[tuple[int, ...]] = [tuple(r) for r in records]
        self.vocabulary = vocabulary
        self.payloads = list(payloads) if payloads is not None else None
        self._frequency: dict[int, int] | None = None
        self._id_to_token: dict[int, str] | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_token_lists(
        cls,
        token_lists: Iterable[Sequence[str]],
        payloads: Sequence | None = None,
        vocabulary: dict[str, int] | None = None,
    ) -> "Dataset":
        """Build a dataset from lists of token strings.

        Token ids are assigned in order of first appearance (extending a
        supplied ``vocabulary`` in place if one is given, so several
        datasets can share an id space). Duplicate tokens within a record
        are dropped — the paper treats records as sets.
        """
        vocab = vocabulary if vocabulary is not None else {}
        records = []
        for tokens in token_lists:
            ids = set()
            for token in tokens:
                token_id = vocab.get(token)
                if token_id is None:
                    token_id = len(vocab)
                    vocab[token] = token_id
                ids.add(token_id)
            records.append(tuple(sorted(ids)))
        return cls(records, vocabulary=vocab, payloads=payloads)

    @classmethod
    def from_texts(
        cls,
        texts: Sequence[str],
        tokenizer: Callable[[str], Sequence[str]],
        vocabulary: dict[str, int] | None = None,
    ) -> "Dataset":
        """Tokenize raw strings; the strings are kept as payloads."""
        return cls.from_token_lists(
            (tokenizer(text) for text in texts), payloads=texts, vocabulary=vocabulary
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, rid: int) -> tuple[int, ...]:
        return self.records[rid]

    def __iter__(self):
        return iter(self.records)

    @property
    def frequency(self) -> dict[int, int]:
        """Document frequency of each token (lazily computed, cached)."""
        if self._frequency is None:
            freq: Counter[int] = Counter()
            for record in self.records:
                freq.update(record)
            self._frequency = dict(freq)
        return self._frequency

    def token_string(self, token_id: int) -> str:
        """Inverse vocabulary lookup (requires a vocabulary)."""
        if self.vocabulary is None:
            raise ValueError("dataset has no vocabulary")
        if self._id_to_token is None:
            self._id_to_token = {tid: tok for tok, tid in self.vocabulary.items()}
        return self._id_to_token[token_id]

    def payload(self, rid: int):
        """Raw payload of a record (requires payloads)."""
        if self.payloads is None:
            raise ValueError("dataset has no payloads")
        return self.payloads[rid]

    # ------------------------------------------------------------------
    # Statistics (Table 1 of the paper)
    # ------------------------------------------------------------------

    def total_word_occurrences(self) -> int:
        """Total posting entries a full record-level index would hold.

        This is the quantity ``W`` of §4: the memory unit in which the
        limited-memory budget is expressed.
        """
        return sum(len(record) for record in self.records)

    def average_set_size(self) -> float:
        """Average number of elements per set (Table 1, column 2)."""
        if not self.records:
            return 0.0
        return self.total_word_occurrences() / len(self.records)

    def n_distinct_tokens(self) -> int:
        """Number of distinct elements over all sets (Table 1, column 3)."""
        return len(self.frequency)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def head(self, n: int) -> "Dataset":
        """A dataset over the first ``n`` records (for size sweeps)."""
        payloads = self.payloads[:n] if self.payloads is not None else None
        return Dataset(self.records[:n], vocabulary=self.vocabulary, payloads=payloads)

    def reorder(self, permutation: Sequence[int]) -> "Dataset":
        """Dataset with records permuted; ``new[i] = old[permutation[i]]``."""
        if sorted(permutation) != list(range(len(self.records))):
            raise ValueError("permutation must be a rearrangement of all RIDs")
        payloads = None
        if self.payloads is not None:
            payloads = [self.payloads[old] for old in permutation]
        return Dataset(
            [self.records[old] for old in permutation],
            vocabulary=self.vocabulary,
            payloads=payloads,
        )

    def sort_permutation_by_size_desc(self) -> list[int]:
        """RID order of decreasing record size (paper §3.3 pre-sort).

        Ties broken by RID for determinism. Used with :meth:`reorder`;
        the generalized criterion (decreasing record norm, §5.1.2) is a
        predicate concern and handled by the join drivers.
        """
        return sorted(range(len(self.records)), key=lambda rid: (-len(self.records[rid]), rid))

    def __repr__(self) -> str:
        return (
            f"Dataset(n={len(self.records)}, avg_set_size={self.average_set_size():.1f},"
            f" distinct_tokens={self.n_distinct_tokens()})"
        )
