"""Top-level convenience API: ``similarity_join`` and friends.

Wraps the algorithm classes behind a single dispatch function so the
quickstart is one call::

    from repro import Dataset, JaccardPredicate, similarity_join
    result = similarity_join(dataset, JaccardPredicate(0.8))
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.approx.join import ApproxJoin
from repro.core.accumulator import resolve_merge_backend
from repro.storage.mmap_index import resolve_index_backend
from repro.core.cluster_mem import ClusterMemJoin, MemoryBudget
from repro.core.naive import NaiveJoin
from repro.core.pair_count import PairCountJoin
from repro.core.positional_filter import PositionalFilterJoin
from repro.core.prefix_filter import PrefixFilterJoin
from repro.core.probe_cluster import ProbeClusterJoin
from repro.core.probe_count import ProbeCountJoin
from repro.core.records import Dataset
from repro.core.results import JoinResult
from repro.core.word_groups import WordGroupsJoin
from repro.predicates.base import SimilarityPredicate
from repro.predicates.edit_distance import EditDistancePredicate, qgram_dataset

__all__ = [
    "ALGORITHMS",
    "edit_distance_join",
    "hamming_join",
    "make_algorithm",
    "similarity_join",
]

#: Per algorithm name: (class, base keyword arguments). ``ALGORITHMS``
#: below exposes the zero-argument factory view of the same registry.
_SPECS: dict[str, tuple[type, dict]] = {
    "naive": (NaiveJoin, {}),
    "probe-count": (ProbeCountJoin, {"variant": "basic"}),
    "probe-count-stopwords": (ProbeCountJoin, {"variant": "stopwords"}),
    "probe-count-optmerge": (ProbeCountJoin, {"variant": "optmerge"}),
    "probe-count-online": (ProbeCountJoin, {"variant": "online"}),
    "probe-count-sort": (ProbeCountJoin, {"variant": "sort"}),
    "pair-count": (PairCountJoin, {"optimized": False}),
    "pair-count-optmerge": (PairCountJoin, {"optimized": True}),
    "word-groups": (WordGroupsJoin, {"optimized": False}),
    "word-groups-optmerge": (WordGroupsJoin, {"optimized": True}),
    "probe-cluster": (ProbeClusterJoin, {}),
    "prefix-filter": (PrefixFilterJoin, {}),
    "positional-filter": (PositionalFilterJoin, {}),
    "approx": (ApproxJoin, {}),
}

#: Factory per algorithm name; every entry is a zero-argument callable
#: producing a fresh instance with the paper's default parameters.
ALGORITHMS: dict[str, Callable[[], object]] = {
    name: (lambda _cls=cls, _base=base: _cls(**_base))
    for name, (cls, base) in _SPECS.items()
}


def make_algorithm(name: str, **kwargs):
    """Instantiate a join algorithm by its benchmark-table name.

    Extra keyword arguments are merged over the variant's defaults.
    ``cluster-mem`` additionally accepts ``memory_fraction`` (resolved
    against the dataset at join time) or an explicit ``budget``.

    ``bitmap_filter=`` arms the candidate filter of :mod:`repro.filters`
    on any algorithm (``True``, an int signature width, or a
    :class:`~repro.filters.BitmapFilterConfig`); it is attached to the
    instance rather than passed to constructors so every algorithm —
    and the parallel workers, which rebuild instances from this same
    registry — accepts it uniformly. ``merge_backend=`` selects the
    probe-merge engine the same way (``"heap"``, ``"accumulator"``, or
    the adaptive default ``"auto"`` — see :mod:`repro.core.accumulator`).
    ``index_backend=`` picks where the probe index lives (``"memory"``
    or the zero-copy ``"mmap"`` columnar file of
    :mod:`repro.storage.mmap_index`; ``index_path=`` pins the file
    location instead of a temp file). Like the other knobs it is an
    instance attribute, so it flows through ``similarity_join`` and the
    parallel workers unchanged; algorithms without a two-pass build
    raise a clear error at ``join()`` time.
    """
    bitmap_filter = kwargs.pop("bitmap_filter", None)
    merge_backend = resolve_merge_backend(kwargs.pop("merge_backend", None))
    index_backend = resolve_index_backend(kwargs.pop("index_backend", None))
    index_path = kwargs.pop("index_path", None)
    if name == "cluster-mem":
        budget = kwargs.pop("budget", None)
        fraction = kwargs.pop("memory_fraction", None)
        if budget is None and fraction is None:
            raise ValueError("cluster-mem needs budget= or memory_fraction=")
        if budget is None:

            class _Deferred:
                """Budget resolved against the dataset at join time."""

                name = "cluster-mem"
                respects_memory_budget = True
                bitmap_filter = None
                merge_backend = "auto"
                index_backend = "memory"
                index_path = None

                def join(self, dataset, predicate, context=None):
                    resolved = ClusterMemJoin(
                        MemoryBudget.fraction_of_full(dataset, fraction), **kwargs
                    )
                    resolved.bitmap_filter = self.bitmap_filter
                    resolved.merge_backend = self.merge_backend
                    resolved.index_backend = self.index_backend
                    resolved.index_path = self.index_path
                    return resolved.join(dataset, predicate, context=context)

            deferred = _Deferred()
            deferred.bitmap_filter = bitmap_filter
            deferred.merge_backend = merge_backend
            deferred.index_backend = index_backend
            deferred.index_path = index_path
            return deferred
        algorithm = ClusterMemJoin(budget, **kwargs)
        algorithm.bitmap_filter = bitmap_filter
        algorithm.merge_backend = merge_backend
        algorithm.index_backend = index_backend
        algorithm.index_path = index_path
        return algorithm
    spec = _SPECS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown algorithm {name!r}; expected one of"
            f" {sorted(_SPECS) + ['cluster-mem']}"
        )
    cls, base = spec
    algorithm = cls(**{**base, **kwargs})
    algorithm.bitmap_filter = bitmap_filter
    algorithm.merge_backend = merge_backend
    algorithm.index_backend = index_backend
    algorithm.index_path = index_path
    return algorithm


def similarity_join(
    dataset: Dataset,
    predicate: SimilarityPredicate,
    algorithm: str = "probe-cluster",
    context=None,
    mode: str = "exact",
    **kwargs,
) -> JoinResult:
    """Similarity self-join with the named algorithm.

    Args:
        dataset: the tokenized records.
        predicate: the join condition (see :mod:`repro.predicates`).
        algorithm: a key of :data:`ALGORITHMS` or ``"cluster-mem"``.
        context: optional :class:`~repro.runtime.context.JoinContext`
            carrying a deadline, cancellation token, memory budget,
            and/or checkpointer (see ``docs/operations.md``).
        mode: ``"exact"`` (default) runs the named algorithm;
            ``"approx"`` runs the LSH candidate generator of
            :mod:`repro.approx` instead — its knobs (``target_recall=``,
            ``seed=``, ``leaf_size=``, ...) arrive via ``kwargs``, every
            emitted pair is still verified exactly (no false positives),
            and a fixed seed gives identical pairs. Passing a
            non-default ``algorithm`` together with ``mode="approx"``
            is a contradiction and raises.
        kwargs: algorithm construction options.

    Returns a :class:`~repro.core.results.JoinResult`.
    """
    if mode == "approx":
        if algorithm not in ("probe-cluster", "approx"):
            raise ValueError(
                f"mode='approx' selects its own candidate generator;"
                f" it cannot run algorithm {algorithm!r}"
            )
        algorithm = "approx"
    elif mode != "exact":
        raise ValueError(f"unknown join mode {mode!r}; expected 'exact' or 'approx'")
    return make_algorithm(algorithm, **kwargs).join(dataset, predicate, context=context)


def hamming_join(
    dataset: Dataset,
    k: int,
    algorithm: str = "probe-cluster",
    context=None,
    **kwargs,
) -> JoinResult:
    """Exact symmetric-difference join ``|r Δ s| <= k``.

    Index joins cannot surface qualifying pairs that share *no*
    elements (possible when ``|r| + |s| <= k``); those are brute-force
    verified among records of size <= k, keeping the join exact for any
    ``k``.
    """
    from repro.core.results import MatchPair
    from repro.predicates.hamming import HammingPredicate

    predicate = HammingPredicate(k)
    result = similarity_join(
        dataset, predicate, algorithm=algorithm, context=context, **kwargs
    )
    small = [rid for rid in range(len(dataset)) if len(dataset[rid]) <= k]
    if small:
        bound = predicate.bind(dataset)
        seen = result.pair_set()
        for i, rid_a in enumerate(small):
            for rid_b in small[i + 1 :]:
                key = (min(rid_a, rid_b), max(rid_a, rid_b))
                if key in seen:
                    continue
                result.counters.pairs_verified += 1
                ok, distance = bound.verify(key[0], key[1])
                if ok:
                    seen.add(key)
                    result.pairs.append(MatchPair(key[0], key[1], distance))
        result.counters.pairs_output = len(result.pairs)
    return result


def edit_distance_join(
    strings: Sequence[str],
    k: int,
    q: int = 3,
    algorithm: str = "probe-cluster",
    context=None,
    **kwargs,
) -> JoinResult:
    """Exact edit-distance self-join over raw strings (§5.2.3).

    Builds the numbered-q-gram dataset, runs the set join for candidate
    generation, and — because the q-gram count bound is vacuous for very
    short strings (threshold <= 0) — additionally brute-force-verifies
    all pairs of strings no longer than ``1 + q(k-1)``, so the result is
    exact for any input.
    """
    predicate = EditDistancePredicate(k=k, q=q)
    dataset = qgram_dataset(strings, q=q)
    result = similarity_join(
        dataset, predicate, algorithm=algorithm, context=context, **kwargs
    )
    cutoff = predicate.short_string_cutoff()
    bound = predicate.bind(dataset)
    short = [
        rid
        for rid in range(len(dataset))
        if bound.string_length(rid) <= cutoff
    ]
    if short:
        seen = result.pair_set()
        from repro.core.results import MatchPair

        for i, rid_a in enumerate(short):
            for rid_b in short[i + 1 :]:
                key = (min(rid_a, rid_b), max(rid_a, rid_b))
                if key in seen:
                    continue
                result.counters.pairs_verified += 1
                ok, distance = bound.verify(key[0], key[1])
                if ok:
                    seen.add(key)
                    result.pairs.append(MatchPair(key[0], key[1], distance))
        result.counters.pairs_output = len(result.pairs)
    return result
