"""Word-Groups join (paper §2.3) with the §3.1 threshold optimization.

Maps the T-overlap join to frequent-itemset mining: items are words,
transactions are records, minimum support 2. An itemset ("word group")
whose total word weight reaches the threshold certifies every pair of
records in its tid-list, so the join outputs pairs from qualifying
groups.

The paper's two tricks against group blow-up, both implemented:

* **Early output** — a group with support below ``M`` (default 5) is
  output and pruned before its weight reaches ``T``; its few implied
  pairs are verified directly.
* **MinHash compaction** — at each level, groups whose tid-lists agree on
  at least ``k*p`` MinHash signature slots are merged, their union
  emitted and pruned, killing the redundancy of the C(2T, T) itemset
  combinations a high-overlap pair would otherwise generate.

Both tricks, and the output path itself, are *exact* because a group's
tid-list only shrinks as the group grows: emitting all pairs of the
current tid-list (through the predicate's exact verifier) covers every
pair any descendant group could ever certify.

The §3.1 threshold optimization skips candidate groups consisting solely
of "large-list" words whose combined maximum contribution is below the
smallest possible threshold. To keep the itemset lattice connected under
this skip, items are ordered with non-large words first: every mixed
candidate's two prefix-join parents then drop one of its *last* (most
large-ish) items and remain mixed themselves, so no mixed group is ever
lost to a skipped all-large parent.

Restriction (as in the paper, which runs Word-Groups on unweighted
overlap): the predicate's word scores must be record-independent, so
cosine/TF-IDF is rejected.
"""

from __future__ import annotations

from repro.core.base import SetJoinAlgorithm
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.mining.apriori import generate_candidates, intersect_sorted
from repro.mining.minhash import compact_groups
from repro.predicates.base import WEIGHT_EPS, BoundPredicate
from repro.utils.counters import CostCounters

__all__ = ["WordGroupsJoin"]


class WordGroupsJoin(SetJoinAlgorithm):
    """Frequent-itemset join (§2.3).

    Args:
        early_output_support: the paper's ``M`` — groups with fewer
            records are output and pruned immediately (default 5).
        optimized: apply the §3.1 restriction (skip groups made solely of
            large-list words).
        compaction: merge near-identical groups per level via MinHash.
        minhash_k: signature slots for compaction.
        minhash_p: agreement fraction required to merge groups.
        max_level: safety cap on itemset size; remaining groups are
            flushed exactly when it is hit (None = unbounded).
        seed: MinHash seed (results are independent of it; work is not).
    """

    def __init__(
        self,
        early_output_support: int = 5,
        optimized: bool = True,
        compaction: bool = True,
        minhash_k: int = 16,
        minhash_p: float = 0.9,
        max_level: int | None = None,
        seed: int = 0,
    ):
        if early_output_support < 2:
            raise ValueError(
                f"early_output_support must be >= 2, got {early_output_support}"
            )
        self.early_output_support = early_output_support
        self.optimized = optimized
        self.compaction = compaction
        self.minhash_k = minhash_k
        self.minhash_p = minhash_p
        self.max_level = max_level
        self.seed = seed
        self.name = "word-groups-optmerge" if optimized else "word-groups"

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        if not bound.record_independent_scores:
            raise ValueError(
                "Word-Groups needs record-independent word scores;"
                f" predicate {bound.similarity_name()!r} is record-dependent"
            )
        word_weight, min_threshold = self._word_weights(dataset, bound)
        large_words = self._large_word_set(dataset, word_weight, min_threshold)
        counters.extra["large_words"] = len(large_words)
        # Mining item ids: non-large words first, so the lattice stays
        # connected when all-large candidates are skipped (see module
        # docstring).
        tokens_in_order = sorted(word_weight, key=lambda t: (t in large_words, t))
        item_of_token = {token: item for item, token in enumerate(tokens_in_order)}
        item_weight = [word_weight[token] for token in tokens_in_order]
        first_large_item = len(tokens_in_order) - len(large_words)

        # Level 1: item -> tid-list, support >= 2.
        tidlists: dict[int, list[int]] = {}
        for rid, record in enumerate(dataset.records):
            self._tick(counters)
            for token in record:
                tidlists.setdefault(item_of_token[token], []).append(rid)
        level: dict[tuple[int, ...], list[int]] = {
            (item,): tids for item, tids in tidlists.items() if len(tids) >= 2
        }

        seen: set[tuple[int, int]] = set()
        pairs: list[MatchPair] = []
        while level:
            counters.itemsets_generated += len(level)
            survivors: dict[tuple[int, ...], list[int]] = {}
            for itemset, tids in level.items():
                # Per-group runtime check (deadline/cancel/memory); the
                # lattice can vastly outnumber the records.
                self._tick(counters)
                weight = sum(item_weight[item] for item in itemset)
                if weight >= min_threshold - WEIGHT_EPS:
                    # Qualifying group: output all implied pairs, prune.
                    self._emit_group(tids, bound, counters, seen, pairs)
                elif len(tids) < self.early_output_support:
                    # Early output: small group, verify directly, prune.
                    self._emit_group(tids, bound, counters, seen, pairs)
                else:
                    survivors[itemset] = tids
            if self.compaction and len(survivors) > 1:
                survivors = self._compact(survivors, bound, counters, seen, pairs)
            if (
                self.max_level is not None
                and survivors
                and len(next(iter(survivors))) >= self.max_level
            ):
                for tids in survivors.values():
                    self._emit_group(tids, bound, counters, seen, pairs)
                break
            level = self._next_level(survivors, first_large_item)
        return pairs

    # ------------------------------------------------------------------

    def _word_weights(
        self, dataset: Dataset, bound: BoundPredicate
    ) -> tuple[dict[int, float], float]:
        """Per-word pair contribution and the global minimum threshold.

        With record-independent scores, word ``w`` always contributes
        ``score(w)^2`` to a matched pair's weight.
        """
        weight: dict[int, float] = {}
        min_norm = float("inf")
        for rid in range(len(dataset)):
            scores = bound.cached_score_vector(rid)
            for token, score in zip(dataset[rid], scores):
                if token not in weight:
                    weight[token] = score * score
            norm = bound.norm(rid)
            if norm < min_norm:
                min_norm = norm
        min_threshold = bound.threshold(min_norm, min_norm) if weight else 0.0
        return weight, min_threshold

    def _large_word_set(
        self, dataset: Dataset, word_weight: dict[int, float], min_threshold: float
    ) -> set[int]:
        """The §3.1 set L: most frequent words with total weight < T."""
        if not self.optimized:
            return set()
        by_frequency = sorted(
            dataset.frequency.items(), key=lambda item: (-item[1], item[0])
        )
        large: set[int] = set()
        budget = 0.0
        for token, _freq in by_frequency:
            contribution = word_weight.get(token, 0.0)
            if budget + contribution >= min_threshold - WEIGHT_EPS:
                break
            budget += contribution
            large.add(token)
        return large

    def _next_level(
        self,
        level: dict[tuple[int, ...], list[int]],
        first_large_item: int,
    ) -> dict[tuple[int, ...], list[int]]:
        out: dict[tuple[int, ...], list[int]] = {}
        for candidate, parent_a, parent_b in generate_candidates(list(level.keys())):
            # All-large groups cannot reach the threshold (§3.1); items
            # are ordered non-large first, so checking the first item
            # suffices.
            if candidate[0] >= first_large_item:
                continue
            tids = intersect_sorted(level[parent_a], level[parent_b])
            if len(tids) >= 2:
                out[candidate] = tids
        return out

    def _emit_group(
        self,
        tids: list[int],
        bound: BoundPredicate,
        counters: CostCounters,
        seen: set[tuple[int, int]],
        pairs: list[MatchPair],
    ) -> None:
        n = len(tids)
        for i in range(n):
            rid_a = tids[i]
            for j in range(i + 1, n):
                key = (rid_a, tids[j])
                counters.pairs_generated += 1
                if key in seen:
                    continue
                seen.add(key)
                self._verify_pair(bound, key[0], key[1], counters, pairs)

    def _compact(
        self,
        survivors: dict[tuple[int, ...], list[int]],
        bound: BoundPredicate,
        counters: CostCounters,
        seen: set[tuple[int, int]],
        pairs: list[MatchPair],
    ) -> dict[tuple[int, ...], list[int]]:
        """Merge near-identical tid-lists; emit and prune merged groups."""
        itemsets = list(survivors.keys())
        clusters = compact_groups(
            [survivors[itemset] for itemset in itemsets],
            k=self.minhash_k,
            p=self.minhash_p,
            seed=self.seed,
        )
        out: dict[tuple[int, ...], list[int]] = {}
        for members in clusters:
            if len(members) == 1:
                itemset = itemsets[members[0]]
                out[itemset] = survivors[itemset]
                continue
            counters.extra["groups_compacted"] = (
                counters.extra.get("groups_compacted", 0) + len(members)
            )
            union: set[int] = set()
            for member in members:
                union.update(survivors[itemsets[member]])
            self._emit_group(sorted(union), bound, counters, seen, pairs)
        return out
