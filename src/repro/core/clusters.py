"""Cluster bookkeeping shared by Probe-Cluster and ClusterMem.

A cluster (paper §3.4) is a disjoint group of records discovered online.
It appears in the cluster-level inverted index under the union of its
members' words, with the §5.1.3 summary statistics:

* ``score(w, C) = max over members of score(w, s)`` per word, and
* ``||C|| = min over members of ||s||`` as the cluster norm,

which guarantee that whenever a record joins with any member, the
cluster-level probe surfaces the cluster (no false negatives). Each
cluster also owns a fine-grained record-level inverted index used for
the second, exact probe.
"""

from __future__ import annotations

from repro.core.inverted_index import ScoredInvertedIndex

__all__ = ["Cluster", "ClusterSet"]


class Cluster:
    """One online-discovered cluster of related records."""

    __slots__ = (
        "cid",
        "positions",
        "rids",
        "word_scores",
        "min_member_norm",
        "union_norm",
        "index",
    )

    def __init__(self, cid: int):
        self.cid = cid
        #: processing positions of members (increasing).
        self.positions: list[int] = []
        #: original record ids of members, aligned with positions.
        self.rids: list[int] = []
        #: union of member words -> max member score (score(w, C)).
        self.word_scores: dict[int, float] = {}
        #: min member norm, the cluster summary ||C||.
        self.min_member_norm: float = float("inf")
        #: sum of score(w, C)^2 over the word union — the "record norm"
        #: of the cluster viewed as one big record (used by the
        #: Jaccard-style home-cluster similarity of §4.1.1).
        self.union_norm: float = 0.0
        #: fine-grained record-level index. Maintained by the join
        #: driver, and only once the cluster has two members — a
        #: singleton cluster's fine join is a direct verification, so
        #: indexing it would be pure overhead. ClusterMem's phase 1
        #: never populates it (fine joins happen in phase 2).
        self.index: ScoredInvertedIndex | None = None

    def __len__(self) -> int:
        return len(self.positions)

    def add_record(
        self,
        position: int,
        rid: int,
        tokens: tuple[int, ...],
        scores: tuple[float, ...],
        norm: float,
    ) -> list[tuple[int, float]]:
        """Add a member; returns the (word, score) summary updates.

        The returned list holds every word whose cluster-level score
        changed (new words, or raised maxima) — exactly the entries the
        caller must push into the cluster-level inverted index. The
        fine-grained record index is the driver's responsibility.
        """
        self.positions.append(position)
        self.rids.append(rid)
        if norm < self.min_member_norm:
            self.min_member_norm = norm
        updates: list[tuple[int, float]] = []
        word_scores = self.word_scores
        for token, score in zip(tokens, scores):
            old = word_scores.get(token)
            if old is None:
                word_scores[token] = score
                self.union_norm += score * score
                updates.append((token, score))
            elif score > old:
                word_scores[token] = score
                self.union_norm += score * score - old * old
                updates.append((token, score))
        return updates


class ClusterSet:
    """All clusters plus the cluster-level inverted index."""

    def __init__(self):
        self.clusters: list[Cluster] = []
        self.index = ScoredInvertedIndex()

    def __len__(self) -> int:
        return len(self.clusters)

    def __getitem__(self, cid: int) -> Cluster:
        return self.clusters[cid]

    def new_cluster(self) -> Cluster:
        cluster = Cluster(len(self.clusters))
        self.clusters.append(cluster)
        return cluster

    def cluster_norm(self, cid: int) -> float:
        """The summary ||C|| used in threshold computations."""
        return self.clusters[cid].min_member_norm

    def assign(
        self,
        cluster: Cluster,
        position: int,
        rid: int,
        tokens: tuple[int, ...],
        scores: tuple[float, ...],
        norm: float,
    ) -> None:
        """Add a record to a cluster and refresh the cluster-level index."""
        updates = cluster.add_record(position, rid, tokens, scores, norm)
        added = 0
        for token, score in updates:
            # insert_sorted reports whether the entry is new; only those
            # count toward n_entries (score raises reuse their slot).
            if self.index.get_or_create(token).insert_sorted(cluster.cid, score):
                added += 1
        self.index.n_entries += added
        self.index.update_min_norm(cluster.min_member_norm)
