"""Score-accumulator (ScanCount-style) merge backend.

The heap merges of :mod:`repro.core.heap_merge` and
:mod:`repro.core.merge_opt` pay per-element ``heapq`` overhead — a
tuple allocation, a comparison cascade, and a sift per posting entry.
When the probe's lists are long, counting is cheaper than merging: scan
each list once and accumulate every entity's weight into one flat
``array('d')`` indexed by entity id. This module implements that
backend with the same contracts as the heap functions:

* :func:`accumulate_merge` ≡ :func:`~repro.core.heap_merge.heap_merge`
* :func:`accumulate_merge_opt` ≡ :func:`~repro.core.merge_opt.merge_opt`

**Epoch stamping.** A :class:`ScoreAccumulator` owns the weight array
plus a parallel ``array('q')`` of epoch stamps. Each probe bumps the
epoch; a slot whose stamp is stale is treated as zero and overwritten
on first touch. Buffers are therefore reused across probes *without
clearing* — O(candidates) per probe, not O(capacity) — which is what
makes a per-join (or per-server-worker) accumulator sized to the
entity-id space affordable.

**Sparse fallback.** When no accumulator is supplied, or the probe's
ids fall outside the dense capacity (ephemeral/unbounded id spaces,
e.g. unseen query tokens assigned ids past the vocabulary), the scan
transparently falls back to a per-probe dict. Same results, no sizing
contract.

**Rare-word skip path.** :func:`accumulate_merge_opt` reuses
:func:`~repro.core.merge_opt.split_lists` (§3.1 Algorithm 1): only the
short S lists are scanned into the accumulator; candidates are then
completed against the long L lists smallest-first with a galloping
(doubling) binary search and the same early-termination bound the heap
path uses. Gallop bracket steps are reported as
``counters.gallop_steps``.

**Result identity.** For a given entity, both backends sum the same
contributions in the same order — the heap pops equal RIDs in
increasing list index, the scan visits lists in that same order — so
accumulated weights are bit-identical, and the returned candidate sets
are identical pair-for-pair (property tests pin this across
predicates, serial and sharded, with and without the bitmap filter).

Counter mapping: ``list_items_touched``, ``candidates_checked`` and
``binary_searches`` mean exactly what they mean on the heap path and
take identical values, so ``total_work()`` stays comparable; the heap
counters (``heap_pops``/``heap_pushes``) stay zero — that delta *is*
the measured saving. The accumulator's own raw volumes are reported
separately as ``accum_scans``/``accum_writes`` (excluded from
``total_work()``, see :class:`~repro.utils.counters.CostCounters`).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Callable

from repro.core.inverted_index import PostingList
from repro.core.merge_opt import split_lists
from repro.predicates.base import WEIGHT_EPS
from repro.utils.counters import CostCounters

__all__ = [
    "AUTO_MIN_ENTRIES",
    "MERGE_BACKENDS",
    "ScoreAccumulator",
    "accumulate_merge",
    "accumulate_merge_opt",
    "resolve_merge_backend",
    "use_accumulator",
]

#: Valid values of the ``merge_backend`` knob.
MERGE_BACKENDS = ("auto", "heap", "accumulator")

#: Under ``merge_backend="auto"``, probes whose lists hold at least this
#: many total entries use the accumulator; smaller probes stay on the
#: heap, whose setup cost is lower. The crossover is flat in practice —
#: tiny probes are cheap either way — so one pinned constant beats a
#: per-dataset tuning knob.
AUTO_MIN_ENTRIES = 32


def resolve_merge_backend(value) -> str:
    """Validate a ``merge_backend`` knob value (None means ``auto``)."""
    if value is None:
        return "auto"
    if value not in MERGE_BACKENDS:
        raise ValueError(
            f"unknown merge backend {value!r}; expected one of {MERGE_BACKENDS}"
        )
    return value


def use_accumulator(backend: str, lists: list[tuple[PostingList, float]]) -> bool:
    """Decide the backend for one probe from its list-size stats."""
    if backend == "heap":
        return False
    if backend == "accumulator":
        return True
    total = 0
    for plist, _probe_score in lists:
        total += len(plist)
    return total >= AUTO_MIN_ENTRIES


class ScoreAccumulator:
    """Reusable dense weight buffer: ``weights[id]`` + epoch stamps.

    Args:
        capacity: number of entity-id slots; size to the join's entity
            count (record/position/cluster ids all stay below it). Can
            grow later via :meth:`ensure`.

    One accumulator belongs to one join execution or one server worker
    thread — it is deliberately *not* thread-safe; concurrent probes
    each need their own (they are small: 16 bytes per slot).
    """

    __slots__ = ("weights", "epochs", "epoch")

    def __init__(self, capacity: int = 0):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.weights: array = array("d", bytes(8 * capacity))
        self.epochs: array = array("q", bytes(8 * capacity))
        self.epoch: int = 0

    @property
    def capacity(self) -> int:
        return len(self.weights)

    def ensure(self, capacity: int) -> None:
        """Grow to at least ``capacity`` slots (never shrinks)."""
        grow = capacity - len(self.weights)
        if grow > 0:
            self.weights.frombytes(bytes(8 * grow))
            self.epochs.frombytes(bytes(8 * grow))

    def begin(self) -> int:
        """Start a new probe: invalidates all slots in O(1)."""
        self.epoch += 1
        return self.epoch


def accumulate_merge(
    lists: list[tuple[PostingList, float]],
    threshold_of: Callable[[int], float],
    counters: CostCounters,
    accept: Callable[[int], bool] | None = None,
    acc: ScoreAccumulator | None = None,
) -> list[tuple[int, float]]:
    """Merge posting lists by counting; same contract as ``heap_merge``.

    Args:
        lists: ``(posting_list, probe_score)`` pairs from the index probe.
        threshold_of: maps an entity id to its pair threshold ``T(r, s)``.
        counters: work counters to update.
        accept: optional id-level filter; filtered ids are skipped.
        acc: dense buffer to accumulate into; ``None`` (or ids outside
            its capacity) selects the sparse dict fallback.

    Returns candidates with ``weight >= T(r, s) - eps`` in increasing id
    order — the same candidates, with bit-identical weights, that
    ``heap_merge`` returns.
    """
    if not lists:
        return []
    touched, weights = _scan_lists(lists, accept, acc, counters)
    candidates: list[tuple[int, float]] = []
    append = candidates.append
    for entity in touched:
        weight = weights[entity]
        if weight >= threshold_of(entity) - WEIGHT_EPS:
            append((entity, weight))
    return candidates


def accumulate_merge_opt(
    lists: list[tuple[PostingList, float]],
    index_threshold: float,
    threshold_of: Callable[[int], float],
    counters: CostCounters,
    accept: Callable[[int], bool] | None = None,
    acc: ScoreAccumulator | None = None,
) -> list[tuple[int, float]]:
    """Threshold-optimized counting merge; same contract as ``merge_opt``.

    S lists (short) are scanned into the accumulator; each touched
    entity is then completed against the L lists (long) smallest-first
    with galloping searches, bailing out early once even full
    membership in the remaining L lists cannot reach ``T(r, m)`` —
    exactly Algorithm 1 steps 8–11, with the heap replaced by the scan.
    """
    if not lists:
        return []
    ordered, cumulative, k = split_lists(lists, index_threshold)
    small = ordered[k:]
    if not small:
        # Entities appearing only in L lists cannot reach the threshold.
        return []
    large = ordered[:k]
    touched, weights = _scan_lists(small, accept, acc, counters)

    # Per-L-list search frontiers: touched ids are visited in increasing
    # order, so each gallop resumes where the previous one ended.
    search_from = [0] * k
    searches = 0
    gallop_steps = 0
    candidates: list[tuple[int, float]] = []
    append = candidates.append
    for entity in touched:
        weight = weights[entity]
        pair_threshold = threshold_of(entity)
        for i in range(k - 1, -1, -1):
            if weight + cumulative[i] < pair_threshold - WEIGHT_EPS:
                break
            plist, probe_score = large[i]
            searches += 1
            ids = plist.ids
            position, steps = _gallop_from(ids, entity, search_from[i])
            gallop_steps += steps
            search_from[i] = position
            if position < len(ids) and ids[position] == entity:
                weight += probe_score * plist.scores[position]
        if weight >= pair_threshold - WEIGHT_EPS:
            append((entity, weight))
    counters.binary_searches += searches
    counters.gallop_steps += gallop_steps
    return candidates


# ----------------------------------------------------------------------
# Scan phase (shared by both entry points)
# ----------------------------------------------------------------------


def _scan_lists(lists, accept, acc, counters):
    """Accumulate every list entry; returns (sorted touched ids, weights).

    ``weights`` supports ``[entity]`` lookup for exactly the returned
    ids (dense array or fallback dict). Counter updates happen here —
    once, after the scan, so the dense → sparse fallback never double
    counts.
    """
    if acc is not None and _fits_dense(lists, acc.capacity):
        return _scan_dense(lists, accept, acc, counters)
    return _scan_sparse(lists, accept, counters)


def _fits_dense(lists, capacity: int) -> bool:
    """Do all ids land inside the dense buffer? Ids are sorted, so the
    first/last entry of each list bound the whole list."""
    for plist, _probe_score in lists:
        ids = plist.ids
        if ids and (ids[0] < 0 or ids[-1] >= capacity):
            return False
    return True


def _scan_dense(lists, accept, acc, counters):
    epoch = acc.begin()
    weights = acc.weights
    epochs = acc.epochs
    touched: list[int] = []
    touched_append = touched.append
    scans = 0
    accepted = 0
    for plist, probe_score in lists:
        ids = plist.ids
        scans += len(ids)
        if accept is None:
            accepted += len(ids)
            for entity, score in zip(ids, plist.scores):
                if epochs[entity] == epoch:
                    weights[entity] += probe_score * score
                else:
                    epochs[entity] = epoch
                    weights[entity] = probe_score * score
                    touched_append(entity)
        else:
            for entity, score in zip(ids, plist.scores):
                if not accept(entity):
                    continue
                accepted += 1
                if epochs[entity] == epoch:
                    weights[entity] += probe_score * score
                else:
                    epochs[entity] = epoch
                    weights[entity] = probe_score * score
                    touched_append(entity)
    touched.sort()
    counters.accum_scans += scans
    counters.accum_writes += len(touched)
    counters.list_items_touched += accepted
    counters.candidates_checked += len(touched)
    return touched, weights


def _scan_sparse(lists, accept, counters):
    weights: dict[int, float] = {}
    scans = 0
    accepted = 0
    for plist, probe_score in lists:
        ids = plist.ids
        scans += len(ids)
        if accept is None:
            accepted += len(ids)
            for entity, score in zip(ids, plist.scores):
                if entity in weights:
                    weights[entity] += probe_score * score
                else:
                    weights[entity] = probe_score * score
        else:
            for entity, score in zip(ids, plist.scores):
                if not accept(entity):
                    continue
                accepted += 1
                if entity in weights:
                    weights[entity] += probe_score * score
                else:
                    weights[entity] = probe_score * score
    touched = sorted(weights)
    counters.accum_scans += scans
    counters.accum_writes += len(touched)
    counters.list_items_touched += accepted
    counters.candidates_checked += len(touched)
    return touched, weights


def _gallop_from(items, target: int, start: int) -> tuple[int, int]:
    """Counting twin of :func:`repro.utils.search.gallop_search_from`.

    Returns ``(insertion point, bracket-doubling steps)``; the position
    is identical to the utils version (a property test pins this), the
    step count feeds ``counters.gallop_steps``.
    """
    n = len(items)
    if start >= n:
        return n, 0
    if items[start] >= target:
        return start, 0
    step = 1
    lo = start
    hi = start + step
    steps = 0
    while hi < n and items[hi] < target:
        lo = hi
        step <<= 1
        hi = start + step
        steps += 1
    if hi >= n:
        hi = n
    return bisect_left(items, target, lo + 1, hi), steps
