"""Core join algorithms — the paper's primary contribution.

Submodules (imported directly, or via the :mod:`repro` top level, which
re-exports the public names):

* ``records`` — the :class:`Dataset` container.
* ``inverted_index`` — scored posting lists with §5.1.1 statistics.
* ``heap_merge`` / ``merge_opt`` / ``merge_dynamic`` — the three merge
  engines (§2.1, §3.1/Algorithm 1+3, §4.1.1).
* ``probe_count`` — Probe-Count and its stopwords / optMerge / online /
  sort variants.
* ``pair_count`` — Pair-Count and its threshold optimization.
* ``word_groups`` — the itemset-mining join.
* ``probe_cluster`` — the final in-memory algorithm (§3.4).
* ``cluster_mem`` — the limited-memory two-phase join (§4).
* ``naive`` — the quadratic ground-truth baseline.
* ``join`` — the ``similarity_join`` dispatch API.

This module stays import-light on purpose: predicates import
``repro.core.records``, so eager re-exports here would create an import
cycle.
"""
