"""ClusterMem: the limited-memory two-phase join (paper §4, Algorithm 2).

When the record-level inverted index (``W`` word occurrences) exceeds the
memory budget ``M``, the join runs in two phases:

**Phase 1 — data partitioning.** A *compressed* index is built by
grouping records into clusters (at most ``Ng = N * M / W`` clusters of at
most ``NR = Ng`` records, assuming ``M >= sqrt(W)``); posting lists point
at clusters, so the index holds at most ~``M`` entries. Each scanned
record probes this index once with the dynamic-threshold merge to find
both the clusters ``J(r)`` it must join with (word-union overlap >= T)
and its home cluster ``h(r)`` (most similar by overlap/union ratio); the
triple ``(r, h(r), J(r))`` is appended to the pInfo disk store. No pairs
are produced yet.

**Phase 2 — finer joins.** Clusters are packed into batches whose
record-level indexes fit in ``M`` together; pInfo is split per batch.
Within a batch, entries are replayed in scan order: the record is fetched
from the disk record store, probed against each join cluster's index
(MergeOpt, exact thresholds), and then inserted into its home cluster's
index if that cluster lives in this batch. Because phase-1 processing
order is preserved, every earlier record is already in its home index
when a later record probes it — the join is exact.

With ``M >= W`` the method degrades gracefully to Probe-Cluster (§3.4):
one batch, every record in ``J``-range clusters probed in memory.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.core.base import SetJoinAlgorithm
from repro.core.clusters import Cluster, ClusterSet
from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.merge_dynamic import merge_dynamic
from repro.core.merge_opt import merge_opt
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.partition.batching import plan_batches
from repro.partition.pinfo import PartitionEntry, PartitionInfoStore
from repro.predicates.base import WEIGHT_EPS, BoundPredicate
from repro.storage.record_store import DiskRecordStore
from repro.utils.counters import CostCounters

__all__ = ["ClusterMemJoin", "MemoryBudget"]


@dataclass(frozen=True)
class MemoryBudget:
    """Index memory budget in word occurrences (the paper's unit ``M``).

    ``fraction_of_full(dataset)`` builds the budget Fig. 11 sweeps over:
    the x-axis "index size as a fraction of maximum needed".
    """

    max_index_entries: int

    def __post_init__(self):
        if self.max_index_entries < 1:
            raise ValueError(
                f"budget must be >= 1 word occurrence, got {self.max_index_entries}"
            )

    @staticmethod
    def fraction_of_full(dataset: Dataset, fraction: float) -> "MemoryBudget":
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        full = max(dataset.total_word_occurrences(), 1)
        return MemoryBudget(max(1, int(full * fraction)))


class ClusterMemJoin(SetJoinAlgorithm):
    """Two-phase limited-memory join (Algorithm 2).

    Args:
        budget: the index memory budget ``M``.
        sort: pre-sort records by decreasing norm (Algorithm 2's optional
            external sort).
        home_similarity: similarity threshold for opening a new cluster
            while the cluster budget ``Ng`` lasts.
        initial_threshold_fraction: dynamic-probe starting threshold as a
            fraction of ``T(r, I)``.
        workdir: directory for the pInfo file and the disk record store
            (a temporary directory is used and cleaned up by default).
    """

    #: ClusterMem honours its memory budget structurally; the runtime
    #: memory check (which compares *cumulative* insert counters) is
    #: disabled for it — see JoinContext.tick.
    respects_memory_budget = True

    def __init__(
        self,
        budget: MemoryBudget,
        sort: bool = True,
        home_similarity: float = 0.5,
        initial_threshold_fraction: float = 0.2,
        workdir: str | None = None,
    ):
        self.budget = budget
        self.sort = sort
        self.home_similarity = home_similarity
        self.initial_threshold_fraction = initial_threshold_fraction
        self.workdir = workdir
        self.name = "cluster-mem"
        self.last_assignment: dict[int, int] = {}

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        owns_workdir = self.workdir is None
        workdir = self.workdir or tempfile.mkdtemp(prefix="repro-clustermem-")
        try:
            return self._run_in(workdir, dataset, bound, counters)
        finally:
            if owns_workdir:
                for name in os.listdir(workdir):
                    os.remove(os.path.join(workdir, name))
                os.rmdir(workdir)

    def _run_in(
        self,
        workdir: str,
        dataset: Dataset,
        bound: BoundPredicate,
        counters: CostCounters,
    ) -> list[MatchPair]:
        n_records = len(dataset)
        if n_records == 0:
            return []
        # Preprocessing pass: N, W (§4.1).
        total_occurrences = max(dataset.total_word_occurrences(), 1)
        m = self.budget.max_index_entries
        ng = max(1, round(n_records * m / total_occurrences))
        nr = max(1, ng)
        counters.extra["Ng"] = ng
        counters.extra["NR"] = nr

        if self.sort:
            order = sorted(range(n_records), key=lambda rid: (-bound.norm(rid), rid))
        else:
            order = list(range(n_records))

        store = DiskRecordStore.from_records(dataset.records, os.path.join(workdir, "records.dat"))
        pinfo = PartitionInfoStore(os.path.join(workdir, "pinfo.dat"))
        try:
            clusters = self._phase_one(
                dataset, bound, order, ng, nr, pinfo, counters
            )
            counters.extra["phase1_index_entries"] = clusters.index.n_entries
            counters.extra["clusters"] = len(clusters)
            pairs = self._phase_two(
                dataset, bound, order, clusters, pinfo, store, counters
            )
        finally:
            counters.disk_reads += store.fetches
            counters.extra["disk_seeks"] = store.seeks
            store.unlink()
            pinfo.unlink()
            for batch_file in list(os.listdir(workdir)):
                if batch_file.startswith("pinfo.dat.batch"):
                    os.remove(os.path.join(workdir, batch_file))
        return pairs

    # ------------------------------------------------------------------
    # Phase 1: data partitioning (§4.1)
    # ------------------------------------------------------------------

    def _phase_one(
        self,
        dataset: Dataset,
        bound: BoundPredicate,
        order: list[int],
        ng: int,
        nr: int,
        pinfo: PartitionInfoStore,
        counters: CostCounters,
    ) -> ClusterSet:
        clusters = ClusterSet()
        # Hard per-cluster cap on the phase-2 record-level index size
        # (in word occurrences). The paper caps members at NR and notes
        # recursive partitioning would handle the overflow case; capping
        # the index size directly gives the same guarantee without
        # recursion: every cluster's fine index fits the batch budget.
        index_cap = self.budget.max_index_entries
        index_sizes: list[int] = []
        for position, rid in enumerate(order):
            # Phase 1 emits no pairs: an interruption here leaves any
            # prior checkpoint valid (phase 1 is replayed in full on
            # resume; it is deterministic for a fixed dataset/config).
            self._tick(counters)
            tokens = dataset[rid]
            scores = bound.cached_score_vector(rid)
            norm_r = bound.norm(rid)
            counters.probes += 1
            joins, home = self._probe_phase_one(
                clusters, tokens, scores, norm_r, bound, nr, counters
            )
            target: Cluster | None = None
            if (
                home is not None
                and home[1] >= self.home_similarity
                and index_sizes[home[0]] + len(tokens) <= index_cap
            ):
                target = clusters[home[0]]
            if target is None:
                if len(clusters) < ng:
                    target = clusters.new_cluster()
                    index_sizes.append(0)
                    counters.clusters_created += 1
                elif (
                    home is not None
                    and index_sizes[home[0]] + len(tokens) <= index_cap
                ):
                    target = clusters[home[0]]
                else:
                    # Forced overflow: smallest cluster that still fits;
                    # if none fits (a record alone can exceed a tiny
                    # budget), open an over-budget cluster anyway rather
                    # than lose the record.
                    fitting = [
                        cluster
                        for cluster in clusters.clusters
                        if index_sizes[cluster.cid] + len(tokens) <= index_cap
                    ]
                    if fitting:
                        target = min(fitting, key=len)
                    else:
                        target = clusters.new_cluster()
                        index_sizes.append(0)
                        counters.clusters_created += 1
            index_sizes[target.cid] += len(tokens)
            clusters.assign(target, position, rid, tokens, scores, norm_r)
            self.last_assignment[rid] = target.cid
            pinfo.append(
                PartitionEntry(
                    position=position,
                    rid=rid,
                    home=target.cid,
                    joins=tuple(sorted(set(joins))),
                )
            )
            counters.disk_appends += 1
        pinfo.finish()
        return clusters

    def _probe_phase_one(
        self,
        clusters: ClusterSet,
        tokens: tuple[int, ...],
        scores: tuple[float, ...],
        norm_r: float,
        bound: BoundPredicate,
        nr: int,
        counters: CostCounters,
    ) -> tuple[list[int], tuple[int, float] | None]:
        if not clusters.clusters:
            return [], None
        lists = clusters.index.probe_lists(tokens, scores)
        if not lists:
            return [], None
        join_threshold = bound.index_threshold(norm_r, clusters.index.min_norm)
        initial = self.initial_threshold_fraction * join_threshold
        state = {
            "best_cid": -1,
            "best_similarity": -1.0,
            "joins": [],
            "threshold": initial,
        }

        def on_candidate(cid: int, weight: float) -> float:
            cluster = clusters[cid]
            if weight >= bound.threshold(norm_r, cluster.min_member_norm) - WEIGHT_EPS:
                state["joins"].append(cid)
            if len(cluster) < nr:
                union = norm_r + cluster.union_norm - weight
                similarity = weight / union if union > 0 else 0.0
                if similarity > state["best_similarity"]:
                    state["best_similarity"] = similarity
                    state["best_cid"] = cid
                proposal = (state["threshold"] + weight) / 2.0
                state["threshold"] = min(
                    max(state["threshold"], proposal), join_threshold
                )
            return state["threshold"]

        merge_dynamic(lists, initial, join_threshold, on_candidate, counters)
        home = None
        if state["best_cid"] >= 0:
            home = (state["best_cid"], state["best_similarity"])
        return state["joins"], home

    # ------------------------------------------------------------------
    # Phase 2: finer joins (§4.2)
    # ------------------------------------------------------------------

    def _phase_two(
        self,
        dataset: Dataset,
        bound: BoundPredicate,
        order: list[int],
        clusters: ClusterSet,
        pinfo: PartitionInfoStore,
        store: DiskRecordStore,
        counters: CostCounters,
    ) -> list[MatchPair]:
        index_sizes = [
            sum(len(dataset[rid]) for rid in cluster.rids)
            for cluster in clusters.clusters
        ]
        assignment = plan_batches(index_sizes, self.budget.max_index_entries)
        n_batches = (max(assignment) + 1) if assignment else 0
        counters.extra["batches"] = n_batches
        batch_of_cluster = dict(enumerate(assignment))
        batch_files = pinfo.split(batch_of_cluster, n_batches)

        band = bound.band_filter()
        pairs: list[MatchPair] = []

        def scan_entries():
            """Flat (batch, entry) stream: phase 2's scan positions.

            Phase 1 is deterministic, so these positions line up across
            runs — the driver's checkpoint/resume replay keys on them.
            """
            for batch_idx, path in enumerate(batch_files):
                for entry in PartitionInfoStore.scan_file(path):
                    yield batch_idx, entry

        current_batch = -1
        indexes: dict[int, ScoredInvertedIndex] = {}
        for _position, (batch_idx, entry), replay in self._drive(
            scan_entries(), counters, pairs
        ):
            if batch_idx != current_batch:
                indexes = {}
                current_batch = batch_idx
            tokens = store.fetch(entry.rid)
            scores = bound.cached_score_vector(entry.rid)
            norm_r = bound.norm(entry.rid)
            if not replay:
                for cid in entry.joins:
                    if batch_of_cluster[cid] != batch_idx:
                        continue
                    cluster_index = indexes.get(cid)
                    if cluster_index is None or len(cluster_index) == 0:
                        continue
                    self._probe_batch_cluster(
                        cluster_index, entry.rid, tokens, scores, norm_r,
                        bound, band, order, counters, pairs,
                    )
            if entry.home >= 0:
                home_index = indexes.get(entry.home)
                if home_index is None:
                    home_index = ScoredInvertedIndex()
                    indexes[entry.home] = home_index
                home_index.insert(entry.position, tokens, scores, norm_r)
                counters.index_entries += len(tokens)
        return pairs

    def _probe_batch_cluster(
        self,
        cluster_index: ScoredInvertedIndex,
        rid: int,
        tokens: tuple[int, ...],
        scores: tuple[float, ...],
        norm_r: float,
        bound: BoundPredicate,
        band,
        order: list[int],
        counters: CostCounters,
        pairs: list[MatchPair],
    ) -> None:
        counters.cluster_probes += 1
        lists = cluster_index.probe_lists(tokens, scores)
        if not lists:
            return

        def threshold_of(pos: int) -> float:
            return bound.threshold(norm_r, bound.norm(order[pos]))

        accept = None
        if band is not None:
            keys = band.keys
            radius = band.radius + 1e-12
            key_r = keys[rid]

            def accept(pos: int) -> bool:
                return abs(keys[order[pos]] - key_r) <= radius

        index_threshold = bound.index_threshold(norm_r, cluster_index.min_norm)
        candidates = merge_opt(lists, index_threshold, threshold_of, counters, accept)
        for pos, _weight in candidates:
            sid = order[pos]
            self._verify_pair(bound, min(rid, sid), max(rid, sid), counters, pairs)
