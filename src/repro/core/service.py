"""Incremental similarity-index service.

The paper's introduction motivates set joins with DBMSs that must serve
similarity *queries* over set-valued columns, not only batch joins.
This module packages the online probe as a service: add records one at
a time, query any record-shaped set against everything added so far,
and persist/restore the whole index. The probe per query/add is the
same MergeOpt machinery the batch joins use.
"""

from __future__ import annotations

import copy
import threading
from collections.abc import Sequence
from contextlib import contextmanager

from repro.core.accumulator import (
    ScoreAccumulator,
    accumulate_merge_opt,
    resolve_merge_backend,
    use_accumulator,
)
from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.merge_opt import merge_opt
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.filters.adapters import adapter_for
from repro.filters.bitmap import SignatureStore, resolve_bitmap_filter
from repro.filters.controller import AdaptiveController, NullController
from repro.predicates.base import WEIGHT_EPS, SimilarityPredicate
from repro.runtime.errors import (
    ConcurrentMutation,
    ReadOnlyIndex,
    SnapshotCorrupted,
    SnapshotEncodingError,
)
from repro.runtime.rwlock import RWLock
from repro.runtime.snapshot import canonical_json, read_snapshot, write_snapshot
from repro.utils.counters import CostCounters

__all__ = ["SimilarityIndex"]

#: Snapshot ``kind`` tag for persisted indexes.
_SNAPSHOT_KIND = "similarity-index"


class _TailSequence:
    """Read-only view of a list with one extra trailing element.

    Freezes the base length at construction, so concurrent growth of the
    underlying list (which cannot happen under the service's lock, but
    could under :class:`~repro.runtime.rwlock.NullRWLock`) never leaks
    into an in-flight probe.
    """

    __slots__ = ("_base", "_tail", "_n")

    def __init__(self, base: list, tail, n: int):
        self._base = base
        self._tail = tail
        self._n = n

    def __len__(self) -> int:
        return self._n + 1

    def __getitem__(self, i: int):
        if i == self._n or i == -1:
            return self._tail
        return self._base[i]

    def __iter__(self):
        for i in range(self._n):
            yield self._base[i]
        yield self._tail


class _ProbeView:
    """Read-only :class:`Dataset` facade: shared records plus one probe.

    Queries score the probe record as if it were record ``len(base)``
    without ever touching the shared dataset; corpus statistics
    (``frequency``, and anything predicates captured at bind time) stay
    those of the indexed corpus — the documented frozen-stats service
    semantics.
    """

    __slots__ = ("_base", "_record", "_payload", "_n")

    def __init__(self, base: Dataset, record: tuple[int, ...], payload):
        self._base = base
        self._record = record
        self._payload = payload
        self._n = len(base)

    def __len__(self) -> int:
        return self._n + 1

    def __getitem__(self, rid: int) -> tuple[int, ...]:
        if rid == self._n:
            return self._record
        return self._base.records[rid]

    def __iter__(self):
        return iter(self.records)

    @property
    def records(self) -> _TailSequence:
        return _TailSequence(self._base.records, self._record, self._n)

    @property
    def vocabulary(self):
        return self._base.vocabulary

    @property
    def frequency(self):
        return self._base.frequency

    def payload(self, rid: int):
        if rid == self._n:
            return self._payload
        return self._base.payload(rid)

    def retarget(self, record: tuple[int, ...], payload) -> None:
        """Point the view at a new probe (``query_batch`` clone reuse).

        Only valid while the base dataset cannot grow (under the
        service's read lock), since ``_n`` stays frozen.
        """
        self._record = record
        self._payload = payload


class _CacheOverlay:
    """Per-record cache list with a private slot for the probe record.

    Reads and (idempotent, memoizing) writes for indexed records go to
    the shared list — concurrent queries memoize identical values, so
    those races are benign — while the probe's slot lives only in this
    overlay and dies with the query.
    """

    __slots__ = ("_base", "_n", "_tail")

    def __init__(self, base: list):
        self._base = base
        self._n = len(base)
        self._tail = [None]

    def __len__(self) -> int:
        return self._n + 1

    def __getitem__(self, i: int):
        if i >= self._n:
            return self._tail[i - self._n]
        return self._base[i]

    def __setitem__(self, i: int, value) -> None:
        if i >= self._n:
            self._tail[i - self._n] = value
        else:
            self._base[i] = value

    def extend(self, items) -> None:
        self._tail.extend(items)

    def reset_tail(self) -> None:
        """Forget the probe slot (``query_batch`` clone reuse)."""
        self._tail = [None]


def _probe_bound(base_bound, record: tuple[int, ...], payload):
    """A disposable bound-predicate clone covering the probe record.

    Shares the base bound's bind-time statistics and memoized caches by
    reference (reads of indexed records stay cached across queries) but
    redirects the dataset to a :class:`_ProbeView` and the probe's cache
    slot to a private overlay, so scoring the probe mutates nothing
    shared. Band filters are rebuilt per clone: their key tuples must
    cover the probe rid.
    """
    clone = copy.copy(base_bound)
    clone.dataset = _ProbeView(base_bound.dataset, record, payload)
    clone._score_vectors = _CacheOverlay(base_bound._score_vectors)
    clone._norms = _CacheOverlay(base_bound._norms)
    clone._score_maps = _CacheOverlay(base_bound._score_maps)
    clone._signatures = _CacheOverlay(base_bound._signatures)
    if hasattr(clone, "_band"):
        clone._band = None
    return clone


def _retarget_probe(clone, record: tuple[int, ...], payload) -> None:
    """Reuse a :func:`_probe_bound` clone for the next batch item.

    Clears exactly the per-probe state the clone owns — the view's tail
    record, the overlay tail slots, and any rebuilt band filter — and
    nothing shared. Only sound while the base dataset length is fixed
    (``query_batch`` holds the read lock for the whole batch).
    """
    clone.dataset.retarget(record, payload)
    clone._score_vectors.reset_tail()
    clone._norms.reset_tail()
    clone._score_maps.reset_tail()
    clone._signatures.reset_tail()
    if hasattr(clone, "_band"):
        clone._band = None


class SimilarityIndex:
    """A growable index answering similarity queries exactly.

    Args:
        predicate: the join condition queries are evaluated under.
        tokenizer: optional callable turning raw strings into token
            lists; when given, ``add``/``query`` accept strings.
        lock: reader–writer lock guarding the shared state; the default
            :class:`~repro.runtime.rwlock.RWLock` makes the instance
            thread-safe. Pass
            :class:`~repro.runtime.rwlock.NullRWLock` only for
            single-threaded use where lock overhead matters.
        merge_backend: probe-merge engine — ``"heap"``,
            ``"accumulator"``, or the adaptive default ``"auto"`` (see
            :mod:`repro.core.accumulator`). The accumulator buffer is
            per worker thread, so concurrent queries never share one.

    Notes:
        Predicates whose scores depend on corpus statistics (TF-IDF
        cosine) are rebound as the corpus grows only when ``rebind()``
        is called; for streaming use, prefer corpus-independent
        predicates or pass precomputed ``stats``.

    Concurrency:
        ``query`` never mutates shared state — the probe record is
        scored against a read-only dataset view — so any number of
        queries run in parallel under the lock's read side, while
        ``add``/``rebind`` (and ``save``'s consistent read) coordinate
        through it. Re-entry from the same thread (e.g. a tokenizer or
        codec that calls back into the service) cannot be served without
        deadlock or corruption and raises
        :class:`~repro.runtime.errors.ConcurrentMutation`; the same
        error doubles as a last-resort invariant check that trips when
        overlapping operations are *observed* despite a missing lock
        (see ``NullRWLock``).
    """

    def __init__(
        self,
        predicate: SimilarityPredicate,
        tokenizer=None,
        lock=None,
        bitmap_filter=None,
        merge_backend=None,
        vocabulary: dict[str, int] | None = None,
    ):
        self.predicate = predicate
        self.tokenizer = tokenizer
        self.merge_backend = resolve_merge_backend(merge_backend)
        self._token_lists: list[list[str]] = []
        self._payloads: list = []
        #: ``vocabulary=`` lets several indexes share one token-id space
        #: (mirroring ``Dataset.from_token_lists``): the sharded serving
        #: tier partitions records across indexes but needs one token to
        #: mean one id everywhere for scores to be globally comparable.
        #: Callers sharing a vocabulary must serialize their mutations
        #: (the sharded server funnels every ``add`` through one lock).
        self._vocabulary: dict[str, int] = (
            vocabulary if vocabulary is not None else {}
        )
        self._dataset = Dataset([], vocabulary=self._vocabulary, payloads=[])
        self._bound = None
        self._index = ScoredInvertedIndex()
        self.counters = CostCounters()
        self._rwlock = lock if lock is not None else RWLock()
        self._local = threading.local()
        self._counters_lock = threading.Lock()
        #: Name of the mutation currently holding the write side, if any
        #: — the invariant the ConcurrentMutation guard checks.
        self._in_flight: str | None = None
        #: Bitmap candidate filter (:mod:`repro.filters`): signatures
        #: are maintained alongside the inverted index — extended on
        #: every ``add``, rebuilt on ``rebind``, persisted in snapshots.
        self._bitmap_config = resolve_bitmap_filter(bitmap_filter)
        self._bitmap_store: SignatureStore | None = None
        self._bitmap_adapter = None
        self._bitmap_controller = None
        #: Monotonic mutation stamp: bumped by every ``add``/``rebind``.
        #: External result caches (:class:`repro.serving.cache.QueryCache`)
        #: key on it to invalidate on any index mutation.
        self._generation = 0
        #: True for instances restored with ``load(..., mmap=True)``:
        #: the index *is* the write-once mapped file, so mutations raise
        #: :class:`~repro.runtime.errors.ReadOnlyIndex`.
        self._read_only = False

    @property
    def generation(self) -> int:
        """Mutation stamp; changes whenever cached results could stale."""
        return self._generation

    @contextmanager
    def _no_reentry(self, operation: str):
        """Reject same-thread re-entry before it can touch the lock."""
        prior = getattr(self._local, "operation", None)
        if prior is not None:
            raise ConcurrentMutation(operation, prior)
        self._local.operation = operation
        try:
            yield
        finally:
            self._local.operation = None

    @contextmanager
    def _read_locked(self, operation: str):
        """Shared-mode guard for operations that only read state."""
        with self._no_reentry(operation):
            with self._rwlock.read_locked():
                in_flight = self._in_flight
                if in_flight is not None:
                    # Unreachable under a real RWLock; trips when a
                    # missing lock lets a mutation overlap this read.
                    raise ConcurrentMutation(operation, in_flight)
                yield

    @contextmanager
    def _write_locked(self, operation: str):
        """Exclusive-mode guard for operations that mutate state."""
        with self._no_reentry(operation):
            with self._rwlock.write_locked():
                in_flight = self._in_flight
                if in_flight is not None:
                    raise ConcurrentMutation(operation, in_flight)
                if self._rwlock.active_readers:
                    raise ConcurrentMutation(operation, "query")
                self._in_flight = operation
                try:
                    yield
                finally:
                    self._in_flight = None

    def __len__(self) -> int:
        return len(self._dataset)

    # ------------------------------------------------------------------

    def _tokens_of(self, item) -> list[str]:
        if self.tokenizer is not None and isinstance(item, str):
            return list(self.tokenizer(item))
        return [str(token) for token in item]

    def _record_of(self, tokens: Sequence[str]) -> tuple[int, ...]:
        """Token ids for an *inserted* record, extending the vocabulary."""
        ids = set()
        for token in tokens:
            token_id = self._vocabulary.get(token)
            if token_id is None:
                token_id = len(self._vocabulary)
                self._vocabulary[token] = token_id
            ids.add(token_id)
        return tuple(sorted(ids))

    def _probe_record_of(
        self, tokens: Sequence[str], counters: CostCounters
    ) -> tuple[int, ...]:
        """Token ids for a *probe* record, without touching the vocabulary.

        Tokens the index has never seen are **not** silently dropped:
        each distinct unknown token gets an ephemeral id past the end of
        the vocabulary, so it still contributes to the probe's norm
        (set size / total weight) exactly as an indexed-but-unmatched
        token would — dropping them would inflate Jaccard/Dice scores.
        Ephemeral ids have no posting lists and can never match.
        The number of distinct unknown tokens is recorded in
        ``counters.unknown_query_tokens`` so operators can observe
        vocabulary drift between the indexed corpus and live queries.
        """
        ids = set()
        ephemeral: dict[str, int] = {}
        for token in tokens:
            token_id = self._vocabulary.get(token)
            if token_id is None:
                token_id = ephemeral.get(token)
                if token_id is None:
                    token_id = len(self._vocabulary) + len(ephemeral)
                    ephemeral[token] = token_id
            ids.add(token_id)
        counters.unknown_query_tokens += len(ephemeral)
        return tuple(sorted(ids))

    def rebind(self) -> None:
        """Recompute predicate statistics over the current corpus.

        Also rebuilds the inverted index with the refreshed scores:
        entries inserted before the rebind carry the statistics that
        were current *at insert time*, and probing them with a freshly
        bound predicate could silently drop true matches for
        corpus-dependent predicates (TF-IDF cosine, weighted overlap).
        """
        if self._read_only:
            raise ReadOnlyIndex("rebind", self._index.path)
        with self._write_locked("rebind"):
            self._rebind()
            self._rebuild_index()
            self._rebuild_bitmap()
            self._generation += 1

    def _rebind(self) -> None:
        self._bound = self.predicate.bind(self._dataset)

    def _rebuild_index(self) -> None:
        """Re-insert every record under the current bound's scores."""
        index = ScoredInvertedIndex()
        for rid in range(len(self._dataset)):
            index.insert(
                rid,
                self._dataset[rid],
                self._bound.cached_score_vector(rid),
                self._bound.norm(rid),
                self.counters,
            )
        self._index = index

    def _ensure_bound(self):
        if self._bound is None:
            self._rebind()
        else:
            self._bound.extend_to(len(self._dataset))
        return self._bound

    # ------------------------------------------------------------------
    # Bitmap filter maintenance (write-locked callers only)
    # ------------------------------------------------------------------

    def _rebuild_bitmap(self) -> None:
        """Recompute signatures from scratch (scores may have changed)."""
        self._bitmap_store = None
        self._bitmap_adapter = None
        self._bitmap_controller = None
        self._extend_bitmap()

    def _extend_bitmap(self) -> None:
        """Bring the signature store up to the current dataset length.

        No-op when the filter is off or the predicate has no sound
        adapter. The adaptive controller persists across incremental
        adds (the data distribution rarely shifts per record) but is
        reset by :meth:`_rebuild_bitmap`.
        """
        if self._bitmap_config is None or self._bound is None:
            return
        if self._bitmap_adapter is None:
            self._bitmap_adapter = adapter_for(self._bound)
            if self._bitmap_adapter is None:
                return
        if self._bitmap_store is None:
            self._bitmap_store = SignatureStore(self._bitmap_config.width)
        if self._bitmap_controller is None:
            config = self._bitmap_config
            self._bitmap_controller = (
                AdaptiveController(config.sample_size, config.min_reject_rate)
                if config.adaptive
                else NullController()
            )
        if len(self._bitmap_store) < len(self._dataset):
            self._bitmap_store.extend_from(self._bound, len(self._bitmap_store))

    def bitmap_state(self) -> dict | None:
        """Filter introspection for the health endpoint (None when off)."""
        if self._bitmap_config is None:
            return None
        state = {
            "width": self._bitmap_config.width,
            "signatures": len(self._bitmap_store)
            if self._bitmap_store is not None
            else 0,
        }
        if self._bitmap_controller is not None:
            state["controller"] = self._bitmap_controller.state()
        return state

    # ------------------------------------------------------------------

    def add(self, item, payload=None) -> int:
        """Insert a record; returns its rid."""
        if self._read_only:
            raise ReadOnlyIndex("add", self._index.path)
        with self._write_locked("add"):
            tokens = self._tokens_of(item)
            record = self._record_of(tokens)
            rid = len(self._dataset)
            self._token_lists.append(tokens)
            self._dataset.records.append(record)
            self._dataset.payloads.append(payload if payload is not None else item)
            self._dataset._frequency = None  # invalidate cached stats
            bound = self._ensure_bound()
            self._index.insert(
                rid, record, bound.cached_score_vector(rid), bound.norm(rid), self.counters
            )
            self._extend_bitmap()
            self._generation += 1
            return rid

    def query(self, item, context=None) -> list[MatchPair]:
        """All indexed records matching ``item`` under the predicate.

        The probe item gets the temporary rid ``len(self)`` (it is not
        inserted); returned pairs carry ``rid_a`` = matched record and
        ``rid_b`` = that temporary rid. Shared state is never mutated,
        so queries from many threads run concurrently.

        Args:
            context: optional
                :class:`~repro.runtime.context.JoinContext` checked at
                query start and then once per verified candidate, so a
                deadline or cancellation interrupts even a pathological
                probe mid-merge (:class:`JoinTimeout` /
                :class:`JoinCancelled`).
        """
        with self._read_locked("query"):
            counters = CostCounters()
            try:
                return self._query(item, counters, context)
            finally:
                with self._counters_lock:
                    self.counters.merge(counters)

    def query_batch(self, items, context=None) -> list[list[MatchPair]]:
        """Query many items under one read-lock acquisition.

        Returns one result list per item, in order — each identical to
        what :meth:`query` would return for that item. Besides the
        single lock round-trip, the per-probe machinery (the dataset
        view and cache overlays of the bound-predicate clone) is built
        once and retargeted per item instead of rebuilt, which is the
        point of batching: the per-query constant cost is paid once.

        A ``context`` deadline spans the whole batch (anchored at the
        first item, checked per verified candidate throughout).
        """
        with self._read_locked("query_batch"):
            counters = CostCounters()
            reusable: list = []
            try:
                return [
                    self._query(item, counters, context, reusable)
                    for item in items
                ]
            finally:
                with self._counters_lock:
                    self.counters.merge(counters)

    def _query(
        self, item, counters: CostCounters, context, reusable: list | None = None
    ) -> list[MatchPair]:
        if context is not None:
            context.start()
            context.tick(counters, check_memory=False)
        tokens = self._tokens_of(item)
        record = self._probe_record_of(tokens, counters)
        counters.probes += 1
        probe_rid = len(self._dataset)
        if probe_rid == 0:
            return []
        if reusable:
            bound = reusable[0]
            _retarget_probe(bound, record, item)
        else:
            base_bound = self._bound
            if base_bound is None:
                # Cold path: records exist but no bound yet (cannot happen
                # through the public API). Bind locally; do not publish —
                # the read side must stay mutation-free.
                base_bound = self.predicate.bind(self._dataset)
            bound = _probe_bound(base_bound, record, item)
            if reusable is not None:
                reusable.append(bound)
        lists = self._index.probe_lists(record, bound.cached_score_vector(probe_rid))
        if not lists:
            return []
        norm_r = bound.norm(probe_rid)
        band = bound.band_filter()
        accept = None
        if band is not None:
            keys = band.keys
            radius = band.radius + 1e-12
            key_r = keys[probe_rid]

            def accept(sid: int) -> bool:
                return abs(keys[sid] - key_r) <= radius

        # Bitmap candidate filter: the probe's signature is ephemeral
        # (never stored); extra unseen-token bits only loosen the
        # intersection bound, so pruning stays sound. The controller is
        # shared across queries — racy int updates under concurrent
        # readers are benign (see repro/filters/controller.py).
        store = self._bitmap_store
        controller = self._bitmap_controller
        probe_entry = None
        const_threshold = None
        if (
            store is not None
            and controller is not None
            and controller.active
            and len(store) == probe_rid
        ):
            probe_entry = store.components_for(
                record, bound.cached_score_vector(probe_rid)
            )
            if self._bitmap_adapter.constant_threshold:
                const_threshold = bound.threshold(0.0, 0.0)

        index_threshold = bound.index_threshold(norm_r, self._index.min_norm)
        threshold_of = lambda sid: bound.threshold(norm_r, bound.norm(sid))  # noqa: E731
        if use_accumulator(self.merge_backend, lists):
            candidates = accumulate_merge_opt(
                lists, index_threshold, threshold_of, counters, accept,
                acc=self._thread_accumulator(probe_rid),
            )
        else:
            candidates = merge_opt(
                lists, index_threshold, threshold_of, counters, accept
            )
        matches = []
        for sid, _weight in candidates:
            if context is not None:
                context.tick(counters, check_memory=False)
            if probe_entry is not None:
                counters.bitmap_checks += 1
                cap = store.weight_cap_entry(probe_entry, sid)
                threshold = (
                    const_threshold
                    if const_threshold is not None
                    else bound.threshold(norm_r, bound.norm(sid))
                )
                rejected = cap < threshold - WEIGHT_EPS
                if not controller.decided:
                    controller.observe(rejected, counters)
                if rejected:
                    counters.bitmap_rejects += 1
                    continue
            counters.pairs_verified += 1
            ok, similarity = bound.verify(sid, probe_rid)
            if ok:
                matches.append(MatchPair(sid, probe_rid, similarity))
        return matches

    def _thread_accumulator(self, capacity: int) -> ScoreAccumulator:
        """This thread's dense merge buffer, grown to ``capacity`` slots.

        Thread-local so concurrent queries under the read lock never
        share epochs or weights; a forked worker process starts with a
        fresh ``threading.local`` and therefore a fresh buffer.
        """
        acc = getattr(self._local, "accumulator", None)
        if acc is None:
            acc = ScoreAccumulator(capacity)
            self._local.accumulator = acc
        else:
            acc.ensure(capacity)
        return acc

    def payload(self, rid: int):
        return self._dataset.payload(rid)

    def export_records(self, start: int = 0) -> list[tuple[list[str], object]]:
        """Point-in-time copy of ``(tokens, payload)`` from ``start`` on.

        Taken under the read lock, so the slice is consistent against
        concurrent ``add``s. Feeding each pair back through
        ``add(tokens, payload=payload)`` reproduces the records exactly
        (token lists bypass the tokenizer) — the seam the zero-downtime
        generation builder uses to snapshot a shard and to catch up the
        adds that landed while it was building.
        """
        with self._read_locked("export"):
            return [
                (list(self._token_lists[rid]), self._dataset.payload(rid))
                for rid in range(start, len(self._dataset))
            ]

    def counters_snapshot(self) -> dict:
        """A consistent plain-dict copy of the cost counters.

        Taken under the read lock (excludes writers) and the counters
        lock (excludes in-flight query merges), so the numbers are a
        coherent point-in-time view — the health endpoint's source.
        """
        with self._read_locked("stats"):
            with self._counters_lock:
                return self.counters.as_dict()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @staticmethod
    def _tagged_payload(rid: int, payload, codec) -> list:
        """``["json", value]`` / ``["codec", text]`` snapshot entry."""
        try:
            canonical_json(payload)
        except SnapshotEncodingError:
            if codec is None:
                raise SnapshotEncodingError(
                    f"payload of record {rid} ({type(payload).__name__})"
                    " is not JSON-representable; pass codec= to"
                    " SimilarityIndex.save/load to round-trip it"
                ) from None
            encoded = codec.encode(payload)
            if not isinstance(encoded, str):
                raise SnapshotEncodingError(
                    f"codec.encode must return str, got"
                    f" {type(encoded).__name__} for record {rid}"
                )
            return ["codec", encoded]
        return ["json", payload]

    def save(self, path: str, codec=None, fs=None, format: str = "snapshot") -> None:
        """Crash-safely serialize the index to ``path``.

        ``format="snapshot"`` (the default) writes the JSON snapshot of
        :mod:`repro.runtime.snapshot`: records and payloads only, with
        the inverted index rebuilt on load. ``format="mmap"`` writes the
        columnar :mod:`repro.storage.mmap_index` file instead — postings,
        records, payloads, and vocabulary land as mapped sections, so
        ``load(..., mmap=True)`` opens it in milliseconds and serves
        queries straight off the file with no rebuild. Both formats are
        versioned, checksummed, and written with write-to-temp + atomic
        rename: a crash at any point leaves the previous file loadable.
        Runs under the read lock: concurrent queries proceed, concurrent
        ``add``/``rebind`` wait.

        Args:
            codec: optional payload codec with ``encode(payload) -> str``
                and ``decode(text) -> payload`` for payloads JSON cannot
                represent. Without one, a non-JSON payload raises
                :class:`~repro.runtime.errors.SnapshotEncodingError`
                instead of being silently coerced (and lost) as ``str``.
            fs: filesystem shim for fault injection in tests
                (``snapshot`` format only).
            format: ``"snapshot"`` or ``"mmap"``.
        """
        if format not in ("snapshot", "mmap"):
            raise ValueError(
                f"unknown save format {format!r}; expected 'snapshot' or 'mmap'"
            )
        if format == "mmap":
            if fs is not None:
                raise ValueError(
                    "the fault-injection fs shim is only supported for"
                    " format='snapshot'"
                )
            with self._read_locked("save"):
                self._save_mmap(path, codec)
            return
        with self._read_locked("save"):
            payloads = [
                self._tagged_payload(rid, payload, codec)
                for rid, payload in enumerate(self._dataset.payloads)
            ]
            token_lists = (
                self._token_lists
                if isinstance(self._token_lists, list)
                # A mapped (read-only) service holds a lazy on-file view;
                # materialize it for the JSON snapshot.
                else [list(tokens) for tokens in self._token_lists]
            )
            state = {"token_lists": token_lists, "payloads": payloads}
            if (
                self._bitmap_store is not None
                and len(self._bitmap_store) == len(self._dataset)
            ):
                # Persist the signatures so a load with the same width
                # skips the per-token hashing pass. Optional key: old
                # snapshots load fine, and loads with a different
                # width (or filter off) just ignore it.
                state["bitmap"] = {
                    "width": self._bitmap_store.width,
                    "signatures": self._bitmap_store.signatures(),
                }
            write_snapshot(path, state, kind=_SNAPSHOT_KIND, fs=fs)

    def _save_mmap(self, path: str, codec) -> None:
        """Write the columnar mapped snapshot (read-locked caller).

        Postings are rebuilt from a *fresh* predicate bind — exactly
        what a snapshot ``load`` would compute via ``_rebind`` +
        ``_rebuild_index`` — so a service restored with ``mmap=True``
        answers queries bit-identically to one restored from the JSON
        snapshot, even when this instance's live index carries
        insert-time scores that a rebind would refresh.
        """
        import json as _json
        from array import array

        from repro.storage.mmap_index import MappedIndexWriter

        n = len(self._dataset)
        bound = self.predicate.bind(self._dataset) if n else None
        token_ids: dict[int, array] = {}
        token_scores: dict[int, array] = {}
        min_norm = float("inf")
        record_tokens = array("q")
        record_offsets = array("q", [0])
        payload_blob = bytearray()
        payload_offsets = array("q", [0])
        token_list_blob = bytearray()
        token_list_offsets = array("q", [0])
        for rid in range(n):
            record = self._dataset[rid]
            vector = bound.cached_score_vector(rid)
            for token, score in zip(record, vector):
                id_column = token_ids.get(token)
                if id_column is None:
                    id_column = array("q")
                    token_ids[token] = id_column
                    token_scores[token] = array("d")
                id_column.append(rid)
                token_scores[token].append(score)
            norm = bound.norm(rid)
            if norm < min_norm:
                min_norm = norm
            record_tokens.extend(record)
            record_offsets.append(len(record_tokens))
            entry = self._tagged_payload(rid, self._dataset.payload(rid), codec)
            payload_blob += _json.dumps(entry, separators=(",", ":")).encode("utf-8")
            payload_offsets.append(len(payload_blob))
            token_list_blob += _json.dumps(
                list(self._token_lists[rid]), separators=(",", ":")
            ).encode("utf-8")
            token_list_offsets.append(len(token_list_blob))
        vocab_by_id = [None] * len(self._vocabulary)
        for token, token_id in self._vocabulary.items():
            vocab_by_id[token_id] = token
        writer = MappedIndexWriter(path, scored=True, compressed=False)
        try:
            for token, id_column in token_ids.items():
                writer.add_posting(token, id_column, token_scores[token])
            writer.add_section("records_tokens", record_tokens.tobytes())
            writer.add_section("records_offsets", record_offsets.tobytes())
            writer.add_section("payloads", bytes(payload_blob))
            writer.add_section("payload_offsets", payload_offsets.tobytes())
            writer.add_section("token_lists", bytes(token_list_blob))
            writer.add_section("token_list_offsets", token_list_offsets.tobytes())
            writer.add_section(
                "vocab",
                _json.dumps(vocab_by_id, separators=(",", ":")).encode("utf-8"),
            )
            writer.finish(
                min_norm=min_norm, n_entities=n, meta={"kind": _SNAPSHOT_KIND}
            )
        except BaseException:
            writer.abort()
            raise

    @classmethod
    def load(
        cls,
        path: str,
        predicate: SimilarityPredicate,
        tokenizer=None,
        codec=None,
        fs=None,
        lock=None,
        bitmap_filter=None,
        merge_backend=None,
        mmap: bool = False,
    ) -> "SimilarityIndex":
        """Restore an index saved with :meth:`save`.

        Raises :class:`~repro.runtime.errors.SnapshotCorrupted` when the
        file is damaged, tampered with, of a foreign format, or its state
        shape is malformed — never a bare ``KeyError``. A snapshot whose
        payloads were written with a codec requires the same ``codec``
        here (:class:`~repro.runtime.errors.SnapshotEncodingError`
        otherwise). The restored instance is not shared until this
        returns, so restoration itself needs no locking.

        With ``bitmap_filter=`` set, signatures persisted at save time
        are restored directly when their width matches the requested
        config; otherwise (old snapshot, different width) they are
        rebuilt from the records — the filter works either way.

        With ``mmap=True`` the file must have been written by
        ``save(format='mmap')``: it is memory-mapped instead of parsed,
        the inverted index *is* the file's posting columns (nothing is
        rebuilt — open time is independent of index size, resident
        memory is the directory plus whatever postings queries touch),
        and the mapping is shared read-only across threads and fork'd
        worker processes. Query answers are bit-identical to a snapshot
        load of the same corpus. The instance is read-only —
        ``add``/``rebind`` raise
        :class:`~repro.runtime.errors.ReadOnlyIndex` — and
        ``bitmap_filter`` is unsupported (signatures are not stored in
        the mapped format; passing one raises ``ValueError``). Call
        :meth:`close` to drop the mapping.
        """
        if mmap:
            if bitmap_filter is not None:
                raise ValueError(
                    "bitmap_filter cannot be combined with mmap=True:"
                    " signatures are not stored in the mapped format (load"
                    " without mmap to rebuild them)"
                )
            if fs is not None:
                raise ValueError(
                    "the fault-injection fs shim is only supported for"
                    " snapshot loads"
                )
            return cls._load_mmap(
                path,
                predicate,
                tokenizer=tokenizer,
                codec=codec,
                lock=lock,
                merge_backend=merge_backend,
            )
        state = read_snapshot(path, kind=_SNAPSHOT_KIND, fs=fs)
        token_lists, payload_entries, bitmap_state = cls._validate_state(path, state)
        service = cls(
            predicate,
            tokenizer=tokenizer,
            lock=lock,
            bitmap_filter=bitmap_filter,
            merge_backend=merge_backend,
        )
        for tokens, entry in zip(token_lists, payload_entries):
            tag, value = entry
            if tag == "codec":
                if codec is None:
                    raise SnapshotEncodingError(
                        f"snapshot {path!r} contains codec-encoded payloads;"
                        " pass the codec used at save time"
                    )
                value = codec.decode(value)
            record = service._record_of(tokens)
            service._token_lists.append(tokens)
            service._dataset.records.append(record)
            service._dataset.payloads.append(value)
        service._dataset._frequency = None
        service._rebind()
        service._rebuild_index()
        service._restore_bitmap(bitmap_state)
        return service

    @classmethod
    def _load_mmap(
        cls, path: str, predicate, *, tokenizer, codec, lock, merge_backend
    ) -> "SimilarityIndex":
        """Open a ``save(format='mmap')`` file as a read-only service."""
        import json as _json

        from repro.storage.mmap_index import (
            MappedDataset,
            MappedInvertedIndex,
            mapped_blob_view,
            mapped_record_view,
        )

        index = MappedInvertedIndex.open(path)
        try:
            if index.meta.get("kind") != _SNAPSHOT_KIND:
                raise SnapshotCorrupted(
                    path,
                    "mapped file carries no serving state; it was not"
                    " written by SimilarityIndex.save(format='mmap')",
                )
            required = (
                "records_tokens",
                "records_offsets",
                "payloads",
                "payload_offsets",
                "token_lists",
                "token_list_offsets",
                "vocab",
            )
            missing = [name for name in required if not index.has_section(name)]
            if missing:
                raise SnapshotCorrupted(
                    path, f"missing serving sections {missing}"
                )
            try:
                vocab_by_id = _json.loads(bytes(index.section("vocab")))
            except (UnicodeDecodeError, _json.JSONDecodeError) as exc:
                raise SnapshotCorrupted(
                    path, f"'vocab' section is not valid JSON: {exc}"
                ) from exc
            if not isinstance(vocab_by_id, list) or not all(
                isinstance(token, str) for token in vocab_by_id
            ):
                raise SnapshotCorrupted(
                    path, "'vocab' section is not a list of strings"
                )
            vocabulary = {token: tid for tid, token in enumerate(vocab_by_id)}
            if len(vocabulary) != len(vocab_by_id):
                raise SnapshotCorrupted(path, "'vocab' holds duplicate tokens")

            def decode_payload(raw: bytes):
                try:
                    entry = _json.loads(raw)
                except (UnicodeDecodeError, _json.JSONDecodeError) as exc:
                    raise SnapshotCorrupted(
                        path, f"payload entry is not valid JSON: {exc}"
                    ) from exc
                if (
                    not isinstance(entry, list)
                    or len(entry) != 2
                    or entry[0] not in ("json", "codec")
                ):
                    raise SnapshotCorrupted(
                        path, "payload entry is not a tagged [kind, value] pair"
                    )
                tag, value = entry
                if tag == "codec":
                    if codec is None:
                        raise SnapshotEncodingError(
                            f"snapshot {path!r} contains codec-encoded"
                            " payloads; pass the codec used at save time"
                        )
                    return codec.decode(value)
                return value

            def decode_token_list(raw: bytes):
                try:
                    tokens = _json.loads(raw)
                except (UnicodeDecodeError, _json.JSONDecodeError) as exc:
                    raise SnapshotCorrupted(
                        path, f"token-list entry is not valid JSON: {exc}"
                    ) from exc
                if not isinstance(tokens, list) or not all(
                    isinstance(token, str) for token in tokens
                ):
                    raise SnapshotCorrupted(
                        path, "token-list entry is not a list of strings"
                    )
                return tokens

            records = mapped_record_view(index)
            payloads = mapped_blob_view(
                index, "payloads", "payload_offsets", decode_payload
            )
            token_lists = mapped_blob_view(
                index, "token_lists", "token_list_offsets", decode_token_list
            )
            if not (
                len(records) == len(payloads) == len(token_lists) == index.n_entities
            ):
                raise SnapshotCorrupted(
                    path,
                    f"serving sections disagree: {len(records)} records,"
                    f" {len(payloads)} payloads, {len(token_lists)} token"
                    f" lists, {index.n_entities} indexed entities",
                )
            service = cls(
                predicate,
                tokenizer=tokenizer,
                lock=lock,
                merge_backend=merge_backend,
                vocabulary=vocabulary,
            )
            service._dataset = MappedDataset(records, vocabulary, payloads)
            service._token_lists = token_lists
            service._index = index
            service._read_only = True
            service._rebind()
            index.attach_counters(service.counters)
            return service
        except BaseException:
            index.close()
            raise

    def close(self) -> None:
        """Release the mapped file behind a ``load(mmap=True)`` instance.

        No-op for a regular in-memory service. In-flight posting views
        keep the mapping alive until they are garbage-collected, so a
        concurrent query cannot be yanked mid-merge.
        """
        release = getattr(self._index, "close", None)
        if release is not None:
            release()

    def _restore_bitmap(self, bitmap_state: dict | None) -> None:
        """Arm the filter after a load, reusing persisted signatures when
        the snapshot's width matches the requested config."""
        if self._bitmap_config is None or self._bound is None:
            return
        if (
            bitmap_state is not None
            and bitmap_state["width"] == self._bitmap_config.width
            and len(bitmap_state["signatures"]) == len(self._dataset)
        ):
            self._bitmap_adapter = adapter_for(self._bound)
            if self._bitmap_adapter is None:
                return
            self._bitmap_store = SignatureStore.restore(
                bitmap_state["width"], bitmap_state["signatures"], self._bound
            )
        self._extend_bitmap()

    @staticmethod
    def _validate_state(path: str, state) -> tuple[list, list, dict | None]:
        """Shape-check a loaded snapshot payload (no KeyErrors)."""
        if not isinstance(state, dict):
            raise SnapshotCorrupted(path, "state is not an object")
        token_lists = state.get("token_lists")
        payload_entries = state.get("payloads")
        if not isinstance(token_lists, list) or not isinstance(payload_entries, list):
            raise SnapshotCorrupted(
                path, "state needs 'token_lists' and 'payloads' lists"
            )
        if len(token_lists) != len(payload_entries):
            raise SnapshotCorrupted(
                path,
                f"{len(token_lists)} token lists vs"
                f" {len(payload_entries)} payloads",
            )
        for i, tokens in enumerate(token_lists):
            if not isinstance(tokens, list) or not all(
                isinstance(t, str) for t in tokens
            ):
                raise SnapshotCorrupted(
                    path, f"token list {i} is not a list of strings"
                )
        for i, entry in enumerate(payload_entries):
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or entry[0] not in ("json", "codec")
                or (entry[0] == "codec" and not isinstance(entry[1], str))
            ):
                raise SnapshotCorrupted(
                    path, f"payload entry {i} is not a tagged [kind, value] pair"
                )
        bitmap_state = state.get("bitmap")
        if bitmap_state is not None:
            if (
                not isinstance(bitmap_state, dict)
                or not isinstance(bitmap_state.get("width"), int)
                or isinstance(bitmap_state.get("width"), bool)
                or not isinstance(bitmap_state.get("signatures"), list)
                or not all(
                    isinstance(sig, int) and not isinstance(sig, bool) and sig >= 0
                    for sig in bitmap_state["signatures"]
                )
            ):
                raise SnapshotCorrupted(
                    path, "'bitmap' must hold an int width and a list of int signatures"
                )
            if len(bitmap_state["signatures"]) != len(token_lists):
                raise SnapshotCorrupted(
                    path,
                    f"{len(bitmap_state['signatures'])} bitmap signatures vs"
                    f" {len(token_lists)} records",
                )
        return token_lists, payload_entries, bitmap_state
