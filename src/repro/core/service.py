"""Incremental similarity-index service.

The paper's introduction motivates set joins with DBMSs that must serve
similarity *queries* over set-valued columns, not only batch joins.
This module packages the online probe as a service: add records one at
a time, query any record-shaped set against everything added so far,
and persist/restore the whole index. The probe per query/add is the
same MergeOpt machinery the batch joins use.
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import contextmanager

from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.merge_opt import merge_opt
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.predicates.base import SimilarityPredicate
from repro.runtime.errors import (
    ConcurrentMutation,
    SnapshotCorrupted,
    SnapshotEncodingError,
)
from repro.runtime.snapshot import canonical_json, read_snapshot, write_snapshot
from repro.utils.counters import CostCounters

__all__ = ["SimilarityIndex"]

#: Snapshot ``kind`` tag for persisted indexes.
_SNAPSHOT_KIND = "similarity-index"


class SimilarityIndex:
    """A growable index answering similarity queries exactly.

    Args:
        predicate: the join condition queries are evaluated under.
        tokenizer: optional callable turning raw strings into token
            lists; when given, ``add``/``query`` accept strings.

    Notes:
        Predicates whose scores depend on corpus statistics (TF-IDF
        cosine) are rebound as the corpus grows only when ``rebind()``
        is called; for streaming use, prefer corpus-independent
        predicates or pass precomputed ``stats``.

    Concurrency:
        This class is **not thread-safe and not re-entrant**. Queries
        temporarily extend the shared dataset with the probe record and
        restore it afterwards, so overlapping operations would corrupt
        the index. Re-entry (e.g. a tokenizer or codec that calls back
        into the service, or interleaved calls from another thread that
        happen to be observed) raises
        :class:`~repro.runtime.errors.ConcurrentMutation` instead of
        corrupting state. Wrap the instance in a lock for threaded use.
    """

    def __init__(self, predicate: SimilarityPredicate, tokenizer=None):
        self.predicate = predicate
        self.tokenizer = tokenizer
        self._token_lists: list[list[str]] = []
        self._payloads: list = []
        self._vocabulary: dict[str, int] = {}
        self._dataset = Dataset([], vocabulary=self._vocabulary, payloads=[])
        self._bound = None
        self._index = ScoredInvertedIndex()
        self.counters = CostCounters()
        self._in_flight: str | None = None

    @contextmanager
    def _exclusive(self, operation: str):
        """Re-entrancy guard around every state-touching operation."""
        if self._in_flight is not None:
            raise ConcurrentMutation(operation, self._in_flight)
        self._in_flight = operation
        try:
            yield
        finally:
            self._in_flight = None

    def __len__(self) -> int:
        return len(self._dataset)

    # ------------------------------------------------------------------

    def _tokens_of(self, item) -> list[str]:
        if self.tokenizer is not None and isinstance(item, str):
            return list(self.tokenizer(item))
        return [str(token) for token in item]

    def _record_of(self, tokens: Sequence[str], extend_vocab: bool) -> tuple[int, ...]:
        ids = set()
        for token in tokens:
            token_id = self._vocabulary.get(token)
            if token_id is None:
                if not extend_vocab:
                    continue  # unseen token cannot match anything anyway
                token_id = len(self._vocabulary)
                self._vocabulary[token] = token_id
            ids.add(token_id)
        return tuple(sorted(ids))

    def rebind(self) -> None:
        """Recompute predicate statistics over the current corpus.

        Also rebuilds the inverted index with the refreshed scores:
        entries inserted before the rebind carry the statistics that
        were current *at insert time*, and probing them with a freshly
        bound predicate could silently drop true matches for
        corpus-dependent predicates (TF-IDF cosine, weighted overlap).
        """
        with self._exclusive("rebind"):
            self._rebind()
            self._rebuild_index()

    def _rebind(self) -> None:
        self._bound = self.predicate.bind(self._dataset)

    def _rebuild_index(self) -> None:
        """Re-insert every record under the current bound's scores."""
        index = ScoredInvertedIndex()
        for rid in range(len(self._dataset)):
            index.insert(
                rid,
                self._dataset[rid],
                self._bound.cached_score_vector(rid),
                self._bound.norm(rid),
                self.counters,
            )
        self._index = index

    def _ensure_bound(self):
        if self._bound is None:
            self._rebind()
        else:
            self._bound.extend_to(len(self._dataset))
        return self._bound

    # ------------------------------------------------------------------

    def add(self, item, payload=None) -> int:
        """Insert a record; returns its rid."""
        with self._exclusive("add"):
            tokens = self._tokens_of(item)
            record = self._record_of(tokens, extend_vocab=True)
            rid = len(self._dataset)
            self._token_lists.append(tokens)
            self._dataset.records.append(record)
            self._dataset.payloads.append(payload if payload is not None else item)
            self._dataset._frequency = None  # invalidate cached stats
            bound = self._ensure_bound()
            self._index.insert(
                rid, record, bound.cached_score_vector(rid), bound.norm(rid), self.counters
            )
            return rid

    def query(self, item) -> list[MatchPair]:
        """All indexed records matching ``item`` under the predicate.

        The probe item gets the temporary rid ``len(self)`` (it is not
        inserted); returned pairs carry ``rid_a`` = matched record and
        ``rid_b`` = that temporary rid.
        """
        with self._exclusive("query"):
            return self._query(item)

    def _query(self, item) -> list[MatchPair]:
        tokens = self._tokens_of(item)
        record = self._record_of(tokens, extend_vocab=True)
        probe_rid = len(self._dataset)
        # Temporarily extend the dataset so the bound predicate can
        # score the probe record. Corpus statistics (cosine IDF) stay
        # frozen at the last rebind() — the documented service semantics.
        self._dataset.records.append(record)
        self._dataset.payloads.append(item)
        self._dataset._frequency = None
        try:
            bound = self._ensure_bound()
            bound.extend_to(probe_rid + 1)
            self.counters.probes += 1
            lists = self._index.probe_lists(record, bound.cached_score_vector(probe_rid))
            if not lists:
                return []
            norm_r = bound.norm(probe_rid)
            band = bound.band_filter()
            accept = None
            if band is not None:
                keys = band.keys
                radius = band.radius + 1e-12
                key_r = keys[probe_rid]

                def accept(sid: int) -> bool:
                    return abs(keys[sid] - key_r) <= radius

            matches = []
            for sid, _weight in merge_opt(
                lists,
                bound.index_threshold(norm_r, self._index.min_norm),
                lambda sid: bound.threshold(norm_r, bound.norm(sid)),
                self.counters,
                accept,
            ):
                self.counters.pairs_verified += 1
                ok, similarity = bound.verify(sid, probe_rid)
                if ok:
                    matches.append(MatchPair(sid, probe_rid, similarity))
            return matches
        finally:
            self._dataset.records.pop()
            self._dataset.payloads.pop()
            self._dataset._frequency = None
            if self._bound is not None:
                # Drop the probe's cache slot so a future record at this
                # rid cannot see stale scores.
                del self._bound._score_vectors[probe_rid:]
                del self._bound._norms[probe_rid:]
                del self._bound._score_maps[probe_rid:]
                if getattr(self._bound, "_band", None) is not None:
                    self._bound._band = None

    def payload(self, rid: int):
        return self._dataset.payload(rid)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str, codec=None, fs=None) -> None:
        """Crash-safely serialize the indexed records to ``path``.

        The snapshot is versioned, checksummed, and written with
        write-to-temp + atomic rename (see :mod:`repro.runtime.snapshot`):
        a crash at any point leaves the previous snapshot loadable.
        Only the records and payloads are stored; the inverted index is
        rebuilt on load.

        Args:
            codec: optional payload codec with ``encode(payload) -> str``
                and ``decode(text) -> payload`` for payloads JSON cannot
                represent. Without one, a non-JSON payload raises
                :class:`~repro.runtime.errors.SnapshotEncodingError`
                instead of being silently coerced (and lost) as ``str``.
            fs: filesystem shim for fault injection in tests.
        """
        with self._exclusive("save"):
            payloads = []
            for rid, payload in enumerate(self._dataset.payloads):
                try:
                    canonical_json(payload)
                except SnapshotEncodingError:
                    if codec is None:
                        raise SnapshotEncodingError(
                            f"payload of record {rid} ({type(payload).__name__})"
                            " is not JSON-representable; pass codec= to"
                            " SimilarityIndex.save/load to round-trip it"
                        ) from None
                    encoded = codec.encode(payload)
                    if not isinstance(encoded, str):
                        raise SnapshotEncodingError(
                            f"codec.encode must return str, got"
                            f" {type(encoded).__name__} for record {rid}"
                        )
                    payloads.append(["codec", encoded])
                else:
                    payloads.append(["json", payload])
            write_snapshot(
                path,
                {"token_lists": self._token_lists, "payloads": payloads},
                kind=_SNAPSHOT_KIND,
                fs=fs,
            )

    @classmethod
    def load(
        cls,
        path: str,
        predicate: SimilarityPredicate,
        tokenizer=None,
        codec=None,
        fs=None,
    ) -> "SimilarityIndex":
        """Restore an index saved with :meth:`save`.

        Raises :class:`~repro.runtime.errors.SnapshotCorrupted` when the
        file is damaged, tampered with, of a foreign format, or its state
        shape is malformed — never a bare ``KeyError``. A snapshot whose
        payloads were written with a codec requires the same ``codec``
        here (:class:`~repro.runtime.errors.SnapshotEncodingError`
        otherwise).
        """
        state = read_snapshot(path, kind=_SNAPSHOT_KIND, fs=fs)
        token_lists, payload_entries = cls._validate_state(path, state)
        service = cls(predicate, tokenizer=tokenizer)
        for tokens, entry in zip(token_lists, payload_entries):
            tag, value = entry
            if tag == "codec":
                if codec is None:
                    raise SnapshotEncodingError(
                        f"snapshot {path!r} contains codec-encoded payloads;"
                        " pass the codec used at save time"
                    )
                value = codec.decode(value)
            record = service._record_of(tokens, extend_vocab=True)
            service._token_lists.append(tokens)
            service._dataset.records.append(record)
            service._dataset.payloads.append(value)
        service._dataset._frequency = None
        service._rebind()
        service._rebuild_index()
        return service

    @staticmethod
    def _validate_state(path: str, state) -> tuple[list, list]:
        """Shape-check a loaded snapshot payload (no KeyErrors)."""
        if not isinstance(state, dict):
            raise SnapshotCorrupted(path, "state is not an object")
        token_lists = state.get("token_lists")
        payload_entries = state.get("payloads")
        if not isinstance(token_lists, list) or not isinstance(payload_entries, list):
            raise SnapshotCorrupted(
                path, "state needs 'token_lists' and 'payloads' lists"
            )
        if len(token_lists) != len(payload_entries):
            raise SnapshotCorrupted(
                path,
                f"{len(token_lists)} token lists vs"
                f" {len(payload_entries)} payloads",
            )
        for i, tokens in enumerate(token_lists):
            if not isinstance(tokens, list) or not all(
                isinstance(t, str) for t in tokens
            ):
                raise SnapshotCorrupted(
                    path, f"token list {i} is not a list of strings"
                )
        for i, entry in enumerate(payload_entries):
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or entry[0] not in ("json", "codec")
                or (entry[0] == "codec" and not isinstance(entry[1], str))
            ):
                raise SnapshotCorrupted(
                    path, f"payload entry {i} is not a tagged [kind, value] pair"
                )
        return token_lists, payload_entries
