"""Incremental similarity-index service.

The paper's introduction motivates set joins with DBMSs that must serve
similarity *queries* over set-valued columns, not only batch joins.
This module packages the online probe as a service: add records one at
a time, query any record-shaped set against everything added so far,
and persist/restore the whole index. The probe per query/add is the
same MergeOpt machinery the batch joins use.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.merge_opt import merge_opt
from repro.core.records import Dataset
from repro.core.results import MatchPair
from repro.predicates.base import SimilarityPredicate
from repro.utils.counters import CostCounters

__all__ = ["SimilarityIndex"]


class SimilarityIndex:
    """A growable index answering similarity queries exactly.

    Args:
        predicate: the join condition queries are evaluated under.
        tokenizer: optional callable turning raw strings into token
            lists; when given, ``add``/``query`` accept strings.

    Notes:
        Predicates whose scores depend on corpus statistics (TF-IDF
        cosine) are rebound as the corpus grows only when ``rebind()``
        is called; for streaming use, prefer corpus-independent
        predicates or pass precomputed ``stats``.
    """

    def __init__(self, predicate: SimilarityPredicate, tokenizer=None):
        self.predicate = predicate
        self.tokenizer = tokenizer
        self._token_lists: list[list[str]] = []
        self._payloads: list = []
        self._vocabulary: dict[str, int] = {}
        self._dataset = Dataset([], vocabulary=self._vocabulary, payloads=[])
        self._bound = None
        self._index = ScoredInvertedIndex()
        self.counters = CostCounters()

    def __len__(self) -> int:
        return len(self._dataset)

    # ------------------------------------------------------------------

    def _tokens_of(self, item) -> list[str]:
        if self.tokenizer is not None and isinstance(item, str):
            return list(self.tokenizer(item))
        return [str(token) for token in item]

    def _record_of(self, tokens: Sequence[str], extend_vocab: bool) -> tuple[int, ...]:
        ids = set()
        for token in tokens:
            token_id = self._vocabulary.get(token)
            if token_id is None:
                if not extend_vocab:
                    continue  # unseen token cannot match anything anyway
                token_id = len(self._vocabulary)
                self._vocabulary[token] = token_id
            ids.add(token_id)
        return tuple(sorted(ids))

    def rebind(self) -> None:
        """Recompute predicate statistics over the current corpus."""
        self._bound = self.predicate.bind(self._dataset)

    def _ensure_bound(self):
        if self._bound is None:
            self.rebind()
        else:
            self._bound.extend_to(len(self._dataset))
        return self._bound

    # ------------------------------------------------------------------

    def add(self, item, payload=None) -> int:
        """Insert a record; returns its rid."""
        tokens = self._tokens_of(item)
        record = self._record_of(tokens, extend_vocab=True)
        rid = len(self._dataset)
        self._token_lists.append(tokens)
        self._dataset.records.append(record)
        self._dataset.payloads.append(payload if payload is not None else item)
        self._dataset._frequency = None  # invalidate cached stats
        bound = self._ensure_bound()
        self._index.insert(
            rid, record, bound.cached_score_vector(rid), bound.norm(rid), self.counters
        )
        return rid

    def query(self, item) -> list[MatchPair]:
        """All indexed records matching ``item`` under the predicate.

        The probe item gets the temporary rid ``len(self)`` (it is not
        inserted); returned pairs carry ``rid_a`` = matched record and
        ``rid_b`` = that temporary rid.
        """
        tokens = self._tokens_of(item)
        record = self._record_of(tokens, extend_vocab=True)
        probe_rid = len(self._dataset)
        # Temporarily extend the dataset so the bound predicate can
        # score the probe record. Corpus statistics (cosine IDF) stay
        # frozen at the last rebind() — the documented service semantics.
        self._dataset.records.append(record)
        self._dataset.payloads.append(item)
        self._dataset._frequency = None
        try:
            bound = self._ensure_bound()
            bound.extend_to(probe_rid + 1)
            self.counters.probes += 1
            lists = self._index.probe_lists(record, bound.cached_score_vector(probe_rid))
            if not lists:
                return []
            norm_r = bound.norm(probe_rid)
            band = bound.band_filter()
            accept = None
            if band is not None:
                keys = band.keys
                radius = band.radius + 1e-12
                key_r = keys[probe_rid]

                def accept(sid: int) -> bool:
                    return abs(keys[sid] - key_r) <= radius

            matches = []
            for sid, _weight in merge_opt(
                lists,
                bound.index_threshold(norm_r, self._index.min_norm),
                lambda sid: bound.threshold(norm_r, bound.norm(sid)),
                self.counters,
                accept,
            ):
                self.counters.pairs_verified += 1
                ok, similarity = bound.verify(sid, probe_rid)
                if ok:
                    matches.append(MatchPair(sid, probe_rid, similarity))
            return matches
        finally:
            self._dataset.records.pop()
            self._dataset.payloads.pop()
            self._dataset._frequency = None
            if self._bound is not None:
                # Drop the probe's cache slot so a future record at this
                # rid cannot see stale scores.
                del self._bound._score_vectors[probe_rid:]
                del self._bound._norms[probe_rid:]
                del self._bound._score_maps[probe_rid:]
                if getattr(self._bound, "_band", None) is not None:
                    self._bound._band = None

    def payload(self, rid: int):
        return self._dataset.payload(rid)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize the indexed records (the index is rebuilt on load)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "token_lists": self._token_lists,
                    "payloads": [
                        payload if isinstance(payload, (str, int, float, list)) else str(payload)
                        for payload in self._dataset.payloads
                    ],
                },
                handle,
            )

    @classmethod
    def load(
        cls, path: str, predicate: SimilarityPredicate, tokenizer=None
    ) -> "SimilarityIndex":
        """Restore an index saved with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        service = cls(predicate, tokenizer=tokenizer)
        for tokens, payload in zip(state["token_lists"], state["payloads"]):
            record = service._record_of(tokens, extend_vocab=True)
            rid = len(service._dataset)
            service._token_lists.append(tokens)
            service._dataset.records.append(record)
            service._dataset.payloads.append(payload)
        service._dataset._frequency = None
        service.rebind()
        bound = service._bound
        for rid in range(len(service._dataset)):
            service._index.insert(
                rid,
                service._dataset[rid],
                bound.cached_score_vector(rid),
                bound.norm(rid),
                service.counters,
            )
        return service
