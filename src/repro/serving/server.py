"""IndexServer: robust concurrent query serving over SimilarityIndex.

The thread-safe :class:`~repro.core.service.SimilarityIndex` makes
concurrent queries *correct*; this server makes them *operable* under
load:

* **Bounded worker pool** — a fixed number of query threads, so a
  traffic spike cannot fork the process to death.
* **Bounded admission queue with load shedding** — when the queue is
  full, requests fail immediately with
  :class:`~repro.runtime.errors.ServerOverloaded` instead of stacking
  up unbounded latency (clients can back off or try a replica).
* **Per-query deadlines** — a
  :class:`~repro.runtime.context.JoinContext` per request, anchored at
  submission so queue wait counts; expiry raises
  :class:`~repro.runtime.errors.JoinTimeout`, checked both before
  dispatch and inside the probe.
* **Retries** — transient faults re-attempted under a
  :class:`~repro.serving.retry.RetryPolicy` (exponential backoff +
  jitter) within the request's deadline.
* **Circuit breaker** — consecutive failures trip a
  :class:`~repro.serving.breaker.CircuitBreaker`; while open, requests
  fail fast with :class:`~repro.runtime.errors.CircuitOpen`.
* **Health** — :meth:`IndexServer.health` reports queue depth,
  in-flight count, shed/completed/failed/retried tallies, breaker
  state, p50/p95/p99 latency, and the index's cost counters.

The admission/worker/drain machinery lives in :class:`_QueueServer` so
the sharded scatter-gather tier (:mod:`repro.serving.sharded`) reuses
it unchanged — one server lifecycle, two execution strategies.

Every clock in the stack is injectable
(:class:`repro.runtime.faults.FakeClock`), so overload, timeout, and
breaker behaviour are deterministically testable.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from collections.abc import Callable
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.runtime.context import JoinContext
from repro.runtime.errors import JoinTimeout, ServerOverloaded
from repro.serving.breaker import CircuitBreaker
from repro.serving.cache import QueryCache
from repro.serving.retry import RetryPolicy
from repro.serving.stats import LatencyTracker

__all__ = ["IndexServer"]

#: Worker-loop sentinel: stop.
_STOP = object()

SERVING = "serving"
DRAINING = "draining"
CLOSED = "closed"

#: The forked pool worker's index, installed by :func:`_pool_init`.
#: Module-level because pool tasks must reference it without pickling
#: the index (its locks are unpicklable; fork shares it by memory).
_POOL_INDEX = None


def _pool_init(index) -> None:
    global _POOL_INDEX
    _POOL_INDEX = index


def _pool_query(item):
    return _POOL_INDEX.query(item)


def _pool_query_batch(items):
    return _POOL_INDEX.query_batch(items)


@dataclass
class _Request:
    """One admitted query: payload, runtime envelope, result slot.

    ``batch=True`` marks ``item`` as a list of query items; the future
    then resolves to one result list per item. ``require_complete`` is
    the sharded tier's completeness demand (ignored by IndexServer,
    whose single index is always complete).
    """

    item: object
    context: JoinContext | None
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0
    batch: bool = False
    require_complete: bool = False


class _QueueServer:
    """Bounded-queue server skeleton: admission, workers, drain, health.

    Subclasses implement :meth:`_execute` (what one admitted request
    does) and may hook :meth:`_on_start` / :meth:`_on_drained` for
    their own resources (process pools, shard pools). Everything else —
    the load-shedding admission path, deadline anchoring at submit, the
    worker loop, graceful drain with queued-request failure, and the
    shed/completed/failed/retried accounting — is shared verbatim
    between the single-index and sharded servers, so the two tiers
    cannot drift apart operationally.
    """

    #: Thread-name prefix for this server's workers.
    worker_name = "queue-server"

    def __init__(
        self,
        workers: int,
        queue_limit: int,
        default_deadline: float | None,
        clock: Callable[[], float],
        latency_capacity: int,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.n_workers = workers
        self.queue_limit = queue_limit
        self.default_deadline = default_deadline
        self.clock = clock
        self.latency = LatencyTracker(latency_capacity)

        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._threads: list[threading.Thread] = []
        self._state = CLOSED
        self._pending = 0  # admitted but not yet finished
        self._in_flight = 0  # currently executing in a worker
        self._shed = 0
        self._completed = 0
        self._failed = 0
        self._retried = 0
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Spawn the worker pool and begin accepting queries.

        A failed start (``_on_start`` raising — e.g. a process pool
        that cannot fork) rolls the server back to ``closed`` before
        re-raising, so ``stop()`` after a failed start is a safe no-op
        and a fixed configuration can ``start()`` again.
        """
        with self._cond:
            if self._state != CLOSED:
                raise RuntimeError(f"cannot start a {self._state} server")
            self._state = SERVING
        try:
            self._on_start()
        except BaseException:
            with self._cond:
                self._state = CLOSED
            raise
        for i in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker, name=f"{self.worker_name}-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _on_start(self) -> None:
        """Subclass hook: build executors before workers spawn.

        On failure the base class resets the server to ``closed`` and
        re-raises; implementations must leave no half-built resources
        behind (or clean them up themselves) so a later ``start()`` can
        succeed.
        """

    def drain(self, timeout: float | None = None) -> bool:
        """Gracefully stop: reject new work, finish admitted work.

        Returns True when every admitted request finished within
        ``timeout`` (measured in real time, independent of the injected
        clock); False on timeout — workers are still stopped, and any
        requests left behind fail with ``ServerOverloaded``.

        Idempotent: draining a drained (or never-started, or
        failed-to-start) server is a no-op returning True, and the
        ``_on_drained`` teardown hooks tolerate being run again (a
        second drain after a timed-out first one re-reaps whatever the
        wedged workers left behind).
        """
        started = time.monotonic()
        with self._cond:
            if self._state == CLOSED and not self._threads:
                return True
            self._state = DRAINING
            drained = self._cond.wait_for(
                lambda: self._pending == 0, timeout=timeout
            )
        if not drained:
            # Fail whatever the timed-out drain left queued, rather than
            # leaving its callers blocked on futures forever (and to
            # guarantee the stop sentinels below fit in the queue).
            self._fail_queued("draining")
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            if drained or timeout is None:
                thread.join()
            else:
                # A worker wedged mid-query must not wedge the drain too;
                # it is a daemon thread and dies with the process.
                budget = started + timeout - time.monotonic()
                thread.join(timeout=max(budget, 0.0) + 0.1)
        self._threads = [t for t in self._threads if t.is_alive()]
        self._on_drained()
        with self._cond:
            self._state = CLOSED
        return drained

    def stop(self, timeout: float | None = None) -> bool:
        """Alias for :meth:`drain` — idempotent, safe after any start."""
        return self.drain(timeout)

    def _on_drained(self) -> None:
        """Subclass hook: tear down executors after workers stop.

        May run more than once (repeated ``drain``/``stop`` calls);
        implementations must be idempotent.
        """

    def _fail_queued(self, reason: str) -> None:
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return
            if request is not _STOP and request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    ServerOverloaded(reason, self._queue.qsize(), self.queue_limit)
                )
                self._finish(shed=True)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(
        self,
        item,
        deadline: float | None = None,
        context: JoinContext | None = None,
    ) -> Future:
        """Admit one query; returns its Future.

        Args:
            item: what to query (same forms ``SimilarityIndex.query``
                accepts).
            deadline: per-query wall-clock budget in seconds, measured
                from now (queue wait included); defaults to the server's
                ``default_deadline``.
            context: bring-your-own
                :class:`~repro.runtime.context.JoinContext` (e.g. with a
                shared cancellation token); mutually exclusive with
                ``deadline``.

        Raises:
            ServerOverloaded: queue full, or the server is not serving.
        """
        return self._admit(item, deadline, context, batch=False)

    def _admit(
        self,
        item,
        deadline,
        context,
        batch: bool,
        require_complete: bool = False,
    ) -> Future:
        if deadline is not None and context is not None:
            raise ValueError("pass either deadline or context, not both")
        with self._cond:
            if self._state != SERVING:
                self._shed += 1
                raise ServerOverloaded(
                    self._state if self._state != CLOSED else "not started",
                    self._queue.qsize(),
                    self.queue_limit,
                )
        if context is None:
            budget = deadline if deadline is not None else self.default_deadline
            if budget is not None:
                context = JoinContext(deadline_seconds=budget, clock=self.clock)
        if context is not None:
            context.start()  # anchor the deadline at admission
        request = _Request(
            item=item,
            context=context,
            enqueued_at=self.clock(),
            batch=batch,
            require_complete=require_complete,
        )
        with self._cond:
            self._pending += 1
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._cond:
                self._pending -= 1
                self._shed += 1
                self._cond.notify_all()
            raise ServerOverloaded(
                "queue full", self._queue.qsize(), self.queue_limit
            ) from None
        return request.future

    def query(self, item, deadline: float | None = None, timeout: float | None = None):
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(item, deadline=deadline).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            request = self._queue.get()
            if request is _STOP:
                return
            if not request.future.set_running_or_notify_cancel():
                self._finish(shed=True)  # client cancelled while queued
                continue
            with self._cond:
                self._in_flight += 1
            try:
                result = self._execute(request)
            except BaseException as exc:  # noqa: BLE001 — delivered via future
                request.future.set_exception(exc)
                self._finish(failed=True)
            else:
                self.latency.observe(self.clock() - request.enqueued_at)
                request.future.set_result(result)
                self._finish(completed=True)

    def _execute(self, request: _Request):
        raise NotImplementedError

    def _check_not_expired(self, context: JoinContext | None) -> None:
        """Fail a request that spent its whole deadline queued.

        Raised before any dependency is touched — this is overload, not
        dependency failure, so subclasses call it before consulting
        caches, breakers, or shards.
        """
        if context is not None:
            remaining = context.remaining()
            if remaining is not None and remaining <= 0:
                raise JoinTimeout(context.elapsed(), context.deadline_seconds)

    def _count_retry(self, attempt: int, exc: BaseException, delay: float) -> None:
        with self._cond:
            self._retried += 1

    def _finish(
        self, completed: bool = False, failed: bool = False, shed: bool = False
    ) -> None:
        with self._cond:
            if completed:
                self._completed += 1
            elif failed:
                self._failed += 1
            elif shed:
                self._shed += 1
            if self._in_flight and not shed:
                self._in_flight -= 1
            self._pending -= 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._cond:
            return self._state

    def _base_health(self) -> dict:
        """The lifecycle/accounting half of a health snapshot."""
        with self._cond:
            return {
                "state": self._state,
                "workers": self.n_workers,
                "queue_depth": self._queue.qsize(),
                "queue_limit": self.queue_limit,
                "in_flight": self._in_flight,
                "shed": self._shed,
                "completed": self._completed,
                "failed": self._failed,
                "retried": self._retried,
            }


class IndexServer(_QueueServer):
    """A bounded, self-protecting query server over a SimilarityIndex.

    Args:
        index: the (thread-safe) :class:`SimilarityIndex` to serve.
        workers: query worker threads.
        queue_limit: admission queue bound; a full queue sheds.
        default_deadline: per-query deadline in seconds applied when
            ``submit`` gets none; ``None`` = unbounded.
        retry_policy: transient-fault retry policy; ``None`` disables
            retries. Backoff is clamped to the request's remaining
            deadline (see :meth:`RetryPolicy.run`).
        breaker: circuit breaker; ``None`` disables breaking.
        clock: monotonic-seconds callable used for deadlines and
            latency; injectable for tests.
        latency_capacity: latency reservoir size (see
            :class:`LatencyTracker`).
        executor: ``"thread"`` (default) runs probes on the worker
            threads; ``"process"`` dispatches each probe to a forked
            process pool of the same size, sidestepping the GIL for
            CPU-bound query bursts. Process mode serves the index as it
            was at :meth:`start` (later ``add``/``extend`` calls are
            not visible to the forked pool), enforces deadlines at the
            dispatch boundary (an expired probe keeps burning its pool
            slot until it finishes), and needs a platform with the
            ``fork`` start method.
        query_cache: capacity of the LRU query-result cache
            (:class:`~repro.serving.cache.QueryCache`); 0 disables it.
            Entries are invalidated wholesale whenever the index
            mutates (its ``generation`` stamp moves), so cached results
            are always what a fresh probe would return. Hits bypass the
            index, the breaker, and — in process mode — the pool.

    Start with :meth:`start` (or use as a context manager); stop with
    :meth:`drain`. ``submit`` returns a ``concurrent.futures.Future``
    resolving to the query's ``list[MatchPair]``.
    """

    worker_name = "index-server"

    def __init__(
        self,
        index,
        workers: int = 4,
        queue_limit: int = 64,
        default_deadline: float | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] = time.monotonic,
        latency_capacity: int = 2048,
        executor: str = "thread",
        query_cache: int = 0,
    ):
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if (
            executor == "process"
            and "fork" not in multiprocessing.get_all_start_methods()
        ):
            raise ValueError(
                "executor='process' needs the fork start method (the index"
                " is shared with pool workers by forked memory); this"
                " platform only offers"
                f" {multiprocessing.get_all_start_methods()}"
            )
        super().__init__(workers, queue_limit, default_deadline, clock, latency_capacity)
        self.index = index
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.executor = executor
        self._pool = None
        if query_cache < 0:
            raise ValueError(f"query_cache must be >= 0, got {query_cache}")
        self.cache = QueryCache(query_cache) if query_cache else None

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------

    def _on_start(self) -> None:
        if self.executor == "process":
            # Fork-only: workers inherit the index by memory, so the
            # unpicklable lock state never crosses a pipe. Each query
            # worker thread then blocks on its pool slot, keeping the
            # admission/deadline/breaker path identical to thread mode.
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(
                processes=self.n_workers,
                initializer=_pool_init,
                initargs=(self.index,),
            )

    def _on_drained(self) -> None:
        if self._pool is not None:
            # Admitted queries have already resolved (or been failed);
            # anything still on a pool slot belongs to a wedged worker.
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit_batch(
        self,
        items,
        deadline: float | None = None,
        context: JoinContext | None = None,
    ) -> Future:
        """Admit a batch of queries as one request; returns one Future.

        The Future resolves to a list with one ``list[MatchPair]`` per
        item, in order — each identical to what :meth:`submit` would
        have produced for that item alone. The batch occupies a single
        admission-queue slot and worker, and the underlying
        :meth:`SimilarityIndex.query_batch` takes the index read lock
        once and reuses the per-probe machinery across items, so large
        batches cost markedly less than the equivalent singleton
        submissions. One ``deadline`` covers the whole batch.
        """
        return self._admit(list(items), deadline, context, batch=True)

    def query_batch(
        self, items, deadline: float | None = None, timeout: float | None = None
    ):
        """Synchronous convenience wrapper around :meth:`submit_batch`."""
        return self.submit_batch(items, deadline=deadline).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, request: _Request):
        context = request.context
        # Expired while queued: don't touch the index or the breaker.
        self._check_not_expired(context)

        # Cache consult, before the breaker: a hit touches neither the
        # index nor the pool, so it is not a dependency call and must
        # stay servable while the circuit is open. The generation is
        # read *before* the probe runs — if a mutation slips in between,
        # the store below tags the result with a stale generation and
        # the cache simply drops it (never a stale hit).
        cache = self.cache
        generation = None
        keys = None
        if cache is not None:
            generation = self.index.generation
            if request.batch:
                items = request.item
                keys = [cache.key_for(item) for item in items]
                results: list = [None] * len(items)
                misses: list[int] = []
                for i, key in enumerate(keys):
                    hit = False
                    if key is not None:
                        hit, value = cache.lookup(key, generation)
                    if hit:
                        results[i] = value
                    else:
                        misses.append(i)
                if not misses:
                    return results
            else:
                key = cache.key_for(request.item)
                keys = key
                if key is not None:
                    hit, value = cache.lookup(key, generation)
                    if hit:
                        return value

        if self.breaker is not None:
            self.breaker.admit()  # raises CircuitOpen

        if request.batch:
            # With cache hits above, only the missed items hit the index.
            pending = (
                [request.item[i] for i in misses] if cache is not None else request.item
            )
            probe, args = _pool_query_batch, (pending,)
        else:
            pending = request.item
            probe, args = _pool_query, (pending,)

        if self._pool is not None:

            def attempt():
                handle = self._pool.apply_async(probe, args)
                timeout = context.remaining() if context is not None else None
                try:
                    return handle.get(timeout=timeout)
                except multiprocessing.TimeoutError:
                    raise JoinTimeout(
                        context.elapsed(), context.deadline_seconds
                    ) from None

        elif request.batch:

            def attempt():
                return self.index.query_batch(pending, context=context)

        else:

            def attempt():
                return self.index.query(pending, context=context)

        try:
            if self.retry_policy is not None:
                fresh = self.retry_policy.run(
                    attempt, on_retry=self._count_retry, context=context
                )
            else:
                fresh = attempt()
        except BaseException:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()

        if cache is None:
            return fresh
        if request.batch:
            for slot, value in zip(misses, fresh):
                results[slot] = value
                if keys[slot] is not None:
                    cache.store(keys[slot], generation, value)
            return results
        if keys is not None:
            cache.store(keys, generation, fresh)
        return fresh

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """Point-in-time operational snapshot (cheap; safe to poll).

        Keys: ``state``, ``workers``, ``queue_depth``, ``queue_limit``,
        ``in_flight``, ``shed``, ``completed``, ``failed``, ``retried``,
        ``pool`` (executor mode + busy/total/saturation of the worker
        pool — saturation pinned at 1.0 is the signal to add capacity
        or shed earlier), ``breaker`` (state + times_opened, or None),
        ``cache`` (capacity/size/hits/misses/hit_rate/invalidations, or
        None when disabled), ``latency`` (count/p50/p95/p99 seconds),
        ``index`` (record count + cost counters — including
        ``unknown_query_tokens`` and the ``bitmap_*`` filter tallies —
        plus ``bitmap`` filter state when the index has one armed).
        """
        snapshot = self._base_health()
        busy = min(snapshot["in_flight"], self.n_workers)
        snapshot["pool"] = {
            "mode": self.executor,
            "busy": busy,
            "total": self.n_workers,
            "saturation": busy / self.n_workers,
        }
        snapshot["breaker"] = (
            {"state": self.breaker.state, "times_opened": self.breaker.times_opened}
            if self.breaker is not None
            else None
        )
        snapshot["cache"] = self.cache.stats() if self.cache is not None else None
        snapshot["latency"] = self.latency.summary()
        snapshot["index"] = {
            "records": len(self.index),
            "counters": self.index.counters_snapshot(),
        }
        bitmap_state = getattr(self.index, "bitmap_state", None)
        if bitmap_state is not None:
            snapshot["index"]["bitmap"] = bitmap_state()
        return snapshot
