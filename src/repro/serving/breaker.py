"""Circuit breaker: fail fast while a dependency is down.

When the index (or its storage) fails repeatedly, continuing to dispatch
queries wastes worker time, holds queue slots, and hammers whatever is
broken. The breaker counts *consecutive* failures; at the threshold it
**opens** and every request fails immediately with
:class:`~repro.runtime.errors.CircuitOpen`. After a cooldown it
**half-opens**, letting a bounded number of trial requests probe the
dependency: one success closes the circuit, one failure re-opens it and
restarts the cooldown.

The clock is injectable (:class:`repro.runtime.faults.FakeClock`), so
every state transition — closed → open → half-open → closed/open — is
deterministically testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.runtime.errors import CircuitOpen

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Args:
        failure_threshold: consecutive failures that open the circuit.
        cooldown_seconds: how long the circuit stays open before
            half-opening.
        half_open_max_calls: trial requests admitted while half-open;
            further requests fail fast until a trial resolves.
        clock: monotonic-seconds callable; injectable for tests.

    Thread-safe; all transitions happen under one mutex. Usage::

        breaker.admit()            # raises CircuitOpen, or returns
        try:
            result = do_work()
        except Exception:
            breaker.record_failure()
            raise
        else:
            breaker.record_success()
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 30.0,
        half_open_max_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        if half_open_max_calls < 1:
            raise ValueError(
                f"half_open_max_calls must be >= 1, got {half_open_max_calls}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.half_open_max_calls = half_open_max_calls
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._half_open_in_flight = 0
        #: Lifetime transition tally for the health report.
        self.times_opened = 0

    @property
    def state(self) -> str:
        """Current state, observing cooldown expiry (open → half-open)."""
        with self._lock:
            self._refresh_locked()
            return self._state

    def _refresh_locked(self) -> None:
        if self._state == OPEN:
            elapsed = self.clock() - self._opened_at
            if elapsed >= self.cooldown_seconds:
                self._state = HALF_OPEN
                self._half_open_in_flight = 0

    # ------------------------------------------------------------------

    def admit(self) -> None:
        """Admit one request or raise :class:`CircuitOpen`.

        Every admitted request **must** later call exactly one of
        :meth:`record_success` / :meth:`record_failure` (the half-open
        trial slot is held until it does).
        """
        with self._lock:
            self._refresh_locked()
            if self._state == OPEN:
                remaining = self.cooldown_seconds - (self.clock() - self._opened_at)
                raise CircuitOpen(OPEN, remaining)
            if self._state == HALF_OPEN:
                if self._half_open_in_flight >= self.half_open_max_calls:
                    raise CircuitOpen(HALF_OPEN, 0.0)
                self._half_open_in_flight += 1

    def record_success(self) -> None:
        """The admitted request succeeded; half-open trials close the circuit.

        Only a request holding a trial slot (admitted *while* half-open)
        may close the circuit: a success straggling in from a request
        admitted before the circuit opened says nothing about whether
        the dependency has recovered since.
        """
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN and self._half_open_in_flight > 0:
                self._half_open_in_flight -= 1
                self._state = CLOSED
                self._opened_at = None
            elif self._state == CLOSED:
                self._opened_at = None

    def record_failure(self) -> None:
        """The admitted request failed; may open (or re-open) the circuit.

        Symmetrically to :meth:`record_success`, only a trial-slot
        holder may re-open a half-open circuit; a stale pre-open failure
        must not restart the cooldown the real trial is about to probe.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                if self._half_open_in_flight > 0:
                    self._half_open_in_flight -= 1
                    self._trip_locked()
                return
            self._consecutive_failures += 1
            if self._state == CLOSED and (
                self._consecutive_failures >= self.failure_threshold
            ):
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self.clock()
        self._consecutive_failures = 0
        self.times_opened += 1
