"""Sharded scatter-gather serving: N index shards, one exact answer.

:class:`ShardedIndexServer` partitions records across N
:class:`~repro.core.service.SimilarityIndex` shards by stable
record-id hash (:class:`~repro.serving.router.ShardRouter`) and serves
each query scatter-gather: probe every shard on its own worker pool,
then merge the per-shard candidates into the exact global result — the
paper's §5 record-partition decomposition, applied to the online probe
instead of the batch join. Because every shard scores with the shared
vocabulary (one token = one id everywhere) and similarity predicates
are pair-local once bound, the merged answer is pair-for-pair identical
to a single-index :class:`~repro.serving.server.IndexServer` over the
same corpus — pinned by ``tests/property/test_sharded_equivalence.py``.

What sharding buys is *fault isolation*, not different answers:

* **Per-shard deadline budgets** — each probe gets a
  :class:`JoinContext` carved from the query's remaining deadline.
* **Per-shard CircuitBreaker / LatencyTracker / QueryCache** — one sick
  shard trips one breaker, skews one latency window, invalidates one
  cache.
* **Hedged probes** — when a shard dawdles past its hedge delay
  (fixed, or derived from that shard's own p99), the probe is re-issued
  and the first completion wins; one straggler degrades tail latency
  instead of defining it.
* **Partial results with explicit accounting** — a query that loses
  shards still answers from the survivors:
  :class:`ShardedResult` carries ``shards_ok`` / ``shards_failed`` /
  ``partial``, health tallies both outcomes, and callers that cannot
  accept partial data pass ``require_complete=True`` to get a typed
  :class:`~repro.runtime.errors.PartialResult` instead.
* **Zero-downtime reindex** — :meth:`ShardedIndexServer.reindex` runs a
  :class:`~repro.serving.generation.GenerationBuilder` per shard:
  build off-lock, flip atomically under the shard's writer-preferring
  RWLock, invalidate only that shard's cache (the cache stamp is
  ``(flip epoch, index generation)``).
* **Remote shards** — ``shard_endpoints`` swaps any shard's in-process
  index for a :class:`~repro.serving.transport.client.RemoteShardClient`
  speaking the checksummed binary wire protocol to a ``repro
  shard-serve`` node. The shard becomes a *network* fault domain —
  reconnecting connection pool, deadline propagated in the frame
  header, heartbeat pings feeding its breaker — and a lost node
  degrades exactly like a killed local shard, down to the
  ``shards_failed`` accounting.

Admission, the bounded queue, load shedding, drain, and the
completed/failed/shed accounting are inherited verbatim from
:class:`~repro.serving.server._QueueServer` — operationally this tier
behaves exactly like the single-index server, scaled out.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass

from repro.core.results import MatchPair
from repro.core.service import SimilarityIndex
from repro.runtime.context import JoinContext
from repro.runtime.errors import (
    CircuitOpen,
    JoinRuntimeError,
    PartialResult,
    ReindexTimeout,
    RidDesync,
    ShardUnavailable,
)
from repro.runtime.rwlock import RWLock
from repro.serving.cache import QueryCache
from repro.serving.generation import GenerationBuilder, _ReindexGuard
from repro.serving.retry import RetryPolicy
from repro.serving.server import _QueueServer, _Request
from repro.serving.stats import LatencyTracker
from repro.serving.router import ShardRouter
from repro.serving.transport.client import RemoteShardClient, parse_endpoint

__all__ = ["HedgePolicy", "ShardedIndexServer", "ShardedResult"]

#: Shard-pool sentinel: stop.
_STOP = object()


@dataclass(frozen=True)
class ShardedResult:
    """One sharded query's answer, with completeness made explicit.

    ``matches`` are global: ``rid_a`` is the record's server-wide id
    (stable across flips and shard counts), ``rid_b`` the probe's
    ephemeral rid (= total records, exactly as the single-index server
    reports it), sorted by ``rid_a``. ``partial`` is True iff any shard
    failed; its records are simply absent from ``matches`` — the
    survivors' matches are exact, nothing is interpolated.

    Iterates and indexes like the plain ``list[MatchPair]`` the
    single-index server returns, so complete results drop into existing
    call sites unchanged.
    """

    matches: tuple[MatchPair, ...]
    shards_ok: tuple[int, ...]
    shards_failed: tuple[int, ...]
    partial: bool

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[MatchPair]:
        return iter(self.matches)

    def __getitem__(self, i):
        return self.matches[i]


class HedgePolicy:
    """When to re-issue a straggling shard probe.

    Args:
        delay: fixed hedge delay in seconds; overrides the adaptive
            path entirely when set.
        percentile: which percentile of the *shard's own* latency
            window anchors the adaptive delay.
        multiplier: hedge at ``percentile * multiplier`` — 2× p99 means
            "this probe is already slower than ~every recent probe".
        min_samples: observations a shard needs before its window is
            trusted; below it (and with no fixed ``delay``) probes are
            not hedged — hedging on noise doubles load for nothing.
        floor: lower bound on the adaptive delay, so a microsecond-fast
            shard does not hedge every probe the moment the scheduler
            hiccups.
    """

    def __init__(
        self,
        delay: float | None = None,
        percentile: float = 99.0,
        multiplier: float = 2.0,
        min_samples: int = 16,
        floor: float = 0.001,
    ):
        if delay is not None and delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        if multiplier <= 0:
            raise ValueError(f"multiplier must be > 0, got {multiplier}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if floor < 0:
            raise ValueError(f"floor must be >= 0, got {floor}")
        self.delay = delay
        self.percentile = percentile
        self.multiplier = multiplier
        self.min_samples = min_samples
        self.floor = floor

    def delay_for(self, latency: LatencyTracker) -> float | None:
        """Seconds to wait before hedging, or None (don't hedge)."""
        if self.delay is not None:
            return self.delay
        if latency.count < self.min_samples:
            return None
        anchor = latency.percentile(self.percentile)
        if anchor is None:
            return None
        return max(anchor * self.multiplier, self.floor)


class _ShardPool:
    """A tiny daemon-thread executor, one per shard.

    ``concurrent.futures.ThreadPoolExecutor`` joins non-daemon workers
    at interpreter exit, so a probe wedged on a fault-injected sleep
    would wedge process shutdown; these workers are daemons and the
    drain-time join is bounded instead.
    """

    def __init__(self, sid: int, workers: int):
        import queue as _queue

        self._queue: _queue.SimpleQueue = _queue.SimpleQueue()
        self._stopped = False
        self._threads = [
            threading.Thread(
                target=self._run, name=f"shard-{sid}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn, *args) -> Future:
        future: Future = Future()
        self._queue.put((future, fn, args))
        return future

    def _run(self) -> None:
        while True:
            task = self._queue.get()
            if task is _STOP:
                return
            future, fn, args = task
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 — delivered via future
                future.set_exception(exc)

    def stop(self, join_timeout: float = 1.0) -> None:
        """Idempotent: a second stop (repeated drain) is a no-op."""
        if self._stopped:
            return
        self._stopped = True
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(join_timeout)


class _Shard:
    """One fault domain: an index plus its private operational gear.

    ``rwlock`` guards the *index reference* (not the index's own state,
    which has its own lock): probes grab the reference under the read
    side for an instant, adds hold the read side across the insert, and
    a generation flip takes the write side to swap ``index`` and bump
    ``epoch``. The cache generation stamp is ``(epoch, generation)`` —
    a flip moves ``epoch`` even though the fresh index restarts its own
    ``generation`` counter, so a stale post-flip hit is impossible.

    ``index`` may also be a
    :class:`~repro.serving.transport.client.RemoteShardClient`
    (``remote=True``): it implements the same probe surface, reports a
    tuple-valued ``generation`` (the node's ``(epoch, generation)``
    stamp), and the shard then fails as a *network* fault domain —
    connect/transport errors count here exactly like a killed local
    shard.
    """

    __slots__ = (
        "sid", "index", "rwlock", "breaker", "latency", "cache",
        "global_rids", "pool", "epoch", "probes", "hedges", "hedge_wins",
        "failures", "remote", "retries", "heartbeats_ok",
        "heartbeats_failed", "quarantined", "_reindex_guard",
    )

    def __init__(self, sid, index, breaker, cache, pool, remote=False):
        self.sid = sid
        self.index = index
        self.rwlock = RWLock()
        self.breaker = breaker
        self.latency = LatencyTracker(512)
        self.cache = cache
        self.global_rids: list[int] = []
        self.pool = pool
        self.epoch = 0
        self.probes = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.failures = 0
        self.remote = remote
        #: Probe attempts re-issued for this shard (local shards; remote
        #: shards count inside their client — health() unifies the two).
        self.retries = 0
        self.heartbeats_ok = 0
        self.heartbeats_failed = 0
        #: Non-None once the shard's local-rid space has been caught
        #: desynced from the global-rid map: the reason string. A
        #: quarantined shard answers no more probes or adds (counted in
        #: ``shards_failed``) — serving would risk wrongly-mapped pairs.
        self.quarantined: str | None = None
        self._reindex_guard = _ReindexGuard()

    def begin_reindex(self) -> Callable[[], None]:
        return self._reindex_guard.acquire(f"shard {self.sid}")

    @property
    def name(self) -> str:
        return self.index.endpoint if self.remote else f"shard-{self.sid}"

    def stamp(self) -> tuple[int, int]:
        with self.rwlock.read_locked():
            return (self.epoch, self.index.generation)


class _RemoteReindexHandle:
    """Builder-shaped handle for a remote shard's node-side rebuild.

    Drives the ``reindex`` wire op on a background daemon thread and
    mirrors the :class:`GenerationBuilder` surface (``start`` /
    ``wait`` / ``error`` / ``built`` / ``caught_up`` / ``flipped`` /
    ``seconds``) so :meth:`ShardedIndexServer.reindex` treats local and
    remote shards uniformly — including :class:`ReindexTimeout`, which
    carries these handles alongside real builders.
    """

    #: Wire round-trip bound for the blocking rebuild op — generous,
    #: because the node rebuilds its whole shard inside it; the
    #: caller's ``wait(timeout)`` still bounds how long *we* block.
    REINDEX_TIMEOUT = 600.0

    def __init__(self, shard: _Shard, clock=time.monotonic):
        self.shard = shard
        self.clock = clock
        self._thread: threading.Thread | None = None
        self.error: BaseException | None = None
        self.built: int | None = None
        self.caught_up: int | None = None
        self.flipped = False
        self.seconds: float | None = None

    def start(self) -> "_RemoteReindexHandle":
        if self._thread is not None:
            raise RuntimeError("builder already started")
        self._thread = threading.Thread(
            target=self._run, name="remote-reindex", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        started = self.clock()
        try:
            with self.shard.rwlock.read_locked():
                client = self.shard.index
            report = client.reindex(timeout=self.REINDEX_TIMEOUT)
            self.built = report.get("built")
            self.caught_up = report.get("caught_up")
            self.flipped = bool(report.get("flipped"))
        except BaseException as exc:  # noqa: BLE001 — re-raised by wait()
            self.error = exc
        finally:
            self.seconds = self.clock() - started

    def wait(self, timeout: float | None = None) -> bool:
        """Join the rebuild; re-raises its failure, if any."""
        if self._thread is None:
            raise RuntimeError("builder was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            return False
        if self.error is not None:
            raise self.error
        return True


class ShardedIndexServer(_QueueServer):
    """Scatter-gather serving over hash-partitioned index shards.

    Args:
        predicate: the similarity predicate every shard binds. For
            corpus-dependent predicates (TF-IDF cosine) pass precomputed
            ``stats`` in the predicate, or per-shard binding would score
            against per-shard statistics and break global exactness.
        shards: shard count (>= 1).
        tokenizer: forwarded to every shard's index.
        workers: scatter-gather coordinator threads — each owns one
            in-flight query end to end.
        shard_workers: probe threads per shard. Hedging needs >= 2
            (the hedge must run while the straggler still occupies a
            slot).
        queue_limit / default_deadline / clock / latency_capacity: as
            :class:`IndexServer`.
        retry_policy: per-*probe* retry policy (transient shard faults
            are retried inside the shard's deadline before the shard is
            declared lost).
        breaker_factory: builds one :class:`CircuitBreaker` per shard;
            None disables breaking.
        query_cache: per-shard cache capacity (0 disables); a flip or
            add on one shard invalidates only that shard's entries.
        hedge: a :class:`HedgePolicy`; None disables hedging.
        bitmap_filter / merge_backend: forwarded to every shard's index.
        faults: optional :class:`~repro.runtime.faults.ShardFaults`
            plan, consulted at the top of every probe attempt — the
            chaos-test seam.
        shard_endpoints: one entry per shard mixing local and remote
            backends: ``None``/``"local"`` builds the usual in-process
            index, ``"host:port"`` (or a ``(host, port)`` tuple)
            attaches a :class:`RemoteShardClient` to a ``repro
            shard-serve`` node. Remote shards keep the whole fault-
            domain kit — breaker, cache, latency window, per-shard
            deadline budget — and degrade under network failure exactly
            like a killed local shard. The front end still owns routing
            and the global-rid map; remote nodes only ever see their
            own records. For corpus-dependent predicates the *nodes*
            must be started with the same global stats/vocabulary this
            server uses (the ``shard-serve`` CLI does this from the
            shared corpus file).
        heartbeat_interval: seconds between background health pings of
            each remote shard (None disables). Heartbeats feed the
            shard's circuit breaker: failures trip it without waiting
            for query traffic, and the ping that finds a recovered node
            is the half-open trial that closes it again.
        remote_pool_size / remote_connect_timeout / remote_request_timeout:
            forwarded to each :class:`RemoteShardClient`.
        vocabulary: optional prefilled token-id dict shared by every
            local shard. With remote shards and a corpus-dependent
            predicate this must be the full-corpus assignment: records
            routed to remote nodes never pass through the front end's
            vocabulary, so an empty dict would assign ids in
            subset-arrival order and stop matching the precomputed
            global stats.
    """

    worker_name = "sharded-server"

    def __init__(
        self,
        predicate,
        shards: int = 2,
        tokenizer=None,
        workers: int = 4,
        shard_workers: int = 2,
        queue_limit: int = 64,
        default_deadline: float | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_factory: Callable[[], object] | None = None,
        clock: Callable[[], float] = time.monotonic,
        latency_capacity: int = 2048,
        query_cache: int = 0,
        hedge: HedgePolicy | None = None,
        bitmap_filter=None,
        merge_backend=None,
        faults=None,
        shard_endpoints=None,
        heartbeat_interval: float | None = None,
        remote_pool_size: int = 2,
        remote_connect_timeout: float = 1.0,
        remote_request_timeout: float | None = 5.0,
        vocabulary: dict[str, int] | None = None,
    ):
        super().__init__(workers, queue_limit, default_deadline, clock, latency_capacity)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shard_workers < 1:
            raise ValueError(f"shard_workers must be >= 1, got {shard_workers}")
        if query_cache < 0:
            raise ValueError(f"query_cache must be >= 0, got {query_cache}")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0 or None, got {heartbeat_interval}"
            )
        endpoints = None
        if shard_endpoints is not None:
            endpoints = list(shard_endpoints)
            if len(endpoints) != shards:
                raise ValueError(
                    f"shard_endpoints must name one backend per shard:"
                    f" got {len(endpoints)} for {shards} shards"
                )
        self.predicate = predicate
        self.tokenizer = tokenizer
        self.router = ShardRouter(shards)
        self.retry_policy = retry_policy
        self.hedge = hedge
        self.faults = faults
        self.n_shard_workers = shard_workers
        self.heartbeat_interval = heartbeat_interval
        self._bitmap_filter = bitmap_filter
        self._merge_backend = merge_backend
        self._remote_pool_size = remote_pool_size
        self._remote_connect_timeout = remote_connect_timeout
        self._remote_request_timeout = remote_request_timeout
        #: One token-id space across every shard (see SimilarityIndex's
        #: ``vocabulary=``); mutations are serialized by ``_mutate_lock``.
        self._vocabulary: dict[str, int] = (
            vocabulary if vocabulary is not None else {}
        )
        self._mutate_lock = threading.Lock()
        self._total = 0
        #: global rid -> (shard id, shard-local rid)
        self._locations: list[tuple[int, int]] = []
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        self._shards = []
        for sid in range(shards):
            backend, remote = self._make_backend(
                endpoints[sid] if endpoints is not None else None
            )
            self._shards.append(
                _Shard(
                    sid,
                    backend,
                    breaker_factory() if breaker_factory is not None else None,
                    QueryCache(query_cache) if query_cache else None,
                    _ShardPool(sid, shard_workers),
                    remote=remote,
                )
            )
        self._complete_queries = 0
        self._partial_queries = 0
        self._hedges = 0
        self._hedge_wins = 0

    def _make_backend(self, endpoint):
        """Build one shard's backend: a local index or a remote client."""
        if endpoint is None or (
            isinstance(endpoint, str) and endpoint.strip().lower() in ("", "local")
        ):
            return self._make_index(), False
        if isinstance(endpoint, str):
            host, port = parse_endpoint(endpoint.strip())
        else:
            host, port = endpoint
        client = RemoteShardClient(
            host,
            port,
            retry_policy=self.retry_policy,
            pool_size=self._remote_pool_size,
            connect_timeout=self._remote_connect_timeout,
            request_timeout=self._remote_request_timeout,
            clock=self.clock,
            on_retry=self._count_retry,
        )
        return client, True

    def _make_index(self) -> SimilarityIndex:
        return SimilarityIndex(
            self.predicate,
            tokenizer=self.tokenizer,
            bitmap_filter=self._bitmap_filter,
            merge_backend=self._merge_backend,
            vocabulary=self._vocabulary,
        )

    def _on_start(self) -> None:
        if self.heartbeat_interval is not None and any(
            shard.remote for shard in self._shards
        ):
            self._heartbeat_stop.clear()
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, name="shard-heartbeat", daemon=True
            )
            self._heartbeat_thread.start()

    def _on_drained(self) -> None:
        # Runs on every drain/stop (possibly repeatedly) — each teardown
        # below is a no-op the second time.
        self._heartbeat_stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=1.0)
            self._heartbeat_thread = None
        for shard in self._shards:
            shard.pool.stop()
            if shard.remote:
                shard.index.close()

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        """Ping every remote shard each interval, feeding its breaker.

        The heartbeat is the breaker's trial traffic: consecutive
        failed pings trip the circuit without a query having to die
        for it, and once the cooldown lapses the ping takes the
        half-open trial slot — a recovered node closes its breaker
        within one interval, before any query is risked on it. A ping
        while the circuit is open (cooldown still running) is skipped
        entirely, exactly like a query would be.
        """
        while not self._heartbeat_stop.wait(self.heartbeat_interval):
            for shard in self._shards:
                if not shard.remote or shard.quarantined is not None:
                    continue
                breaker = shard.breaker
                if breaker is not None:
                    try:
                        breaker.admit()
                    except CircuitOpen:
                        continue  # cooldown running; recheck next beat
                with shard.rwlock.read_locked():
                    client = shard.index
                try:
                    client.ping()
                except BaseException:  # noqa: BLE001 — any failure is a miss
                    if breaker is not None:
                        breaker.record_failure()
                    with self._cond:
                        shard.heartbeats_failed += 1
                else:
                    if breaker is not None:
                        breaker.record_success()
                    with self._cond:
                        shard.heartbeats_ok += 1

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def add(self, item, payload=None) -> int:
        """Insert a record; returns its *global* rid.

        Routed to ``router.shard_of(rid)``. Serialized server-wide (the
        shared vocabulary and the rid counter both need it); the insert
        holds the owning shard's reference lock on the read side, so a
        concurrent generation flip either waits for it or happens
        entirely before — either way the record survives the flip via
        the catch-up replay.
        """
        with self._mutate_lock:
            rid = self._total
            shard = self._shards[self.router.shard_of(rid)]
            if shard.quarantined is not None:
                raise ShardUnavailable(
                    shard.name, f"quarantined: {shard.quarantined}"
                )
            local = len(shard.global_rids)
            # Mapping rows are appended before the insert: a probe that
            # sees the new record always finds its global rid.
            self._locations.append((shard.sid, local))
            shard.global_rids.append(rid)
            try:
                with shard.rwlock.read_locked():
                    if shard.remote:
                        # Idempotent wire insert: the node dedupes a
                        # retried ADD whose response was lost and
                        # refuses any other rid, so a flaky network
                        # cannot desync its rids from the global map.
                        got = shard.index.add(
                            item, payload=payload, expected_rid=local
                        )
                    else:
                        got = shard.index.add(item, payload=payload)
            except RidDesync as exc:
                # The node refused or botched the verified insert: its
                # rid space no longer lines up with the global map, so
                # stop routing anything to it.
                shard.global_rids.pop()
                self._locations.pop()
                self._quarantine(shard, str(exc))
                raise
            except BaseException:
                shard.global_rids.pop()
                self._locations.pop()
                raise
            if got != local:
                # The shard's local-rid space no longer lines up with
                # the global-rid map; every rid it answers from now on
                # is suspect. Fail loudly and stop using it rather
                # than serve wrongly-mapped pairs.
                shard.global_rids.pop()
                self._locations.pop()
                reason = (
                    f"insert landed at shard-local rid {got},"
                    f" expected {local}"
                )
                self._quarantine(shard, reason)
                raise ShardUnavailable(shard.name, f"rid desync: {reason}")
            self._total += 1
            return rid

    def extend(self, items) -> list[int]:
        """Insert many records; returns their global rids."""
        return [self.add(item) for item in items]

    def __len__(self) -> int:
        return self._total

    def payload(self, rid: int):
        """The payload of global record ``rid`` (parity with the index).

        Raises ``NotImplementedError`` when the record lives on a
        remote shard — payloads are not served over the shard wire.
        """
        sid, local = self._locations[rid]
        shard = self._shards[sid]
        with shard.rwlock.read_locked():
            return shard.index.payload(local)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def submit(
        self,
        item,
        deadline: float | None = None,
        context: JoinContext | None = None,
        require_complete: bool = False,
    ) -> Future:
        """Admit one query; the Future resolves to a :class:`ShardedResult`.

        With ``require_complete=True`` a query that loses any shard
        fails with :class:`~repro.runtime.errors.PartialResult` instead
        of resolving partial.
        """
        return self._admit(
            item, deadline, context, batch=False, require_complete=require_complete
        )

    def query(
        self,
        item,
        deadline: float | None = None,
        timeout: float | None = None,
        require_complete: bool = False,
    ) -> ShardedResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(
            item, deadline=deadline, require_complete=require_complete
        ).result(timeout=timeout)

    def _execute(self, request: _Request) -> ShardedResult:
        context = request.context
        self._check_not_expired(context)
        item = request.item

        key = None
        if any(shard.cache is not None for shard in self._shards):
            key = QueryCache.key_for(item)

        # Scatter: consult each shard's cache, then launch the misses
        # onto their shards' pools concurrently.
        results: dict[int, list[MatchPair]] = {}
        pending: list[tuple[_Shard, Future]] = []
        failed: list[int] = []
        for shard in self._shards:
            if shard.quarantined is not None:
                # A desynced shard is lost for every query — no probe,
                # no cache read — but the accounting stays exact.
                failed.append(shard.sid)
                with self._cond:
                    shard.failures += 1
                continue
            if key is not None and shard.cache is not None:
                hit, value = shard.cache.lookup(key, shard.stamp())
                if hit:
                    results[shard.sid] = value
                    continue
            probe = shard.pool.submit(
                self._probe_shard, shard, item, self._carve_context(context), key
            )
            with self._cond:
                shard.probes += 1
            pending.append((shard, probe))

        # Gather: shards complete in any order; each is awaited under
        # the query's remaining deadline, hedged per its own policy.
        for shard, probe in pending:
            ok, value = self._await_shard(shard, probe, item, context, key)
            if ok:
                results[shard.sid] = value
            else:
                failed.append(shard.sid)
                with self._cond:
                    shard.failures += 1

        result = self._merge(results, failed)
        with self._cond:
            if result.partial:
                self._partial_queries += 1
            else:
                self._complete_queries += 1
        if result.partial and request.require_complete:
            raise PartialResult(result.shards_failed, len(self._shards), result)
        return result

    def _carve_context(self, context: JoinContext | None) -> JoinContext | None:
        """A per-shard deadline budget carved from the query's remainder.

        The carved context shares the query's cancellation token and
        clock; its deadline is whatever the query has left *now*, so a
        probe can never outlive its query. Anchored immediately — the
        budget starts at scatter, not at the probe's first tick.
        """
        if context is None:
            return None
        remaining = context.remaining()
        if remaining is None:
            return JoinContext(
                cancel_token=context.cancel_token, clock=context.clock
            )
        carved = JoinContext(
            deadline_seconds=max(remaining, 1e-9),
            cancel_token=context.cancel_token,
            clock=context.clock,
        )
        carved.start()
        return carved

    def _probe_shard(self, shard: _Shard, item, context, key):
        """One probe attempt chain against one shard (runs on its pool).

        Returns the shard-*local* matches; stores them in the shard's
        cache stamped with the (epoch, generation) pair read when the
        index reference was grabbed — a flip or add in between moves
        the stamp and the store is dropped, never served stale.
        """
        if shard.quarantined is not None:
            # Belt-and-braces for probes racing the quarantine moment;
            # the scatter loop already skips quarantined shards.
            raise ShardUnavailable(
                shard.name, f"quarantined: {shard.quarantined}"
            )
        if shard.breaker is not None:
            shard.breaker.admit()  # CircuitOpen: fail fast, not recorded
        with shard.rwlock.read_locked():
            index = shard.index
            stamp = (shard.epoch, index.generation)
        started = self.clock()

        def attempt():
            if self.faults is not None:
                self.faults.apply(shard.sid)
            return index.query(item, context=context)

        def count_retry(attempt_no, exc, delay):
            with self._cond:
                shard.retries += 1
            self._count_retry(attempt_no, exc, delay)

        try:
            # Remote shards retry inside their client (same policy,
            # same deadline clamp, plus reconnect-on-failure) — running
            # the outer policy too would square the attempt count.
            if self.retry_policy is not None and not shard.remote:
                local = self.retry_policy.run(
                    attempt, on_retry=count_retry, context=context
                )
            else:
                local = attempt()
        except BaseException:
            if shard.breaker is not None:
                shard.breaker.record_failure()
            raise
        if shard.breaker is not None:
            shard.breaker.record_success()
        shard.latency.observe(self.clock() - started)
        if key is not None and shard.cache is not None:
            shard.cache.store(key, stamp, local)
        return local

    def _await_shard(
        self, shard: _Shard, probe: Future, item, context, key
    ) -> tuple[bool, list[MatchPair] | None]:
        """Wait for one shard within the query's deadline, hedging.

        Returns ``(True, local_matches)`` from whichever probe finishes
        first with a result, or ``(False, None)`` when every issued
        probe failed or the deadline ran out — the shard is lost *for
        this query only*; an abandoned probe keeps running on the
        shard's pool and may still warm the cache and the breaker.
        """

        def remaining() -> float | None:
            return context.remaining() if context is not None else None

        futures = [probe]
        hedged: Future | None = None
        delay = self.hedge.delay_for(shard.latency) if self.hedge is not None else None
        left = remaining()
        if delay is not None and (left is None or left > 0):
            budget = delay if left is None else min(delay, left)
            done, _ = futures_wait(futures, timeout=budget, return_when=FIRST_COMPLETED)
            if not done:
                hedged = shard.pool.submit(
                    self._probe_shard, shard, item, self._carve_context(context), key
                )
                futures.append(hedged)
                with self._cond:
                    self._hedges += 1
                    shard.hedges += 1

        outstanding = set(futures)
        while outstanding:
            left = remaining()
            # timeout=0 still collects already-completed probes: a
            # result that beat the deadline is used, never discarded.
            timeout = None if left is None else max(left, 0.0)
            done, outstanding = futures_wait(
                outstanding, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                return False, None  # deadline elapsed mid-wait
            for future in done:
                if future.exception() is None:
                    if hedged is not None and future is hedged:
                        with self._cond:
                            self._hedge_wins += 1
                            shard.hedge_wins += 1
                    return True, future.result()
        return False, None  # every issued probe raised

    def _merge(self, results: dict[int, list[MatchPair]], failed: list[int]) -> ShardedResult:
        """Exact global merge: remap local rids, sort, account shards."""
        total = self._total
        matches: list[MatchPair] = []
        for shard in self._shards:
            local = results.get(shard.sid)
            if local is None:
                continue
            rids = shard.global_rids
            known = len(rids)
            if any(pair.rid_a >= known for pair in local):
                # The shard answered with local rids the front end never
                # mapped — its rid space has desynced (e.g. a doubled
                # insert). Never guess at a mapping: drop the shard from
                # this answer as failed and quarantine it.
                del results[shard.sid]
                failed.append(shard.sid)
                self._quarantine(
                    shard,
                    f"answered shard-local rid >= the {known} mapped records",
                )
                with self._cond:
                    shard.failures += 1
                continue
            for pair in local:
                matches.append(MatchPair(rids[pair.rid_a], total, pair.similarity))
        matches.sort(key=lambda pair: pair.rid_a)
        return ShardedResult(
            matches=tuple(matches),
            shards_ok=tuple(sorted(results)),
            shards_failed=tuple(sorted(failed)),
            partial=bool(failed),
        )

    def _quarantine(self, shard: _Shard, reason: str) -> None:
        """Stop serving a shard whose rid space desynced from the map.

        Sticky and loud on purpose: the desync is a broken invariant,
        not a transient fault — probes and adds fail fast (exact
        ``shards_failed`` accounting), the cache is purged so no
        pre-desync entry can be served, and ``health()`` names the
        reason. Recovery means rebuilding the shard, not retrying.
        """
        with self._cond:
            if shard.quarantined is None:
                shard.quarantined = reason
        if shard.cache is not None:
            shard.cache.clear()

    # ------------------------------------------------------------------
    # Reindex
    # ------------------------------------------------------------------

    def reindex(
        self, shard_ids=None, block: bool = True, timeout: float | None = None
    ) -> list[GenerationBuilder]:
        """Rebuild shard index generations with zero query downtime.

        Args:
            shard_ids: which shards to rebuild (default: all).
            block: wait for every build to flip — re-raising the first
                build failure, and raising
                :class:`~repro.runtime.errors.ReindexTimeout` when any
                build is still running after ``timeout`` (the stalled
                builds keep running and will still flip; the exception
                carries them so the caller can keep waiting).
                ``block=False`` returns immediately with the running
                builders — ``wait()`` them yourself.
            timeout: per-builder wait bound when blocking.

        Queries never wait on a build (it runs entirely off-lock) and
        never observe a torn index (the swap is a single reference
        assignment under the shard's write lock); adds landing during
        the build are replayed into the new generation before the flip.

        Remote shards rebuild *on their node*: the ``reindex`` wire op
        runs the same :class:`GenerationBuilder` flip there, and the
        returned handle exposes the builder surface (``wait`` /
        ``error`` / ``flipped`` / ``built`` / ``caught_up``), so
        blocking, timeouts, and :class:`ReindexTimeout` accounting are
        uniform across local and remote shards.
        """
        ids = range(len(self._shards)) if shard_ids is None else shard_ids
        builders = []
        for sid in ids:
            shard = self._shards[sid]
            if shard.remote:
                builders.append(_RemoteReindexHandle(shard, clock=self.clock).start())
            else:
                builders.append(
                    GenerationBuilder(
                        shard, self._make_index, clock=self.clock
                    ).start()
                )
        if block:
            stalled = [
                builder for builder in builders if not builder.wait(timeout)
            ]
            if stalled:
                raise ReindexTimeout(stalled, builders, timeout)
        return builders

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """Operational snapshot: base accounting plus the shard map.

        Adds to the base keys: ``records`` (global count), ``partial``
        (complete/partial query tallies — a growing ``partial`` count
        is the page-me signal), ``hedging`` (issued/wins), ``router``
        (shard count + per-shard record spread), ``latency``
        (end-to-end, queue wait included), ``index`` (counters summed
        across shards, same shape the single-index server reports), and
        ``shards`` — one entry per shard with its records, flip epoch,
        index generation, breaker state, cache stats, probe latency
        window, and probe/hedge/failure tallies.
        """
        snapshot = self._base_health()
        with self._cond:
            per_shard_tallies = [
                (
                    s.probes, s.hedges, s.hedge_wins, s.failures, s.retries,
                    s.heartbeats_ok, s.heartbeats_failed,
                )
                for s in self._shards
            ]
            snapshot["partial"] = {
                "complete": self._complete_queries,
                "partial": self._partial_queries,
            }
            snapshot["hedging"] = {
                "enabled": self.hedge is not None,
                "issued": self._hedges,
                "wins": self._hedge_wins,
            }
        snapshot["records"] = self._total
        snapshot["router"] = {
            "shards": len(self._shards),
            "spread": [len(s.global_rids) for s in self._shards],
        }
        snapshot["latency"] = self.latency.summary()
        aggregate: dict = {}
        shard_rows = []
        total_reconnects = 0
        for shard, tallies in zip(self._shards, per_shard_tallies):
            probes, hedges, hedge_wins, failures, retries, hb_ok, hb_failed = tallies
            with shard.rwlock.read_locked():
                index = shard.index
                epoch = shard.epoch
            reconnects = 0
            error = None
            if shard.remote:
                # The client's own tallies supersede the local ones: its
                # retry policy (not the probe path's) re-issued the ops.
                retries = index.retries
                reconnects = index.reconnects
                counters = {}
                try:
                    counters = index.counters_snapshot()
                except (OSError, JoinRuntimeError) as exc:
                    # A dead node must not take health() down with it —
                    # its row reports the failure instead of counters.
                    error = f"{type(exc).__name__}: {exc}"
            else:
                counters = index.counters_snapshot()
            total_reconnects += reconnects
            for name, value in counters.items():
                aggregate[name] = aggregate.get(name, 0) + value
            row = {
                "shard": shard.sid,
                "records": len(shard.global_rids),
                "epoch": epoch,
                "generation": index.generation,
                "breaker": (
                    {
                        "state": shard.breaker.state,
                        "times_opened": shard.breaker.times_opened,
                    }
                    if shard.breaker is not None
                    else None
                ),
                "cache": shard.cache.stats() if shard.cache is not None else None,
                "latency": shard.latency.summary(),
                "probes": probes,
                "hedges": hedges,
                "hedge_wins": hedge_wins,
                "failures": failures,
                "retries": retries,
                "reconnects": reconnects,
                "remote": shard.remote,
                "quarantined": shard.quarantined,
            }
            if shard.remote:
                row["endpoint"] = index.endpoint
                row["heartbeats"] = {"ok": hb_ok, "failed": hb_failed}
            if error is not None:
                row["error"] = error
            shard_rows.append(row)
        snapshot["reconnects"] = total_reconnects
        snapshot["heartbeat"] = {
            "interval": self.heartbeat_interval,
            "ok": sum(t[5] for t in per_shard_tallies),
            "failed": sum(t[6] for t in per_shard_tallies),
        }
        snapshot["shards"] = shard_rows
        snapshot["index"] = {"records": self._total, "counters": aggregate}
        return snapshot

    def counters_snapshot(self) -> dict:
        """Cost counters summed across every shard's current generation.

        A remote shard's counters cost one health round trip; an
        unreachable node contributes nothing (rather than failing the
        whole snapshot).
        """
        aggregate: dict = {}
        for shard in self._shards:
            with shard.rwlock.read_locked():
                index = shard.index
            try:
                counters = index.counters_snapshot()
            except (OSError, JoinRuntimeError):
                if not shard.remote:
                    raise
                continue
            for name, value in counters.items():
                aggregate[name] = aggregate.get(name, 0) + value
        return aggregate
