"""LRU query-result cache with generation-based invalidation.

Serving workloads repeat queries (hot entities, retried clients); a
probe is pure given the index contents, so its result can be reused
until the index mutates. :class:`QueryCache` keys each entry with the
:attr:`SimilarityIndex.generation` stamp current when the result was
computed; any ``add``/``rebind`` bumps the stamp, and the first lookup
that sees a newer stamp empties the cache wholesale — entries can never
outlive the index state they were computed from.

Thread-safety: all operations take the cache's own lock, never the
index's, so cache hits don't touch the read lock at all (that is the
point). A mutation racing a ``store`` can only cause the stale entry to
be dropped (the store is a no-op for non-current generations) — never a
stale hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["QueryCache"]


class QueryCache:
    """Bounded LRU mapping ``query key -> list[MatchPair]``."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self._generation: int | None = None
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    @staticmethod
    def key_for(item) -> tuple | None:
        """A hashable cache key for a query item, or None (uncacheable).

        Mirrors ``SimilarityIndex._tokens_of``: strings are tokenized
        by the index, so they key as themselves; token iterables key by
        their ``str()`` forms. Exotic items that fail either road are
        simply not cached — correctness never depends on a hit.
        """
        if isinstance(item, str):
            return ("text", item)
        try:
            return ("tokens", tuple(str(token) for token in item))
        except TypeError:
            return None

    def lookup(self, key: tuple, generation: int):
        """Return ``(hit, result)``; a generation change flushes first."""
        with self._lock:
            if self._generation != generation:
                if self._entries:
                    self._invalidations += 1
                    self._entries.clear()
                self._generation = generation
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return False, None
            self._entries.move_to_end(key)
            self._hits += 1
            return True, result

    def store(self, key: tuple, generation: int, result) -> None:
        """Insert a computed result; dropped when the index moved on."""
        with self._lock:
            if self._generation != generation:
                return
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/size snapshot for the health endpoint."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / total if total else 0.0,
                "invalidations": self._invalidations,
            }
