"""Stable record-id → shard routing for the sharded serving tier.

Records are partitioned by *hashing* the record id rather than
range-splitting it: Christiani, Pagh & Sivertsen's skew-robustness
argument (PAPERS.md) — contiguous id ranges inherit whatever temporal
or source locality produced them (one hot tenant, one bulk import), so
range splits concentrate both storage and probe work on one shard,
while a mixed hash spreads any arrival order near-uniformly.

The hash must be *stable*: the same rid maps to the same shard in every
process, forever, because the mapping is baked into which shard owns
the record. Python's builtin ``hash`` is randomized per process
(``PYTHONHASHSEED``), so the router uses the same Fibonacci-multiplier
mix as :mod:`repro.filters.bitmap` — deterministic, dependency-free,
and avalanching enough that consecutive rids land on different shards.
"""

from __future__ import annotations

__all__ = ["ShardRouter"]

#: 64-bit Fibonacci hashing multiplier (2^64 / golden ratio) — the same
#: mix :mod:`repro.filters.bitmap` uses for signature bits.
_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


class ShardRouter:
    """Deterministic, skew-robust ``rid -> shard`` assignment.

    Args:
        n_shards: number of shards (>= 1). Shard ids are ``0..n-1``.
    """

    __slots__ = ("n_shards",)

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards

    def shard_of(self, rid: int) -> int:
        """The shard owning global record ``rid`` (stable across runs)."""
        mixed = ((rid + 1) * _MIX) & _MASK
        mixed ^= mixed >> 29
        return mixed % self.n_shards

    def spread(self, n_records: int) -> list[int]:
        """Per-shard record counts for rids ``0..n_records-1``.

        Health-report diagnostic: a healthy router keeps the max/min
        ratio near 1 for any non-trivial record count.
        """
        counts = [0] * self.n_shards
        for rid in range(n_records):
            counts[self.shard_of(rid)] += 1
        return counts

    def __repr__(self) -> str:
        return f"ShardRouter(n_shards={self.n_shards})"
