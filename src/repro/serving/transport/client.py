"""RemoteShardClient: a network shard that quacks like a local one.

The front-end side of the remote shard transport. A
:class:`RemoteShardClient` exposes the same probe surface the sharded
tier already programs against for an in-process shard index —
``query`` / ``query_batch`` / ``add`` / ``generation`` /
``counters_snapshot`` / ``__len__`` — so
:class:`~repro.serving.sharded.ShardedIndexServer` can hold one in a
``_Shard`` slot and scatter-gather over a mix of local and remote
shards without a single branch in the merge path.

Robustness model, per the tentpole contract:

* **Small connection pool, reconnect on failure.** Idle connections
  are reused; a connection that fails mid-exchange is torn down
  (counted in :attr:`reconnects`) and the next attempt dials fresh.
  Reconnect-retry runs under the existing
  :class:`~repro.serving.retry.RetryPolicy` — exponential backoff +
  jitter, clamped to the carved :class:`JoinContext` deadline, which
  also rides the frame header so the node enforces the same budget.
* **Typed failures.** Connect/transport failures raise
  :class:`~repro.runtime.errors.ShardUnavailable` (a
  ``ConnectionError``, hence retryable); corrupt frames raise
  :class:`~repro.runtime.errors.FrameChecksumError` (retryable);
  unframeable streams raise
  :class:`~repro.runtime.errors.WireProtocolError` (not retryable —
  the peer is speaking a different protocol). Remote deadline expiry
  comes back as a real :class:`~repro.runtime.errors.JoinTimeout`.
* **Generation stamping.** Every response header carries the node's
  ``(epoch, generation)``; :attr:`generation` returns the last-seen
  pair, so the front end's per-shard cache stamp
  ``(local epoch, remote stamp)`` moves exactly when the remote index
  does. All mutations flow through this client (the front end owns
  routing), so the stamp is refreshed by the very response that made
  it stale; heartbeat pings bound staleness for out-of-band changes.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
import uuid
from collections.abc import Callable

from repro.runtime.context import JoinContext
from repro.runtime.errors import (
    DeadlineExceeded,
    JoinCancelled,
    JoinTimeout,
    RidDesync,
    ShardUnavailable,
    WireProtocolError,
)
from repro.serving.retry import RetryPolicy
from repro.serving.transport import wire

__all__ = ["RemoteShardClient", "parse_endpoint"]


def parse_endpoint(spec: str) -> tuple[str, int]:
    """Parse ``host:port`` (the ``--shard-endpoints`` entry format)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"endpoint must be host:port, got {spec!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"endpoint port must be an integer, got {spec!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"endpoint port out of range in {spec!r}")
    return host, port


class RemoteShardClient:
    """Probe interface to one :class:`ShardServer` over TCP.

    Args:
        host / port: the shard node's address.
        retry_policy: reconnect-on-failure policy for each op; ``None``
            means one attempt. Backoff is clamped to the op's carved
            deadline (see :meth:`RetryPolicy.run`).
        pool_size: idle connections kept for reuse (a "small pool" —
            each in-flight op holds one connection for its round trip).
        connect_timeout: dial timeout in seconds.
        request_timeout: per-round-trip socket timeout when the op has
            no deadline; a deadline always bounds the trip tighter.
        clock: injectable monotonic clock.
        on_retry: extra ``(attempt, exc, delay)`` callback alongside
            the internal retry counter — the sharded server wires its
            global ``retried`` tally through this.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry_policy: RetryPolicy | None = None,
        pool_size: int = 2,
        connect_timeout: float = 1.0,
        request_timeout: float | None = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Callable | None = None,
    ):
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.host = host
        self.port = port
        self.endpoint = f"{host}:{port}"
        self.retry_policy = retry_policy
        self.pool_size = pool_size
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.clock = clock
        self._extra_on_retry = on_retry
        self._lock = threading.Lock()
        self._idle: list[socket.socket] = []
        self._request_ids = itertools.count(1)
        self._stamp: tuple[int, int] = (0, 0)
        self._closed = False
        #: Op attempts re-issued by the retry policy.
        self.retries = 0
        #: Connections torn down after a transport failure (each one is
        #: re-dialed by a later attempt — the reconnect count).
        self.reconnects = 0

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise ShardUnavailable(self.endpoint, "client is closed")
            if self._idle:
                return self._idle.pop()
        try:
            conn = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ShardUnavailable(self.endpoint, f"connect failed: {exc}") from exc
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _checkin(self, conn: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.pool_size:
                self._idle.append(conn)
                return
        _close_quietly(conn)

    def _discard(self, conn: socket.socket) -> None:
        with self._lock:
            self.reconnects += 1
        _close_quietly(conn)

    def close(self) -> None:
        """Close every pooled connection; idempotent."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            _close_quietly(conn)

    def __enter__(self) -> "RemoteShardClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The wire round trip
    # ------------------------------------------------------------------

    def _count_retry(self, attempt: int, exc: BaseException, delay: float) -> None:
        with self._lock:
            self.retries += 1
        if self._extra_on_retry is not None:
            self._extra_on_retry(attempt, exc, delay)

    def _call(
        self,
        op: int,
        payload: bytes = b"",
        context: JoinContext | None = None,
        timeout: float | None = None,
    ) -> wire.Frame:
        def attempt() -> wire.Frame:
            return self._attempt(op, payload, context, timeout)

        if self.retry_policy is not None:
            return self.retry_policy.run(
                attempt, on_retry=self._count_retry, context=context
            )
        return attempt()

    def _attempt(
        self,
        op: int,
        payload: bytes,
        context: JoinContext | None,
        timeout: float | None,
    ) -> wire.Frame:
        deadline = -1.0
        trip_timeout = timeout if timeout is not None else self.request_timeout
        if context is not None:
            context.start()
            remaining = context.remaining()
            if remaining is not None:
                if remaining <= 0:
                    raise DeadlineExceeded(
                        context.elapsed(), context.deadline_seconds
                    )
                deadline = remaining
                trip_timeout = (
                    remaining
                    if trip_timeout is None
                    else min(trip_timeout, remaining)
                )
        # The id is a u32 on the wire: wrap it into [1, 0xFFFFFFFF] so
        # the echo comparison survives past 2**32 ops, and keep 0 out of
        # the range — it is reserved for the node's *unrequested* error
        # frames (a request it could not even frame).
        request_id = (next(self._request_ids) - 1) % 0xFFFFFFFF + 1
        conn = self._checkout()
        try:
            conn.settimeout(trip_timeout)
            conn.sendall(
                wire.encode_frame(
                    op, payload, request_id=request_id, deadline=deadline
                )
            )
            frame = wire.read_frame(wire.socket_reader(conn))
        except WireProtocolError:
            # Checksum (a subclass) and framing violations alike: the
            # stream is unsynced, the connection cannot be reused.
            self._discard(conn)
            raise
        except socket.timeout as exc:
            self._discard(conn)
            # A timed-out trip is deadline expiry only when the budget
            # is actually spent; a round trip bounded by the smaller
            # request_timeout with deadline to spare is a transient
            # shard fault — retryable, so the remaining budget is used.
            if context is not None:
                remaining = context.remaining()
                if remaining is not None and remaining <= 0:
                    raise JoinTimeout(
                        context.elapsed(), context.deadline_seconds
                    ) from exc
            raise ShardUnavailable(
                self.endpoint, f"{wire.OP_NAMES.get(op, op)} timed out"
            ) from exc
        except OSError as exc:
            self._discard(conn)
            raise ShardUnavailable(
                self.endpoint, f"{wire.OP_NAMES.get(op, op)} failed: {exc}"
            ) from exc
        if frame.is_error and frame.request_id == 0:
            # The node could not frame our *request* (bytes corrupted in
            # flight, say) and answered with its best-effort error frame
            # — request_id 0, which no real op ever uses — before
            # hanging up. That is a transient transport fault, not a
            # protocol mismatch: surface it retryable so the policy
            # re-issues on a fresh connection.
            self._discard(conn)
            try:
                record = wire.decode_error(frame.payload)
                detail = (
                    f"remote {record.get('name', '?')}:"
                    f" {record.get('message', '')}"
                )
            except WireProtocolError:
                detail = "unreadable error payload"
            raise ShardUnavailable(
                self.endpoint,
                f"node could not frame the"
                f" {wire.OP_NAMES.get(op, op)} request ({detail})",
            )
        if (
            not frame.is_response
            or frame.op != op
            or frame.request_id != request_id
        ):
            self._discard(conn)
            raise WireProtocolError(
                f"mismatched response: sent {wire.OP_NAMES.get(op, op)}"
                f" #{request_id}, got {wire.OP_NAMES.get(frame.op, frame.op)}"
                f" #{frame.request_id}"
                f" ({'response' if frame.is_response else 'request'})"
            )
        with self._lock:
            self._stamp = (frame.epoch, frame.generation)
        self._checkin(conn)
        if frame.is_error:
            raise self._rebuild_error(wire.decode_error(frame.payload))
        return frame

    def _rebuild_error(self, record: dict) -> BaseException:
        """Typed errors cross the wire typed; the rest degrade honestly.

        Deadline expiry and cancellation keep their types (the sharded
        tier's accounting and the retry policy's classifier depend on
        them — neither is retryable). Anything else becomes
        :class:`ShardUnavailable`, which is retryable on purpose: a
        remote probe failure is indistinguishable from a local
        transient fault, and both should burn retry budget the same
        way.
        """
        name = record.get("name", "?")
        message = record.get("message", "")
        if name in ("JoinTimeout", "DeadlineExceeded") and "elapsed" in record:
            return JoinTimeout(record["elapsed"], record["deadline"])
        if name == "JoinCancelled":
            return JoinCancelled(message or "cancelled on shard node")
        if name == "RidDesync":
            # The node refused (or botched) an idempotent insert: its
            # rid space disagrees with the front end's map. Typed so the
            # front end quarantines the shard; non-retryable — retrying
            # a desynced insert only digs deeper.
            return RidDesync(f"node reports: {message}")
        if name == "WireProtocolError":
            # Other contract violations the node detected at the op
            # layer (an unservable op, say) stay non-retryable too:
            # re-issuing the same request cannot fix them.
            return WireProtocolError(f"node reports: {message}")
        return ShardUnavailable(self.endpoint, f"remote {name}: {message}")

    # ------------------------------------------------------------------
    # The probe interface (what _Shard.index must quack like)
    # ------------------------------------------------------------------

    def query(self, item, context: JoinContext | None = None):
        """Probe the remote shard; returns shard-local ``MatchPair``s."""
        frame = self._call(
            wire.OP_QUERY, wire.encode_json({"item": item}), context=context
        )
        matches, _offset = wire.decode_matches(frame.payload)
        return matches

    def query_batch(self, items, context: JoinContext | None = None):
        frame = self._call(
            wire.OP_QUERY_BATCH,
            wire.encode_json({"items": list(items)}),
            context=context,
        )
        return wire.decode_match_lists(frame.payload)

    def add(self, item, payload=None, expected_rid: int | None = None) -> int:
        """Insert a record on the node; returns its shard-local rid.

        ``expected_rid`` makes the insert idempotent and verified: the
        node dedupes a retried ADD whose first response was lost (the
        record already sits at ``expected_rid``) and refuses one that
        would land anywhere else, and the echoed rid is checked here
        too — a lost response must never double-insert or silently
        desync shard-local rids from the front end's global-rid map.
        The sharded front end always passes it; without it the node
        assigns the next rid unconditionally (and a retry can then
        double-insert — only safe when no rid map depends on this
        node).
        """
        body: dict = {"item": item, "payload": payload}
        if expected_rid is not None:
            body["rid"] = expected_rid
            # One token per *logical* insert, reused verbatim by every
            # retry of this call — the node dedupes on (rid, token), so
            # a retry after a lost response is recognized while a new
            # insert that happens to expect the same rid is refused.
            body["token"] = uuid.uuid4().hex
        frame = self._call(wire.OP_ADD, wire.encode_json(body))
        rid = wire.decode_json(frame.payload)["rid"]
        if expected_rid is not None and rid != expected_rid:
            raise RidDesync(
                f"{self.endpoint} answered rid {rid} for an insert"
                f" expected at shard-local rid {expected_rid}"
            )
        return rid

    def reindex(self, timeout: float | None = None) -> dict:
        """Run the node's zero-downtime generation rebuild; blocks."""
        frame = self._call(wire.OP_REINDEX, timeout=timeout)
        return wire.decode_json(frame.payload)

    def health(self) -> dict:
        return wire.decode_json(self._call(wire.OP_HEALTH).payload)

    def ping(self) -> tuple[int, int]:
        """Heartbeat probe; returns the node's (epoch, generation)."""
        frame = self._call(wire.OP_PING)
        return (frame.epoch, frame.generation)

    @property
    def generation(self) -> tuple[int, int]:
        """Last-seen remote ``(epoch, generation)`` stamp.

        Tuple-valued on purpose: the in-process cache stamp compares
        with ``!=``, so a tuple slots into the same
        ``(shard epoch, index generation)`` scheme unchanged.
        """
        with self._lock:
            return self._stamp

    def counters_snapshot(self) -> dict:
        """The node's cost counters (one health round trip)."""
        counters = self.health().get("counters", {})
        return counters if isinstance(counters, dict) else {}

    def __len__(self) -> int:
        return int(self.health().get("records", 0))

    def payload(self, rid: int):
        raise NotImplementedError(
            "record payloads are not served over the shard wire; read them"
            " on the shard node itself"
        )

    def __repr__(self) -> str:
        return f"RemoteShardClient({self.endpoint})"


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.close()
    except OSError:
        pass
