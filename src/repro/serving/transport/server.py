"""ShardServer: one SimilarityIndex shard behind a TCP socket.

The node side of the remote shard transport. A :class:`ShardServer`
owns exactly one :class:`~repro.core.service.SimilarityIndex` and
serves the wire ops (:mod:`repro.serving.transport.wire`) over plain
TCP — one daemon handler thread per connection, the index's own
writer-preferring RWLock doing the real concurrency control, so N
connections probing concurrently behave exactly like N threads on an
in-process :class:`~repro.serving.server.IndexServer`.

The node is deliberately dumb about the cluster: it never sees the
:class:`~repro.serving.router.ShardRouter`, global rids, or the other
shards. The front end (:class:`~repro.serving.sharded.ShardedIndexServer`
with remote endpoints) owns routing and the global-rid mapping; the
node answers in shard-local rids over whatever records the front end
routed to it — the same contract the in-process ``_Shard`` has.

Zero-downtime reindex crosses the wire too: the node hosts its index
inside a shard-shaped holder (``index`` / ``rwlock`` / ``epoch`` /
``begin_reindex()``), so the ``reindex`` op runs the very same
:class:`~repro.serving.generation.GenerationBuilder` two-phase flip the
in-process tier uses — build off-lock while queries keep serving the
old generation, flip under the write lock, bump the node epoch. Every
response header carries the node's ``(epoch, generation)`` stamp, which
is how the front end's per-shard query cache invalidates across the
network.

Failure discipline per connection: a protocol violation or checksum
mismatch on a *request* means the byte stream can no longer be framed,
so the node answers with a best-effort error frame and drops the
connection; an op that merely *fails* (deadline expiry, a fault-injected
probe) answers with a typed error frame on a healthy connection that
keeps serving.
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Callable

from repro.core.service import SimilarityIndex
from repro.runtime.context import JoinContext
from repro.runtime.errors import RidDesync
from repro.runtime.rwlock import RWLock
from repro.serving.generation import GenerationBuilder, _ReindexGuard
from repro.serving.transport import wire

__all__ = ["ShardServer"]


class _HostedShard:
    """Shard-shaped holder for the node's index (GenerationBuilder's duck).

    Same locking discipline as the in-process ``_Shard``: ``rwlock``
    guards the index *reference* — ops grab the reference under the
    read side, a generation flip swaps it under the write side and
    bumps ``epoch``.
    """

    __slots__ = ("index", "rwlock", "epoch", "last_add", "_reindex_guard")

    def __init__(self, index: SimilarityIndex):
        self.index = index
        self.rwlock = RWLock()
        self.epoch = 0
        #: ``(rid, token)`` of the last verified insert — the dedupe
        #: memory for idempotent ADD (only the latest insert can be a
        #: lost-response retry, because the front end serializes adds).
        self.last_add: tuple[int, str] | None = None
        self._reindex_guard = _ReindexGuard()

    def begin_reindex(self) -> Callable[[], None]:
        return self._reindex_guard.acquire("hosted shard")


class ShardServer:
    """Serve one similarity-index shard over TCP.

    Args:
        index: the shard's :class:`SimilarityIndex` (thread-safe; may
            be pre-populated or filled by the front end via ``add``
            ops).
        host / port: bind address; port 0 picks an ephemeral port —
            read :attr:`port` after :meth:`start`.
        index_factory: builds the empty next-generation index for the
            ``reindex`` op; defaults to cloning the live index's
            configuration (same predicate/tokenizer/filter/backend and
            the *same* vocabulary dict, so token ids survive the flip).
        clock: injectable monotonic clock (deadlines, timings).
        backlog: TCP listen backlog.

    Start with :meth:`start` (or as a context manager); :meth:`stop` is
    idempotent and tears down the listener and every open connection.
    """

    def __init__(
        self,
        index: SimilarityIndex,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        index_factory: Callable[[], SimilarityIndex] | None = None,
        clock: Callable[[], float] = time.monotonic,
        backlog: int = 16,
    ):
        self._shard = _HostedShard(index)
        self.host = host
        self._requested_port = port
        self.index_factory = index_factory
        self.clock = clock
        self.backlog = backlog
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._stopping = False
        self._started = False
        #: Per-op served-request tallies (health/diagnostics).
        self.requests: dict[str, int] = {}
        self.errors = 0
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def index(self) -> SimilarityIndex:
        """The currently-serving index generation."""
        with self._shard.rwlock.read_locked():
            return self._shard.index

    @property
    def epoch(self) -> int:
        with self._shard.rwlock.read_locked():
            return self._shard.epoch

    def start(self) -> "ShardServer":
        if self._started:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self._requested_port))
            listener.listen(self.backlog)
        except BaseException:
            listener.close()
            raise
        self._listener = listener
        self._started = True
        self._started_at = self.clock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="shard-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and every open connection; idempotent."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            connections = list(self._connections)
        if self._listener is not None:
            try:
                # shutdown() wakes an accept() blocked in another
                # thread (a bare close() does not on Linux).
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in connections:
            _close_quietly(conn)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            if self._stopping:
                _close_quietly(conn)
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="shard-server-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        reader = wire.socket_reader(conn)
        try:
            while not self._stopping:
                try:
                    frame = wire.read_frame(reader)
                except wire.WireProtocolError as exc:
                    # The stream can no longer be framed: best-effort
                    # typed error, then drop the connection.
                    self.errors += 1
                    try:
                        conn.sendall(
                            wire.encode_frame(
                                wire.OP_PING,
                                wire.encode_error(exc),
                                flags=wire.FLAG_RESPONSE | wire.FLAG_ERROR,
                            )
                        )
                    except OSError:
                        pass
                    return
                except (OSError, ValueError):
                    return  # peer went away (ValueError: closed fd)
                response = self._dispatch(frame)
                try:
                    conn.sendall(response)
                except OSError:
                    return
        finally:
            _close_quietly(conn)
            with self._lock:
                self._connections.discard(conn)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------

    def _stamp(self) -> tuple[int, int]:
        with self._shard.rwlock.read_locked():
            return (self._shard.epoch, self._shard.index.generation)

    def _context_for(self, deadline: float) -> JoinContext | None:
        """Rebuild the caller's remaining budget as a local context.

        The frame header carries *remaining seconds* (negative =
        unbounded), so the node enforces the same deadline the front
        end carved for this shard — a probe can't outlive its query
        just because it crossed a socket.
        """
        if deadline < 0:
            return None
        context = JoinContext(
            deadline_seconds=max(deadline, 1e-9), clock=self.clock
        )
        context.start()
        return context

    def _dispatch(self, frame: wire.Frame) -> bytes:
        op_name = wire.OP_NAMES.get(frame.op, "?")
        self.requests[op_name] = self.requests.get(op_name, 0) + 1
        try:
            payload = self._handle(frame)
            flags = wire.FLAG_RESPONSE
        except Exception as exc:  # noqa: BLE001 — delivered as error frame
            # Exception, not BaseException: KeyboardInterrupt/SystemExit
            # raised in a handler thread must take the connection down,
            # not masquerade as a typed wire error on a live stream.
            # Every op failure worth shipping (deadline expiry, cancel,
            # injected faults) is an Exception.
            self.errors += 1
            payload = wire.encode_error(exc)
            flags = wire.FLAG_RESPONSE | wire.FLAG_ERROR
        epoch, generation = self._stamp()
        return wire.encode_frame(
            frame.op,
            payload,
            request_id=frame.request_id,
            flags=flags,
            epoch=epoch,
            generation=generation,
        )

    def _handle(self, frame: wire.Frame) -> bytes:
        op = frame.op
        if op == wire.OP_PING:
            return b""
        if op == wire.OP_QUERY:
            body = wire.decode_json(frame.payload)
            context = self._context_for(frame.deadline)
            with self._shard.rwlock.read_locked():
                index = self._shard.index
            return wire.encode_matches(index.query(body["item"], context=context))
        if op == wire.OP_QUERY_BATCH:
            body = wire.decode_json(frame.payload)
            context = self._context_for(frame.deadline)
            with self._shard.rwlock.read_locked():
                index = self._shard.index
            return wire.encode_match_lists(
                index.query_batch(body["items"], context=context)
            )
        if op == wire.OP_ADD:
            body = wire.decode_json(frame.payload)
            expected = body.get("rid")
            token = body.get("token")
            # Read side, like the in-process tier's add: the index has
            # its own write lock; the reference lock only has to keep
            # the insert out of a generation flip's swap window.
            with self._shard.rwlock.read_locked():
                index = self._shard.index
                if expected is not None:
                    # Idempotent insert: the front end names the rid it
                    # expects plus a per-insert token. A retried ADD
                    # whose first response was lost after the commit
                    # (same rid, same token as the last insert) dedupes
                    # instead of double-inserting; any other
                    # disagreement about the next rid fails loudly
                    # (non-retryable) before it can desync the front
                    # end's global-rid map.
                    held = len(index)
                    if (
                        expected == held - 1
                        and self._shard.last_add == (expected, token)
                    ):
                        return wire.encode_json(
                            {"rid": expected, "deduped": True}
                        )
                    if expected != held:
                        raise RidDesync(
                            f"front end expects the next insert at rid"
                            f" {expected} but the node holds {held} records"
                        )
                rid = index.add(body["item"], payload=body.get("payload"))
                if expected is not None:
                    self._shard.last_add = (rid, token)
            if expected is not None and rid != expected:
                raise RidDesync(
                    f"insert landed at rid {rid}, front end"
                    f" expected {expected}"
                )
            return wire.encode_json({"rid": rid})
        if op == wire.OP_REINDEX:
            builder = GenerationBuilder(
                self._shard, self._next_generation_factory(), clock=self.clock
            )
            builder.build_and_flip()
            return wire.encode_json(
                {
                    "built": builder.built,
                    "caught_up": builder.caught_up,
                    "flipped": builder.flipped,
                    "seconds": builder.seconds,
                }
            )
        if op == wire.OP_HEALTH:
            return wire.encode_json(self.health())
        raise wire.WireProtocolError(f"op {op} is not servable")

    def health(self) -> dict:
        """The node's health snapshot (also what the HEALTH op serves)."""
        with self._shard.rwlock.read_locked():
            index = self._shard.index
            epoch = self._shard.epoch
        started_at = self._started_at
        return {
            "records": len(index),
            "generation": index.generation,
            "epoch": epoch,
            "counters": index.counters_snapshot(),
            "requests": dict(self.requests),
            "errors": self.errors,
            "uptime": (
                self.clock() - started_at if started_at is not None else None
            ),
        }

    def _next_generation_factory(self) -> Callable[[], SimilarityIndex]:
        if self.index_factory is not None:
            return self.index_factory
        with self._shard.rwlock.read_locked():
            live = self._shard.index
        # Clone the live configuration, sharing the vocabulary dict so
        # token ids (and thus scores) are identical across the flip.
        return lambda: SimilarityIndex(
            live.predicate,
            tokenizer=live.tokenizer,
            bitmap_filter=live._bitmap_config,
            merge_backend=live.merge_backend,
            vocabulary=live._vocabulary,
        )


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:
        pass
