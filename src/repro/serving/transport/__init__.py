"""Remote shard transport: one shard behind a TCP socket.

* :mod:`~repro.serving.transport.wire` — the versioned,
  length-prefixed, CRC32-checksummed binary frame format and the
  struct-packed ``MatchPair`` batch codec (no pickle anywhere).
* :class:`~repro.serving.transport.server.ShardServer` — hosts one
  :class:`~repro.core.service.SimilarityIndex` shard behind a socket
  (the ``repro shard-serve`` CLI runs one).
* :class:`~repro.serving.transport.client.RemoteShardClient` — the
  front-end handle implementing the in-process shard probe interface,
  with a small reconnecting connection pool and deadline propagation.

See ``docs/operations.md`` ("Multi-node serving") for the wire format
and failure-mode table.
"""

from repro.serving.transport.client import RemoteShardClient, parse_endpoint
from repro.serving.transport.server import ShardServer

__all__ = ["RemoteShardClient", "ShardServer", "parse_endpoint"]
