"""Binary wire protocol for remote shard transport.

One frame shape in both directions::

    +--------+---------+----+-------+------------+----------+-------+------------+-------------+
    | magic  | version | op | flags | request_id | deadline | epoch | generation | payload_len |
    | 2s     | u8      | u8 | u8    | u32        | f64      | u32   | u32        | u32         |
    +--------+---------+----+-------+------------+----------+-------+------------+-------------+
    | payload (payload_len bytes)                                                              |
    +------------------------------------------------------------------------------------------+
    | crc32 over header+payload (u32)                                                          |
    +------------------------------------------------------------------------------------------+

All integers big-endian. ``deadline`` on a request is the *remaining*
seconds of the caller's carved :class:`~repro.runtime.context.JoinContext`
budget (negative = unbounded), so the node can enforce the same budget
the front end is holding it to; on a response it echoes the node's
serving state instead (``epoch``/``generation`` identify the index
generation the answer came from — the front end's per-shard query cache
stamps entries with this pair). The trailing CRC32 makes torn and
corrupted frames detectable as :class:`FrameChecksumError` (transient,
retried on a fresh connection) rather than silently-wrong answers.

Payloads are deliberately pickle-free: requests are small UTF-8 JSON
objects (items are strings or token lists — exactly what
``SimilarityIndex`` accepts), and ``MatchPair`` batches travel as a
compact struct-packed array (u32 count then ``count`` × ``(i64 rid_a,
i64 rid_b, f64 similarity)``), the same columnar shape the merge layer
already thinks in.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Callable, Iterable, NamedTuple, Sequence

from repro.core.results import MatchPair
from repro.runtime.errors import FrameChecksumError, WireProtocolError

__all__ = [
    "FLAG_ERROR",
    "FLAG_RESPONSE",
    "Frame",
    "HEADER",
    "MAGIC",
    "MAX_PAYLOAD",
    "OP_ADD",
    "OP_HEALTH",
    "OP_NAMES",
    "OP_PING",
    "OP_QUERY",
    "OP_QUERY_BATCH",
    "OP_REINDEX",
    "VERSION",
    "decode_error",
    "decode_json",
    "decode_match_lists",
    "decode_matches",
    "encode_error",
    "encode_frame",
    "encode_json",
    "encode_match_lists",
    "encode_matches",
    "read_frame",
    "socket_reader",
]

MAGIC = b"RS"
VERSION = 1

#: Header layout; see module docstring for field meanings.
HEADER = struct.Struct(">2sBBBIdIII")
_CRC = struct.Struct(">I")
_PAIR = struct.Struct(">qqd")
_COUNT = struct.Struct(">I")

#: Hard bound on a single frame's payload. Large enough for any real
#: batch (16 MiB ≈ 700k match pairs), small enough that a garbage
#: length field from a misframed stream is rejected instead of
#: triggering a gigabyte allocation.
MAX_PAYLOAD = 16 * 1024 * 1024

OP_QUERY = 1
OP_QUERY_BATCH = 2
OP_ADD = 3
OP_REINDEX = 4
OP_HEALTH = 5
OP_PING = 6

OP_NAMES = {
    OP_QUERY: "query",
    OP_QUERY_BATCH: "query_batch",
    OP_ADD: "add",
    OP_REINDEX: "reindex",
    OP_HEALTH: "health",
    OP_PING: "ping",
}

FLAG_RESPONSE = 0x01
FLAG_ERROR = 0x02


class Frame(NamedTuple):
    """One decoded frame: the header fields plus the verified payload."""

    op: int
    flags: int
    request_id: int
    deadline: float
    epoch: int
    generation: int
    payload: bytes

    @property
    def is_response(self) -> bool:
        return bool(self.flags & FLAG_RESPONSE)

    @property
    def is_error(self) -> bool:
        return bool(self.flags & FLAG_ERROR)


def encode_frame(
    op: int,
    payload: bytes = b"",
    *,
    request_id: int = 0,
    deadline: float = -1.0,
    flags: int = 0,
    epoch: int = 0,
    generation: int = 0,
) -> bytes:
    """Pack one frame (header + payload + CRC32 trailer) into bytes."""
    if len(payload) > MAX_PAYLOAD:
        raise WireProtocolError(
            f"payload of {len(payload)} bytes exceeds the"
            f" {MAX_PAYLOAD}-byte frame bound"
        )
    header = HEADER.pack(
        MAGIC,
        VERSION,
        op,
        flags,
        request_id & 0xFFFFFFFF,
        deadline,
        epoch & 0xFFFFFFFF,
        generation & 0xFFFFFFFF,
        len(payload),
    )
    crc = zlib.crc32(payload, zlib.crc32(header)) & 0xFFFFFFFF
    return b"".join((header, payload, _CRC.pack(crc)))


def read_frame(read_exactly: Callable[[int], bytes]) -> Frame:
    """Read and verify one frame from a byte source.

    ``read_exactly(n)`` must return exactly ``n`` bytes or raise (the
    socket layer maps short reads to connection errors). Raises
    :class:`WireProtocolError` for bad magic/version/length and
    :class:`FrameChecksumError` when the CRC32 trailer disagrees with
    the bytes that arrived.
    """
    header = read_exactly(HEADER.size)
    magic, version, op, flags, request_id, deadline, epoch, generation, length = (
        HEADER.unpack(header)
    )
    if magic != MAGIC:
        raise WireProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise WireProtocolError(
            f"unsupported protocol version {version} (this build speaks {VERSION})"
        )
    if op not in OP_NAMES:
        raise WireProtocolError(f"unknown op {op}")
    if length > MAX_PAYLOAD:
        raise WireProtocolError(
            f"declared payload of {length} bytes exceeds the"
            f" {MAX_PAYLOAD}-byte frame bound"
        )
    payload = read_exactly(length) if length else b""
    (expected,) = _CRC.unpack(read_exactly(_CRC.size))
    actual = zlib.crc32(payload, zlib.crc32(header)) & 0xFFFFFFFF
    if actual != expected:
        raise FrameChecksumError(expected, actual)
    return Frame(op, flags, request_id, deadline, epoch, generation, payload)


def socket_reader(sock) -> Callable[[int], bytes]:
    """A ``read_exactly`` over a socket, for :func:`read_frame`.

    A peer that closes mid-frame surfaces as ``ConnectionError`` (an
    ``OSError``): the client maps it to
    :class:`~repro.runtime.errors.ShardUnavailable` and the server
    treats it as the connection ending.
    """

    def read_exactly(n: int) -> bytes:
        parts = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ConnectionError(
                    f"peer closed with {remaining} of {n} frame bytes outstanding"
                )
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts) if len(parts) != 1 else parts[0]

    return read_exactly


# ---------------------------------------------------------------------------
# payload codecs


def encode_matches(matches: Sequence[MatchPair]) -> bytes:
    """Pack a MatchPair batch: u32 count + count × (i64, i64, f64)."""
    parts = [_COUNT.pack(len(matches))]
    pack = _PAIR.pack
    parts.extend(pack(m.rid_a, m.rid_b, m.similarity) for m in matches)
    return b"".join(parts)


def decode_matches(data: bytes, offset: int = 0) -> tuple[list[MatchPair], int]:
    """Unpack one MatchPair batch; returns (matches, next offset)."""
    if len(data) - offset < _COUNT.size:
        raise WireProtocolError("match batch truncated before its count")
    (count,) = _COUNT.unpack_from(data, offset)
    offset += _COUNT.size
    need = count * _PAIR.size
    if len(data) - offset < need:
        raise WireProtocolError(
            f"match batch truncated: {count} pairs declared,"
            f" {len(data) - offset} bytes remain"
        )
    matches = []
    unpack_from = _PAIR.unpack_from
    for _ in range(count):
        rid_a, rid_b, similarity = unpack_from(data, offset)
        matches.append(MatchPair(rid_a, rid_b, similarity))
        offset += _PAIR.size
    return matches, offset


def encode_match_lists(lists: Iterable[Sequence[MatchPair]]) -> bytes:
    """Pack a batch of MatchPair batches (query_batch response)."""
    lists = list(lists)
    parts = [_COUNT.pack(len(lists))]
    parts.extend(encode_matches(matches) for matches in lists)
    return b"".join(parts)


def decode_match_lists(data: bytes) -> list[list[MatchPair]]:
    if len(data) < _COUNT.size:
        raise WireProtocolError("match-list batch truncated before its count")
    (count,) = _COUNT.unpack_from(data, 0)
    offset = _COUNT.size
    lists = []
    for _ in range(count):
        matches, offset = decode_matches(data, offset)
        lists.append(matches)
    return lists


def encode_json(obj) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def decode_json(data: bytes):
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"undecodable JSON payload: {exc}") from exc


def encode_error(exc: BaseException) -> bytes:
    """Encode an exception for the wire: name + message + typed extras.

    Only fields needed to rebuild the *typed* errors a probe can
    legitimately surface cross-process travel; everything else arrives
    as its name and message and is wrapped in
    :class:`~repro.runtime.errors.ShardUnavailable` client-side.
    """
    record: dict = {
        "name": type(exc).__name__,
        "message": str(exc),
    }
    elapsed = getattr(exc, "elapsed", None)
    deadline = getattr(exc, "deadline", None)
    if elapsed is not None and deadline is not None:
        record["elapsed"] = float(elapsed)
        record["deadline"] = float(deadline)
    return encode_json(record)


def decode_error(data: bytes) -> dict:
    record = decode_json(data)
    if not isinstance(record, dict) or "name" not in record:
        raise WireProtocolError("error payload missing its name")
    return record
