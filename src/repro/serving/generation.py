"""Zero-downtime index generation builds for the sharded serving tier.

A shard that needs a rebuilt index (rebinding corpus statistics,
compaction after churn, a new filter configuration) must not stop
serving while the replacement is built — for a large shard a build
takes seconds to minutes, and the whole point of sharding is that no
single maintenance operation takes the tier down.

:class:`GenerationBuilder` does the classic two-phase flip:

1. **Build** (no shard locks held): snapshot the live index's records
   via :meth:`SimilarityIndex.export_records` and construct a fresh
   index from them. Queries and adds proceed against the live index
   untouched the whole time.
2. **Flip** (under the shard's writer-preferring RWLock, briefly):
   replay the records that were added *after* the snapshot into the new
   index (the catch-up delta — exact, because adds also hold the shard
   lock, so none can race the flip), swap the shard's index reference,
   and bump the shard's flip epoch. The epoch is half of the shard's
   cache generation stamp, so the flip invalidates exactly that shard's
   :class:`~repro.serving.cache.QueryCache` entries and nobody else's.

In-flight probes keep the old index object alive via their own
reference and finish against it — results are linearized at the moment
the probe grabbed the reference, never torn across generations.

The builder works against anything shard-shaped (``index`` /
``rwlock`` / ``epoch`` / ``begin_reindex()``); the sharded server's
:meth:`~repro.serving.sharded.ShardedIndexServer.reindex` is the
production caller, and tests drive it directly with slow or failing
index factories to pin the zero-downtime and crash-safety claims.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.runtime.errors import ConcurrentMutation

__all__ = ["GenerationBuilder"]


class GenerationBuilder:
    """Builds and atomically installs one shard's next index generation.

    Args:
        shard: the shard to rebuild — needs ``.index`` (a
            :class:`SimilarityIndex`), ``.rwlock`` (guards the index
            *reference*), ``.epoch`` (int, bumped on flip), and
            ``.begin_reindex()`` returning a release callable (or
            raising when a rebuild is already running).
        index_factory: builds the empty next-generation index; must
            share the vocabulary/predicate configuration of the live
            one or the flip would change query results.
        clock: injectable monotonic clock for the build timing stats.

    Use :meth:`start` + :meth:`wait` for a background build, or call
    :meth:`build_and_flip` inline. One builder = one generation; make a
    fresh builder per rebuild.
    """

    def __init__(self, shard, index_factory: Callable[[], object], clock=time.monotonic):
        self.shard = shard
        self.index_factory = index_factory
        self.clock = clock
        self._thread: threading.Thread | None = None
        self.error: BaseException | None = None
        #: Records in the build snapshot (set once phase 1 finishes).
        self.built: int | None = None
        #: Records replayed under the flip lock.
        self.caught_up: int | None = None
        self.flipped = False
        self.seconds: float | None = None

    # ------------------------------------------------------------------

    def start(self) -> "GenerationBuilder":
        """Run :meth:`build_and_flip` on a background daemon thread."""
        if self._thread is not None:
            raise RuntimeError("builder already started")
        self._thread = threading.Thread(
            target=self._run, name="generation-builder", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        try:
            self.build_and_flip()
        except BaseException as exc:  # noqa: BLE001 — re-raised by wait()
            self.error = exc

    def wait(self, timeout: float | None = None) -> bool:
        """Join the background build; re-raises its failure, if any.

        Returns False when the build is still running after ``timeout``.
        """
        if self._thread is None:
            raise RuntimeError("builder was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            return False
        if self.error is not None:
            raise self.error
        return True

    # ------------------------------------------------------------------

    def build_and_flip(self) -> None:
        """The two-phase rebuild; see the module docstring.

        Raises :class:`~repro.runtime.errors.ConcurrentMutation` when
        another rebuild of the same shard is already in progress, and
        whatever the index factory or replay raises on failure — in
        which case the shard keeps serving its current generation
        (the swap is the last step; a failed build changes nothing).
        """
        shard = self.shard
        release = shard.begin_reindex()
        started = self.clock()
        try:
            # Phase 1 — build, no shard lock held. The reference grab is
            # the only instant we touch the lock: probes own their
            # references the same way, so a concurrent flip (excluded
            # here by begin_reindex, but the pattern matters) could
            # never hand us a torn index.
            with shard.rwlock.read_locked():
                live = shard.index
            snapshot = live.export_records(0)
            fresh = self.index_factory()
            for tokens, payload in snapshot:
                fresh.add(tokens, payload=payload)
            self.built = len(snapshot)

            # Phase 2 — flip. The write lock excludes adds (they hold
            # the read side for their whole insert), so the catch-up
            # delta below is exact: every record the live index gained
            # since the snapshot, and provably nothing can land between
            # the replay and the swap.
            with shard.rwlock.write_locked():
                delta = shard.index.export_records(self.built)
                for tokens, payload in delta:
                    fresh.add(tokens, payload=payload)
                self.caught_up = len(delta)
                shard.index = fresh
                shard.epoch += 1
            self.flipped = True
        finally:
            self.seconds = self.clock() - started
            release()


class _ReindexGuard:
    """One-at-a-time rebuild latch a shard embeds (see ``begin_reindex``)."""

    __slots__ = ("_lock",)

    def __init__(self):
        self._lock = threading.Lock()

    def acquire(self, shard_name: str) -> Callable[[], None]:
        if not self._lock.acquire(blocking=False):
            raise ConcurrentMutation("reindex", f"reindex of {shard_name}")
        return self._lock.release
