"""Latency tracking for the serving layer.

A fixed-capacity reservoir of the most recent query latencies; health
reports read p50/p99 from it. Bounded memory, O(capacity log capacity)
per percentile read (sorting a copy), thread-safe. The clock lives in
the server — this module only sees durations, so it is trivially
deterministic under test.
"""

from __future__ import annotations

import math
import threading

__all__ = ["LatencyTracker"]


class LatencyTracker:
    """Ring buffer of recent operation latencies with percentile reads.

    Args:
        capacity: number of most-recent samples retained. Percentiles
            are computed over this window, not all-time history — the
            operational quantity dashboards want.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._samples: list[float] = []
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one operation's latency."""
        with self._lock:
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
            else:
                self._samples[self._next] = seconds
                self._next = (self._next + 1) % self.capacity
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations ever recorded (not just the window)."""
        return self._count

    def percentile(self, p: float) -> float | None:
        """The ``p``-th percentile (0..100) of the window, None if empty.

        Nearest-rank definition: the smallest sample >= p% of the
        window, so the value is always one actually observed.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            window = sorted(self._samples)
        if not window:
            return None
        rank = max(1, math.ceil(p / 100.0 * len(window)))
        return window[rank - 1]

    def summary(self) -> dict:
        """The health-report view: count plus p50/p95/p99."""
        return {
            "count": self.count,
            "p50_seconds": self.percentile(50),
            "p95_seconds": self.percentile(95),
            "p99_seconds": self.percentile(99),
        }
