"""Robust concurrent query serving over :class:`SimilarityIndex`.

The paper frames set joins as a DBMS-resident operator that also
answers online similarity queries; this package is the online half
grown into a service fit for real traffic:

* :class:`~repro.serving.server.IndexServer` — bounded worker pool,
  bounded admission queue with load shedding
  (:class:`~repro.runtime.errors.ServerOverloaded`), per-query
  deadlines, health reporting, graceful drain.
* :class:`~repro.serving.sharded.ShardedIndexServer` — the same
  contract scaled across N hash-partitioned index shards: scatter-
  gather probes with per-shard deadline budgets, breakers, caches, and
  hedging (:class:`~repro.serving.sharded.HedgePolicy`); partial
  results with explicit accounting
  (:class:`~repro.serving.sharded.ShardedResult`,
  :class:`~repro.runtime.errors.PartialResult`); zero-downtime reindex
  via :class:`~repro.serving.generation.GenerationBuilder`;
  :class:`~repro.serving.router.ShardRouter` assigns records to shards
  by stable hash.
* :class:`~repro.serving.retry.RetryPolicy` — exponential backoff with
  jitter for transient faults, clamped to the request's deadline.
* :class:`~repro.serving.breaker.CircuitBreaker` — fail fast while the
  index (or its storage) is down
  (:class:`~repro.runtime.errors.CircuitOpen`).
* :class:`~repro.serving.stats.LatencyTracker` — p50/p95/p99 over a
  bounded window of recent queries.
* :class:`~repro.serving.cache.QueryCache` — LRU result cache with
  generation-based invalidation (any index mutation empties it).
* :mod:`~repro.serving.transport` — the remote shard transport:
  :class:`~repro.serving.transport.server.ShardServer` hosts one shard
  behind a TCP socket (``repro shard-serve``),
  :class:`~repro.serving.transport.client.RemoteShardClient` is the
  front-end handle the sharded server mixes in via
  ``shard_endpoints=`` (``repro serve --shard-endpoints``).

Thread safety of the underlying index lives in
:mod:`repro.core.service` (non-mutating probes) and
:mod:`repro.runtime.rwlock` (reader–writer lock); this layer assumes it
and adds operability. See the "Serving" and "Sharded serving" sections
of ``docs/operations.md`` and the ``repro serve`` CLI subcommand.
"""

from repro.serving.breaker import CircuitBreaker
from repro.serving.cache import QueryCache
from repro.serving.generation import GenerationBuilder
from repro.serving.retry import RetryPolicy, default_retryable
from repro.serving.router import ShardRouter
from repro.serving.server import IndexServer
from repro.serving.sharded import HedgePolicy, ShardedIndexServer, ShardedResult
from repro.serving.stats import LatencyTracker
from repro.serving.transport import RemoteShardClient, ShardServer

__all__ = [
    "CircuitBreaker",
    "GenerationBuilder",
    "HedgePolicy",
    "IndexServer",
    "LatencyTracker",
    "QueryCache",
    "RemoteShardClient",
    "RetryPolicy",
    "ShardRouter",
    "ShardServer",
    "ShardedIndexServer",
    "ShardedResult",
    "default_retryable",
]
