"""Retry policy: exponential backoff with jitter.

Transient faults (a snapshot filesystem hiccup, a briefly-tripped
resource) deserve another attempt; persistent faults and interruptions
do not. The policy is explicit about which is which via ``retryable``,
and every source of nondeterminism (the sleep, the jitter RNG) is
injectable so backoff schedules are exactly testable.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable

from repro.runtime.errors import DeadlineExceeded, JoinInterrupted

__all__ = ["RetryPolicy", "default_retryable"]


def default_retryable(exc: BaseException) -> bool:
    """The default transient-fault classifier.

    ``OSError`` (filesystem/network hiccups, including the test suite's
    ``InjectedFault``) is retryable. Interruptions
    (:class:`~repro.runtime.errors.JoinInterrupted`: deadline expiry,
    cancellation) are not — retrying against a spent deadline only adds
    load. Everything else (programming errors, corrupt snapshots) is
    not retryable either.
    """
    if isinstance(exc, JoinInterrupted):
        return False
    return isinstance(exc, OSError)


class RetryPolicy:
    """Exponential backoff with full jitter.

    Attempt ``i`` (0-based) failing retryably sleeps
    ``min(max_delay, base_delay * multiplier**i) * uniform(1 - jitter, 1)``
    before attempt ``i + 1``; after ``max_attempts`` attempts the last
    exception propagates. Jitter spreads retry storms: with ``jitter=1``
    the sleep is uniform over (0, delay] (AWS "full jitter").

    Args:
        max_attempts: total attempts including the first (>= 1).
        base_delay: backoff before the first retry, in seconds.
        multiplier: backoff growth factor per retry.
        max_delay: cap on the un-jittered backoff.
        jitter: fraction of the delay randomized away, in [0, 1].
        retryable: transient-fault classifier; default
            :func:`default_retryable`.
        sleep: injectable sleep (fake in tests).
        rng: injectable ``random.Random`` for the jitter.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        retryable: Callable[[BaseException], bool] = default_retryable,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.retryable = retryable
        self.sleep = sleep
        self.rng = rng if rng is not None else random.Random()

    def backoff(self, attempt: int) -> float:
        """Jittered sleep before retrying after 0-based ``attempt``."""
        delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter:
            delay *= 1.0 - self.jitter * self.rng.random()
        return delay

    def run(
        self,
        fn: Callable[[], object],
        on_retry: Callable | None = None,
        context=None,
    ):
        """Call ``fn`` under the policy; returns its result.

        ``on_retry(attempt, exc, delay)`` is invoked before each sleep —
        the server uses it to count retries. Non-retryable exceptions
        and the final failed attempt propagate unchanged.

        With a ``context`` (a :class:`~repro.runtime.context.JoinContext`
        carrying a deadline), backoff never sleeps past the remaining
        budget: a retry whose full jittered delay would overshoot it
        raises :class:`~repro.runtime.errors.DeadlineExceeded`
        immediately (``from`` the attempt's failure) instead of burning
        the rest of the deadline asleep only to time out anyway.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 — classifier decides
                if attempt + 1 >= self.max_attempts or not self.retryable(exc):
                    raise
                delay = self.backoff(attempt)
                if context is not None and context.deadline_seconds is not None:
                    context.start()
                    remaining = context.remaining()
                    if delay >= remaining:
                        raise DeadlineExceeded(
                            context.elapsed(), context.deadline_seconds
                        ) from exc
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                self.sleep(delay)
                attempt += 1
