"""Text substrate: tokenization, TF-IDF weighting, edit distance.

The paper derives sets from text columns in two ways — whole words and
letter q-grams (§2.4, Table 1) — and uses TF-IDF weights for the cosine
predicate (§5.2.2) and q-gram counting bounds for the edit-distance
predicate (§5.2.3). This subpackage implements those pieces from scratch.
"""

from repro.text.editdist import banded_edit_distance, edit_distance, edit_distance_within
from repro.text.tfidf import CorpusStats, tf_idf
from repro.text.tokenizers import qgrams, tokenize_qgrams, tokenize_words

__all__ = [
    "CorpusStats",
    "banded_edit_distance",
    "edit_distance",
    "edit_distance_within",
    "qgrams",
    "tf_idf",
    "tokenize_qgrams",
    "tokenize_words",
]
