"""Levenshtein edit distance: full DP and banded verification.

The edit-distance join (paper §5.2.3) uses the q-gram count bound only to
generate candidates; exactness requires verifying each candidate pair.
``edit_distance`` is the textbook O(n·m) dynamic program; ``banded`` and
``within`` restrict the DP to a diagonal band of width ``2k + 1`` which is
O(k·n) and sufficient to decide ``distance <= k``.
"""

from __future__ import annotations

__all__ = ["banded_edit_distance", "edit_distance", "edit_distance_within"]


def edit_distance(a: str, b: str) -> int:
    """Exact Levenshtein distance between ``a`` and ``b`` (unit costs)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def banded_edit_distance(a: str, b: str, k: int) -> int:
    """Levenshtein distance if it is ``<= k``, else any value ``> k``.

    Runs the DP inside a diagonal band of half-width ``k``; cells outside
    the band cannot participate in an alignment of cost ``<= k``.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    len_a, len_b = len(a), len(b)
    if abs(len_a - len_b) > k:
        return k + 1
    if a == b:
        return 0
    big = k + 1
    previous = {0: 0}
    for j in range(1, min(len_b, k) + 1):
        previous[j] = j
    for i in range(1, len_a + 1):
        current: dict[int, int] = {}
        lo = max(0, i - k)
        hi = min(len_b, i + k)
        for j in range(lo, hi + 1):
            if j == 0:
                current[j] = i
                continue
            cost = 0 if a[i - 1] == b[j - 1] else 1
            best = previous.get(j - 1, big) + cost
            up = previous.get(j, big) + 1
            left = current.get(j - 1, big) + 1
            current[j] = min(best, up, left)
        if min(current.values()) > k:
            return big
        previous = current
    return previous.get(len_b, big)


def edit_distance_within(a: str, b: str, k: int) -> bool:
    """True iff ``edit_distance(a, b) <= k`` (banded, O(k·max(n,m)))."""
    return banded_edit_distance(a, b, k) <= k
