"""Tokenizers that turn text records into element sets.

Table 1 of the paper lists four "similarity functions" which are really
four set derivations: all words of a citation, all 3-grams of a citation,
all 3-grams of an address, and 3-grams of the name fields only. The
functions here implement word splitting and letter q-gram extraction; the
field selection lives with the dataset generators.
"""

from __future__ import annotations

import re

__all__ = ["normalize", "qgrams", "tokenize_qgrams", "tokenize_words"]

_WORD_RE = re.compile(r"[a-z0-9]+")


def normalize(text: str) -> str:
    """Lowercase and collapse whitespace — the usual cleaning step."""
    return " ".join(text.lower().split())


def tokenize_words(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric words.

    Duplicates are removed (the paper treats records as sets) while the
    original order of first occurrence is preserved so tokenization is
    deterministic.
    """
    seen: dict[str, None] = {}
    for word in _WORD_RE.findall(text.lower()):
        seen.setdefault(word, None)
    return list(seen)


def qgrams(text: str, q: int = 3, pad: bool = True) -> list[str]:
    """Return the sequence of letter q-grams of ``text`` (with duplicates).

    With ``pad=True`` the string is extended with ``q - 1`` boundary
    markers on each side (``#`` prefix, ``$`` suffix), the convention of
    Gravano et al. used by the paper's edit-distance bound: a string of
    length ``n`` then yields exactly ``n + q - 1`` q-grams.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if pad:
        text = "#" * (q - 1) + text + "$" * (q - 1)
    if len(text) < q:
        return [text] if text else []
    return [text[i : i + q] for i in range(len(text) - q + 1)]


def tokenize_qgrams(text: str, q: int = 3, pad: bool = True) -> list[str]:
    """Return the *set* of q-grams of normalized ``text`` as a list.

    Deduplicated, first-occurrence order. This is the set derivation used
    for the All-3grams and Name-3grams functions of Table 1.
    """
    seen: dict[str, None] = {}
    for gram in qgrams(normalize(text), q=q, pad=pad):
        seen.setdefault(gram, None)
    return list(seen)
