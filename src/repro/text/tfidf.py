"""TF-IDF corpus statistics and scoring (paper §5.2.2).

The paper's cosine predicate weights word ``w`` in record ``r`` as::

    TF-IDF(w, r) = (1 + log fr(w, r)) * log(1 + N / fr(w))

where ``N`` is the number of records and ``fr(w)`` the total frequency of
``w`` over all records. Since records are sets in this package, the term
frequency ``fr(w, r)`` is 1 and the first factor reduces to 1; the
generator pipeline can nevertheless supply multiplicity counts, so the
full formula is implemented.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

__all__ = ["CorpusStats", "tf_idf"]


def tf_idf(term_freq: int, corpus_freq: int, n_records: int) -> float:
    """The paper's TF-IDF formula for one word occurrence."""
    if term_freq <= 0:
        return 0.0
    return (1.0 + math.log(term_freq)) * math.log(1.0 + n_records / corpus_freq)


class CorpusStats:
    """Corpus-level word frequencies needed for IDF weighting.

    Built in one sequential pass over the tokenized records (the paper's
    preprocessing pass). Provides TF-IDF scores and L2 norms per record.
    """

    def __init__(self, records: Iterable[Sequence[int]]):
        freq: Counter[int] = Counter()
        n = 0
        for record in records:
            n += 1
            freq.update(record)
        self.n_records = n
        self.frequency: dict[int, int] = dict(freq)

    def idf(self, token: int) -> float:
        """IDF factor ``log(1 + N / fr(w))`` for a token."""
        corpus_freq = self.frequency.get(token, 0)
        if corpus_freq == 0:
            # Unseen token: treat as occurring once, the standard smoothing.
            corpus_freq = 1
        return math.log(1.0 + self.n_records / corpus_freq)

    def score(self, token: int, term_freq: int = 1) -> float:
        """TF-IDF score of ``token`` appearing ``term_freq`` times."""
        if term_freq <= 0:
            return 0.0
        return (1.0 + math.log(term_freq)) * self.idf(token)

    def record_norm(self, record: Sequence[int]) -> float:
        """L2 norm of the record's TF-IDF vector (set semantics, tf=1)."""
        return math.sqrt(sum(self.score(token) ** 2 for token in record))

    def normalized_scores(self, record: Sequence[int]) -> dict[int, float]:
        """Unit-normalized TF-IDF weights, ``score(w, r) / ||r||``.

        These are the ``score(w, s)`` values of §5.2.2: with them, the
        cosine between two records is a plain dot product and the join
        threshold is the constant ``f``.
        """
        norm = self.record_norm(record)
        if norm == 0.0:
            return {token: 0.0 for token in record}
        return {token: self.score(token) / norm for token in record}
