"""JoinContext: deadlines, cooperative cancellation, memory budgets.

A :class:`JoinContext` travels with one join invocation and is checked
at record granularity by the shared driver loop in
:mod:`repro.core.base`, so every algorithm dispatched through
``similarity_join`` inherits the same interruption semantics:

* **deadline** — wall-clock budget for the join; expiry raises
  :class:`~repro.runtime.errors.JoinTimeout`.
* **cancellation** — a :class:`CancellationToken` another thread (or a
  signal handler) can trip; the join raises
  :class:`~repro.runtime.errors.JoinCancelled` at the next record
  boundary.
* **memory budget** — a cap on live index entries (the paper's unit
  ``M``, word occurrences). When it trips, the default policy degrades
  the join to the budget-respecting ClusterMem algorithm; the strict
  policy raises :class:`~repro.runtime.errors.MemoryBudgetExceeded`.

The clock is injectable (see :class:`repro.runtime.faults.FakeClock`)
so timeout behaviour is deterministic under test.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.runtime.errors import JoinCancelled, JoinTimeout, MemoryBudgetExceeded

__all__ = ["CancellationToken", "JoinContext"]


class CancellationToken:
    """A one-way latch requesting cooperative cancellation.

    ``cancel()`` may be called from any thread or from a signal
    handler; the join observes it at the next record boundary.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        self.reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason!r}" if self._cancelled else "active"
        return f"CancellationToken({state})"


class JoinContext:
    """Runtime envelope for one join: deadline, cancellation, memory.

    Args:
        deadline_seconds: wall-clock budget, measured from the first
            record processed under this context. ``None`` = unbounded.
        cancel_token: a shared :class:`CancellationToken`; a fresh one
            is created when omitted (reachable as ``.cancel_token``).
        memory_budget_entries: cap on live inverted-index entries (word
            occurrences — the same unit as
            :class:`~repro.core.cluster_mem.MemoryBudget`).
        on_memory_exceeded: ``"degrade"`` (default) re-runs the join
            with ClusterMem under the budget; ``"raise"`` raises
            :class:`MemoryBudgetExceeded` instead.
        checkpointer: a :class:`~repro.runtime.checkpoint.JoinCheckpointer`
            for periodic progress snapshots and resume.
        clock: monotonic-seconds callable; injectable for tests.

    A context may be shared across several joins; the deadline then
    spans all of them (it anchors at first use). Build a fresh context
    per job for per-job deadlines.
    """

    def __init__(
        self,
        deadline_seconds: float | None = None,
        cancel_token: CancellationToken | None = None,
        memory_budget_entries: int | None = None,
        on_memory_exceeded: str = "degrade",
        checkpointer=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {deadline_seconds}")
        if memory_budget_entries is not None and memory_budget_entries < 1:
            raise ValueError(
                f"memory budget must be >= 1 entry, got {memory_budget_entries}"
            )
        if on_memory_exceeded not in ("degrade", "raise"):
            raise ValueError(
                f"on_memory_exceeded must be 'degrade' or 'raise',"
                f" got {on_memory_exceeded!r}"
            )
        self.deadline_seconds = deadline_seconds
        self.cancel_token = cancel_token if cancel_token is not None else CancellationToken()
        self.memory_budget_entries = memory_budget_entries
        self.on_memory_exceeded = on_memory_exceeded
        self.checkpointer = checkpointer
        self.clock = clock
        self._started_at: float | None = None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Anchor the deadline; a no-op when already anchored."""
        if self._started_at is None:
            self._started_at = self.clock()

    def elapsed(self) -> float:
        """Seconds since the deadline anchor (0.0 before first use)."""
        if self._started_at is None:
            return 0.0
        return self.clock() - self._started_at

    def remaining(self) -> float | None:
        """Seconds left on the deadline, or None when unbounded."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - self.elapsed()

    def cancel(self, reason: str = "cancelled") -> None:
        """Convenience passthrough to the cancellation token."""
        self.cancel_token.cancel(reason)

    # ------------------------------------------------------------------

    def tick(self, counters, check_memory: bool = True) -> None:
        """One record-granularity runtime check.

        Called by the shared driver loop before each record is
        processed. Raises :class:`JoinCancelled`, :class:`JoinTimeout`,
        or :class:`MemoryBudgetExceeded` (the latter only with
        ``check_memory``; budget-respecting algorithms such as
        ClusterMem disable it because their cumulative insert counters
        intentionally exceed the live-memory budget).
        """
        counters.records_scanned += 1
        if self.cancel_token.cancelled:
            raise JoinCancelled(self.cancel_token.reason)
        if self.deadline_seconds is not None:
            self.start()
            elapsed = self.elapsed()
            if elapsed >= self.deadline_seconds:
                raise JoinTimeout(elapsed, self.deadline_seconds)
        if check_memory and self.memory_budget_entries is not None:
            entries = counters.index_entries + counters.peak_pair_table
            if entries > self.memory_budget_entries:
                raise MemoryBudgetExceeded(entries, self.memory_budget_entries)

    def for_degraded_run(self) -> "JoinContext":
        """Context for the ClusterMem fallback after a budget trip.

        Shares the cancellation token, clock, and the already-anchored
        deadline (the fallback does not get fresh time); drops the
        memory budget (ClusterMem respects it structurally) and the
        checkpointer (its checkpoints would be keyed to the original
        algorithm).
        """
        clone = JoinContext(
            deadline_seconds=self.deadline_seconds,
            cancel_token=self.cancel_token,
            clock=self.clock,
        )
        clone._started_at = self._started_at
        return clone
