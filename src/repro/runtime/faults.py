"""Deterministic fault injection for the hardened runtime tests.

Nothing here touches production behaviour; these are the seams the
runtime exposes (injectable clock, filesystem shim, cancellation token)
filled with controllable failure doubles:

* :class:`FakeClock` — a manual/auto-advancing monotonic clock, so
  deadline expiry is exact and instant under test.
* :class:`FailingFilesystem` — a :class:`RealFilesystem` that raises
  :class:`InjectedFault` at the N-th chosen operation, simulating a
  crash mid-write / mid-rename.
* :class:`CountdownCancellation` — a cancellation token that trips
  itself after N observations, simulating a kill at an exact record
  boundary.
* :class:`ShardFaults` — a per-shard fault plan (kill / slow / error a
  chosen shard) consulted by the sharded serving tier's probe path, so
  chaos tests can take down exactly one fault domain.
* :class:`NetworkFaults` — an in-process TCP proxy that sits between a
  :class:`~repro.serving.transport.client.RemoteShardClient` and its
  shard node and injects *network* failure modes (refuse connections,
  delay / corrupt / truncate response bytes, kill the connection
  mid-response), so the remote-shard chaos scenarios exercise the wire
  itself, not a simulation of it.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.runtime.context import CancellationToken
from repro.runtime.snapshot import RealFilesystem

__all__ = [
    "CountdownCancellation",
    "FailingFilesystem",
    "FakeClock",
    "InjectedFault",
    "NetworkFaults",
    "ShardFaults",
]


class InjectedFault(OSError):
    """The error every injected filesystem failure raises."""

    def __init__(self, operation: str, call_number: int):
        super().__init__(f"injected fault at {operation} call #{call_number}")
        self.operation = operation
        self.call_number = call_number


class FakeClock:
    """Injectable monotonic clock.

    Args:
        start: initial reading.
        auto_advance: seconds added on *every* read — with the default
            0.0 the clock only moves via :meth:`advance`.
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0):
        self.now = start
        self.auto_advance = auto_advance

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        reading = self.now
        self.now += self.auto_advance
        return reading


class CountdownCancellation(CancellationToken):
    """Token that cancels itself after ``after_checks`` observations.

    The driver loop polls ``cancelled`` once per record, so
    ``CountdownCancellation(after_checks=25)`` kills a join at exactly
    the 25th record boundary — a deterministic stand-in for an operator
    hitting Ctrl-C mid-run.
    """

    def __init__(self, after_checks: int, reason: str = "injected kill"):
        super().__init__()
        if after_checks < 1:
            raise ValueError(f"after_checks must be >= 1, got {after_checks}")
        self.after_checks = after_checks
        self.checks = 0
        self._reason_on_trip = reason

    @property
    def cancelled(self) -> bool:
        if self._cancelled:
            return True
        self.checks += 1
        if self.checks >= self.after_checks:
            self.cancel(self._reason_on_trip)
        return self._cancelled


class _ShardFault:
    """One armed fault: its mode, its slow duration, its shot budget."""

    __slots__ = ("mode", "seconds", "remaining")

    def __init__(self, mode: str, seconds: float, remaining: int | None):
        self.mode = mode
        self.seconds = seconds
        self.remaining = remaining


class ShardFaults:
    """Deterministic shard-level fault injection for sharded serving.

    Arm a fault against a shard id; the sharded server's probe path
    calls :meth:`apply` at the top of every probe attempt for that
    shard:

    * ``kill``  — the probe raises :class:`InjectedFault` (an
      ``OSError``, so a configured retry policy classifies it as
      transient — a killed shard with retries exhausts them).
    * ``slow``  — the probe sleeps ``seconds`` first, simulating a
      straggler; with a deadline shorter than the sleep the probe then
      dies of :class:`~repro.runtime.errors.JoinTimeout`, with a hedging
      policy the re-issued probe races it.
    * ``error`` — same raise as ``kill``, kept distinct in the message
      and tallies so tests can assert which scenario fired.

    ``times`` bounds how many probe attempts the fault hits (``None`` =
    every attempt until :meth:`clear`). One fault per shard: arming a
    new one replaces the old. All methods are thread-safe; ``injected``
    tallies applications per shard for exact-accounting assertions.
    """

    def __init__(self, sleep=time.sleep):
        self._sleep = sleep
        self._lock = threading.Lock()
        self._faults: dict[int, _ShardFault] = {}
        self.injected: dict[int, int] = {}

    def kill(self, shard_id: int, times: int | None = None) -> None:
        """Every probe of ``shard_id`` raises (shard is down)."""
        self._arm(shard_id, "kill", 0.0, times)

    def slow(self, shard_id: int, seconds: float, times: int | None = None) -> None:
        """Every probe of ``shard_id`` stalls ``seconds`` first."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._arm(shard_id, "slow", seconds, times)

    def error(self, shard_id: int, times: int | None = None) -> None:
        """Every probe of ``shard_id`` fails with an injected error."""
        self._arm(shard_id, "error", 0.0, times)

    def _arm(self, shard_id: int, mode: str, seconds: float, times: int | None):
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1 or None, got {times}")
        with self._lock:
            self._faults[shard_id] = _ShardFault(mode, seconds, times)

    def clear(self, shard_id: int | None = None) -> None:
        """Disarm one shard's fault, or every fault when id is omitted."""
        with self._lock:
            if shard_id is None:
                self._faults.clear()
            else:
                self._faults.pop(shard_id, None)

    def apply(self, shard_id: int) -> None:
        """The probe-path seam: sleep or raise per the armed fault."""
        with self._lock:
            fault = self._faults.get(shard_id)
            if fault is None:
                return
            if fault.remaining is not None:
                fault.remaining -= 1
                if fault.remaining <= 0:
                    del self._faults[shard_id]
            shot = self.injected.get(shard_id, 0) + 1
            self.injected[shard_id] = shot
            mode, seconds = fault.mode, fault.seconds
        if mode == "slow":
            self._sleep(seconds)
            return
        raise InjectedFault(f"shard {shard_id} {mode}", shot)


class _NetFault:
    """One armed network fault: mode, its parameters, its shot budget."""

    __slots__ = ("mode", "seconds", "nbytes", "remaining")

    def __init__(self, mode: str, seconds: float, nbytes: int, remaining: int | None):
        self.mode = mode
        self.seconds = seconds
        self.nbytes = nbytes
        self.remaining = remaining


class NetworkFaults:
    """In-process TCP fault proxy: a hostile network in one object.

    Sits between a shard client and its node: listens on an ephemeral
    local port (:attr:`address`), pairs every accepted connection with
    a fresh connection to the upstream node, and pumps bytes both ways
    — transparently until a fault is armed:

    * ``refuse``   — accepted connections are closed before any byte
      flows (node down at connect; the client's dial "succeeds" against
      the proxy but the exchange dies immediately).
    * ``delay``    — response bytes are stalled ``seconds`` before
      forwarding (straggling node; with a shorter deadline the client
      times out).
    * ``corrupt``  — a byte of the response stream is flipped (the
      frame CRC32 catches it as ``FrameChecksumError``).
    * ``truncate`` — the response stream is cut after ``nbytes`` and
      the connection closed (torn frame mid-response).
    * ``kill``     — the connection is closed right after the first
      response byte (node death mid-response).

    One fault armed at a time (arming replaces); ``times`` bounds how
    many applications fire (``None`` = every one until :meth:`clear`).
    ``refuse`` counts per connection, the others per response burst.
    ``injected`` tallies firings per mode for exact-accounting
    assertions. :meth:`retarget` points the proxy at a restarted node
    (new port) without the client ever noticing — the
    node-comes-back-after-restart scenario. Thread-safe throughout.
    """

    _CHUNK = 65536

    def __init__(self, upstream_host: str, upstream_port: int, sleep=time.sleep):
        self._upstream = (upstream_host, upstream_port)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._fault: _NetFault | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._sockets: set[socket.socket] = set()
        self._stopping = False
        self.injected: dict[str, int] = {}
        self.connections = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "NetworkFaults":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(16)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="network-faults-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """Where clients should connect (the proxy's listen address)."""
        if self._listener is None:
            raise RuntimeError("proxy is not started")
        return self._listener.getsockname()

    @property
    def port(self) -> int:
        return self.address[1]

    def retarget(self, upstream_host: str, upstream_port: int) -> None:
        """Point future connections at a (restarted) node."""
        with self._lock:
            self._upstream = (upstream_host, upstream_port)

    def stop(self) -> None:
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            sockets = list(self._sockets)
        if self._listener is not None:
            try:
                # shutdown() wakes an accept() blocked in another
                # thread (a bare close() does not on Linux).
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        for sock in sockets:
            self._close(sock)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)

    def __enter__(self) -> "NetworkFaults":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- arming ---------------------------------------------------------

    def refuse(self, times: int | None = None) -> None:
        """Close every accepted connection immediately (node down).

        Only affects connections accepted *after* arming; pair with
        :meth:`sever` to also reset connections already established
        (a dead node resets those too — pooled clients would otherwise
        keep talking through the proxy untouched).
        """
        self._arm("refuse", 0.0, 0, times)

    def sever(self) -> None:
        """Reset every currently-established proxied connection."""
        with self._lock:
            sockets = list(self._sockets)
        for sock in sockets:
            self._close(sock)

    def delay(self, seconds: float, times: int | None = None) -> None:
        """Stall response bytes ``seconds`` before forwarding."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._arm("delay", seconds, 0, times)

    def corrupt(self, times: int | None = None) -> None:
        """Flip a byte of the response stream (checksum violation)."""
        self._arm("corrupt", 0.0, 0, times)

    def truncate(self, nbytes: int = 8, times: int | None = None) -> None:
        """Cut the response stream after ``nbytes``, then close."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self._arm("truncate", 0.0, nbytes, times)

    def kill(self, times: int | None = None) -> None:
        """Close the connection right after the response starts."""
        self._arm("kill", 0.0, 0, times)

    def _arm(self, mode: str, seconds: float, nbytes: int, times: int | None) -> None:
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1 or None, got {times}")
        with self._lock:
            self._fault = _NetFault(mode, seconds, nbytes, times)

    def clear(self) -> None:
        """Disarm; in-flight and future connections flow transparently."""
        with self._lock:
            self._fault = None

    @property
    def pending(self) -> bool:
        """Whether an armed fault still has budget left to fire.

        Lets a test arm ``times=1``, do one exchange, and wait for the
        fault to have actually landed (it may hit a heartbeat instead
        of the test's own request) before arming the next one.
        """
        with self._lock:
            return self._fault is not None

    def _claim(self, modes: tuple[str, ...]) -> _NetFault | None:
        """Consume one application of the armed fault, if it matches."""
        with self._lock:
            fault = self._fault
            if fault is None or fault.mode not in modes:
                return None
            if fault.remaining is not None:
                fault.remaining -= 1
                if fault.remaining <= 0:
                    self._fault = None
            self.injected[fault.mode] = self.injected.get(fault.mode, 0) + 1
            return fault

    # -- the proxy ------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _peer = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            if self._stopping:
                self._close(client)
                return
            self.connections += 1
            if self._claim(("refuse",)) is not None:
                self._close(client)
                continue
            with self._lock:
                upstream_addr = self._upstream
            try:
                upstream = socket.create_connection(upstream_addr, timeout=1.0)
            except OSError:
                # Node really is down: behaves exactly like refuse.
                self._close(client)
                continue
            with self._lock:
                self._sockets.add(client)
                self._sockets.add(upstream)
            threading.Thread(
                target=self._pump_requests,
                args=(client, upstream),
                name="network-faults-up",
                daemon=True,
            ).start()
            threading.Thread(
                target=self._pump_responses,
                args=(upstream, client),
                name="network-faults-down",
                daemon=True,
            ).start()

    def _pump_requests(self, client: socket.socket, upstream: socket.socket) -> None:
        """client → node: always transparent (faults hit responses)."""
        try:
            while True:
                data = client.recv(self._CHUNK)
                if not data:
                    break
                upstream.sendall(data)
        except OSError:
            pass
        finally:
            self._close(client)
            self._close(upstream)

    def _pump_responses(self, upstream: socket.socket, client: socket.socket) -> None:
        """node → client: the armed fault is applied here."""
        try:
            while True:
                data = upstream.recv(self._CHUNK)
                if not data:
                    break
                fault = self._claim(("delay", "corrupt", "truncate", "kill"))
                if fault is None:
                    client.sendall(data)
                    continue
                if fault.mode == "delay":
                    self._sleep(fault.seconds)
                    client.sendall(data)
                elif fault.mode == "corrupt":
                    # Flip the burst's last byte — lands on the CRC32
                    # trailer (or payload) but never the length field,
                    # so it always surfaces as a typed
                    # FrameChecksumError, never a misframed stream.
                    flipped = bytearray(data)
                    flipped[-1] ^= 0xFF
                    client.sendall(bytes(flipped))
                elif fault.mode == "truncate":
                    client.sendall(data[: fault.nbytes])
                    break
                else:  # kill: the response started, then the peer died
                    client.sendall(data[:1])
                    break
        except OSError:
            pass
        finally:
            self._close(client)
            self._close(upstream)

    def _close(self, sock: socket.socket) -> None:
        with self._lock:
            self._sockets.discard(sock)
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass


class FailingFilesystem(RealFilesystem):
    """Filesystem shim that fails deterministically at one operation.

    Args:
        fail_operation: which call to sabotage — ``"open"``,
            ``"write"``, ``"fsync"``, or ``"replace"``.
        fail_at_call: 1-based index of the sabotaged call among calls
            to that operation (so the second ``replace`` can succeed
            while the first fails, etc.).

    Counts every operation (``calls`` dict) so tests can assert the
    failure actually happened where intended.
    """

    def __init__(self, fail_operation: str, fail_at_call: int = 1):
        operations = ("open", "write", "fsync", "replace")
        if fail_operation not in operations:
            raise ValueError(
                f"fail_operation must be one of {operations}, got {fail_operation!r}"
            )
        if fail_at_call < 1:
            raise ValueError(f"fail_at_call must be >= 1, got {fail_at_call}")
        self.fail_operation = fail_operation
        self.fail_at_call = fail_at_call
        self.calls = {name: 0 for name in operations}
        self.faults_injected = 0

    def _trip(self, operation: str) -> None:
        self.calls[operation] += 1
        if (
            operation == self.fail_operation
            and self.calls[operation] == self.fail_at_call
        ):
            self.faults_injected += 1
            raise InjectedFault(operation, self.calls[operation])

    def open(self, path: str, mode: str):
        self._trip("open")
        handle = super().open(path, mode)
        if "w" in mode:
            return _WriteTrippingHandle(handle, self)
        return handle

    def fsync(self, handle) -> None:
        self._trip("fsync")
        inner = getattr(handle, "_inner", handle)
        super().fsync(inner)

    def replace(self, src: str, dst: str) -> None:
        self._trip("replace")
        super().replace(src, dst)


class _WriteTrippingHandle:
    """File-handle proxy that routes ``write`` through the fault seam."""

    def __init__(self, inner, fs: FailingFilesystem):
        self._inner = inner
        self._fs = fs

    def write(self, data):
        self._fs._trip("write")
        return self._inner.write(data)

    def __getattr__(self, name):
        return getattr(self._inner, name)
