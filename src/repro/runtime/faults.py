"""Deterministic fault injection for the hardened runtime tests.

Nothing here touches production behaviour; these are the seams the
runtime exposes (injectable clock, filesystem shim, cancellation token)
filled with controllable failure doubles:

* :class:`FakeClock` — a manual/auto-advancing monotonic clock, so
  deadline expiry is exact and instant under test.
* :class:`FailingFilesystem` — a :class:`RealFilesystem` that raises
  :class:`InjectedFault` at the N-th chosen operation, simulating a
  crash mid-write / mid-rename.
* :class:`CountdownCancellation` — a cancellation token that trips
  itself after N observations, simulating a kill at an exact record
  boundary.
* :class:`ShardFaults` — a per-shard fault plan (kill / slow / error a
  chosen shard) consulted by the sharded serving tier's probe path, so
  chaos tests can take down exactly one fault domain.
"""

from __future__ import annotations

import threading
import time

from repro.runtime.context import CancellationToken
from repro.runtime.snapshot import RealFilesystem

__all__ = [
    "CountdownCancellation",
    "FailingFilesystem",
    "FakeClock",
    "InjectedFault",
    "ShardFaults",
]


class InjectedFault(OSError):
    """The error every injected filesystem failure raises."""

    def __init__(self, operation: str, call_number: int):
        super().__init__(f"injected fault at {operation} call #{call_number}")
        self.operation = operation
        self.call_number = call_number


class FakeClock:
    """Injectable monotonic clock.

    Args:
        start: initial reading.
        auto_advance: seconds added on *every* read — with the default
            0.0 the clock only moves via :meth:`advance`.
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0):
        self.now = start
        self.auto_advance = auto_advance

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        reading = self.now
        self.now += self.auto_advance
        return reading


class CountdownCancellation(CancellationToken):
    """Token that cancels itself after ``after_checks`` observations.

    The driver loop polls ``cancelled`` once per record, so
    ``CountdownCancellation(after_checks=25)`` kills a join at exactly
    the 25th record boundary — a deterministic stand-in for an operator
    hitting Ctrl-C mid-run.
    """

    def __init__(self, after_checks: int, reason: str = "injected kill"):
        super().__init__()
        if after_checks < 1:
            raise ValueError(f"after_checks must be >= 1, got {after_checks}")
        self.after_checks = after_checks
        self.checks = 0
        self._reason_on_trip = reason

    @property
    def cancelled(self) -> bool:
        if self._cancelled:
            return True
        self.checks += 1
        if self.checks >= self.after_checks:
            self.cancel(self._reason_on_trip)
        return self._cancelled


class _ShardFault:
    """One armed fault: its mode, its slow duration, its shot budget."""

    __slots__ = ("mode", "seconds", "remaining")

    def __init__(self, mode: str, seconds: float, remaining: int | None):
        self.mode = mode
        self.seconds = seconds
        self.remaining = remaining


class ShardFaults:
    """Deterministic shard-level fault injection for sharded serving.

    Arm a fault against a shard id; the sharded server's probe path
    calls :meth:`apply` at the top of every probe attempt for that
    shard:

    * ``kill``  — the probe raises :class:`InjectedFault` (an
      ``OSError``, so a configured retry policy classifies it as
      transient — a killed shard with retries exhausts them).
    * ``slow``  — the probe sleeps ``seconds`` first, simulating a
      straggler; with a deadline shorter than the sleep the probe then
      dies of :class:`~repro.runtime.errors.JoinTimeout`, with a hedging
      policy the re-issued probe races it.
    * ``error`` — same raise as ``kill``, kept distinct in the message
      and tallies so tests can assert which scenario fired.

    ``times`` bounds how many probe attempts the fault hits (``None`` =
    every attempt until :meth:`clear`). One fault per shard: arming a
    new one replaces the old. All methods are thread-safe; ``injected``
    tallies applications per shard for exact-accounting assertions.
    """

    def __init__(self, sleep=time.sleep):
        self._sleep = sleep
        self._lock = threading.Lock()
        self._faults: dict[int, _ShardFault] = {}
        self.injected: dict[int, int] = {}

    def kill(self, shard_id: int, times: int | None = None) -> None:
        """Every probe of ``shard_id`` raises (shard is down)."""
        self._arm(shard_id, "kill", 0.0, times)

    def slow(self, shard_id: int, seconds: float, times: int | None = None) -> None:
        """Every probe of ``shard_id`` stalls ``seconds`` first."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._arm(shard_id, "slow", seconds, times)

    def error(self, shard_id: int, times: int | None = None) -> None:
        """Every probe of ``shard_id`` fails with an injected error."""
        self._arm(shard_id, "error", 0.0, times)

    def _arm(self, shard_id: int, mode: str, seconds: float, times: int | None):
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1 or None, got {times}")
        with self._lock:
            self._faults[shard_id] = _ShardFault(mode, seconds, times)

    def clear(self, shard_id: int | None = None) -> None:
        """Disarm one shard's fault, or every fault when id is omitted."""
        with self._lock:
            if shard_id is None:
                self._faults.clear()
            else:
                self._faults.pop(shard_id, None)

    def apply(self, shard_id: int) -> None:
        """The probe-path seam: sleep or raise per the armed fault."""
        with self._lock:
            fault = self._faults.get(shard_id)
            if fault is None:
                return
            if fault.remaining is not None:
                fault.remaining -= 1
                if fault.remaining <= 0:
                    del self._faults[shard_id]
            shot = self.injected.get(shard_id, 0) + 1
            self.injected[shard_id] = shot
            mode, seconds = fault.mode, fault.seconds
        if mode == "slow":
            self._sleep(seconds)
            return
        raise InjectedFault(f"shard {shard_id} {mode}", shot)


class FailingFilesystem(RealFilesystem):
    """Filesystem shim that fails deterministically at one operation.

    Args:
        fail_operation: which call to sabotage — ``"open"``,
            ``"write"``, ``"fsync"``, or ``"replace"``.
        fail_at_call: 1-based index of the sabotaged call among calls
            to that operation (so the second ``replace`` can succeed
            while the first fails, etc.).

    Counts every operation (``calls`` dict) so tests can assert the
    failure actually happened where intended.
    """

    def __init__(self, fail_operation: str, fail_at_call: int = 1):
        operations = ("open", "write", "fsync", "replace")
        if fail_operation not in operations:
            raise ValueError(
                f"fail_operation must be one of {operations}, got {fail_operation!r}"
            )
        if fail_at_call < 1:
            raise ValueError(f"fail_at_call must be >= 1, got {fail_at_call}")
        self.fail_operation = fail_operation
        self.fail_at_call = fail_at_call
        self.calls = {name: 0 for name in operations}
        self.faults_injected = 0

    def _trip(self, operation: str) -> None:
        self.calls[operation] += 1
        if (
            operation == self.fail_operation
            and self.calls[operation] == self.fail_at_call
        ):
            self.faults_injected += 1
            raise InjectedFault(operation, self.calls[operation])

    def open(self, path: str, mode: str):
        self._trip("open")
        handle = super().open(path, mode)
        if "w" in mode:
            return _WriteTrippingHandle(handle, self)
        return handle

    def fsync(self, handle) -> None:
        self._trip("fsync")
        inner = getattr(handle, "_inner", handle)
        super().fsync(inner)

    def replace(self, src: str, dst: str) -> None:
        self._trip("replace")
        super().replace(src, dst)


class _WriteTrippingHandle:
    """File-handle proxy that routes ``write`` through the fault seam."""

    def __init__(self, inner, fs: FailingFilesystem):
        self._inner = inner
        self._fs = fs

    def write(self, data):
        self._fs._trip("write")
        return self._inner.write(data)

    def __getattr__(self, name):
        return getattr(self._inner, name)
