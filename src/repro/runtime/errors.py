"""Structured exception hierarchy for the hardened join runtime.

Every failure mode the runtime can surface has a dedicated type so
callers can distinguish "ran out of time" from "the operator asked us to
stop" from "a snapshot on disk is damaged" without string-matching.
All types derive from :class:`JoinRuntimeError`.
"""

from __future__ import annotations

__all__ = [
    "CheckpointMismatch",
    "ConcurrentMutation",
    "JoinCancelled",
    "JoinInterrupted",
    "JoinRuntimeError",
    "JoinTimeout",
    "MemoryBudgetExceeded",
    "SnapshotCorrupted",
    "SnapshotEncodingError",
]


class JoinRuntimeError(Exception):
    """Base class for all hardened-runtime failures."""


class JoinInterrupted(JoinRuntimeError):
    """Base for interruptions that stop a join before completion.

    When the join was running with a checkpointer, the last completed
    progress has been flushed to disk before this was raised, so the
    same invocation can be resumed.
    """


class JoinTimeout(JoinInterrupted):
    """The context's deadline expired mid-join."""

    def __init__(self, elapsed: float, deadline: float):
        super().__init__(
            f"join deadline of {deadline:.3f}s expired after {elapsed:.3f}s"
        )
        self.elapsed = elapsed
        self.deadline = deadline


class JoinCancelled(JoinInterrupted):
    """The context's cancellation token was triggered mid-join."""

    def __init__(self, reason: str = "cancelled"):
        super().__init__(f"join cancelled: {reason}")
        self.reason = reason


class MemoryBudgetExceeded(JoinRuntimeError):
    """The context's memory budget (in index entries) was exceeded.

    Only raised when the context was built with
    ``on_memory_exceeded="raise"``; the default policy degrades to the
    budget-respecting ClusterMem join instead.
    """

    def __init__(self, entries: int, budget: int):
        super().__init__(
            f"index memory reached {entries} entries, budget is {budget}"
        )
        self.entries = entries
        self.budget = budget


class SnapshotCorrupted(JoinRuntimeError):
    """A persisted snapshot failed validation (checksum, shape, version).

    Carries the offending ``path`` and a human-readable ``detail``.
    """

    def __init__(self, path: str, detail: str):
        super().__init__(f"snapshot {path!r} is corrupt or unreadable: {detail}")
        self.path = path
        self.detail = detail


class SnapshotEncodingError(JoinRuntimeError):
    """A payload cannot be represented in the snapshot format.

    Raised instead of silently coercing non-JSON payloads to ``str``
    (which loses data on round-trip); pass a codec to handle custom
    payload types.
    """


class CheckpointMismatch(JoinRuntimeError):
    """A checkpoint on disk belongs to a different join invocation.

    Resuming is only sound when the algorithm, predicate, and dataset
    are byte-identical to the interrupted run; anything else would
    silently produce wrong pairs.
    """


class ConcurrentMutation(JoinRuntimeError):
    """The similarity-index service was re-entered mid-operation.

    The service temporarily mutates shared state during queries; it is
    not thread-safe and not re-entrant. This error is raised instead of
    corrupting the index.
    """

    def __init__(self, attempted: str, in_flight: str):
        super().__init__(
            f"cannot {attempted} while a {in_flight} is in flight:"
            " SimilarityIndex is not re-entrant (nor thread-safe)"
        )
        self.attempted = attempted
        self.in_flight = in_flight
