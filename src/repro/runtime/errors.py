"""Structured exception hierarchy for the hardened join runtime.

Every failure mode the runtime can surface has a dedicated type so
callers can distinguish "ran out of time" from "the operator asked us to
stop" from "a snapshot on disk is damaged" without string-matching.
All types derive from :class:`JoinRuntimeError`.
"""

from __future__ import annotations

__all__ = [
    "CheckpointMismatch",
    "CircuitOpen",
    "ConcurrentMutation",
    "DeadlineExceeded",
    "FrameChecksumError",
    "JoinCancelled",
    "JoinInterrupted",
    "JoinRuntimeError",
    "JoinTimeout",
    "MemoryBudgetExceeded",
    "PartialResult",
    "ReadOnlyIndex",
    "ReindexTimeout",
    "RidDesync",
    "ServerOverloaded",
    "ShardUnavailable",
    "SnapshotCorrupted",
    "SnapshotEncodingError",
    "WireProtocolError",
]


class JoinRuntimeError(Exception):
    """Base class for all hardened-runtime failures."""


class JoinInterrupted(JoinRuntimeError):
    """Base for interruptions that stop a join before completion.

    When the join was running with a checkpointer, the last completed
    progress has been flushed to disk before this was raised, so the
    same invocation can be resumed.
    """


class JoinTimeout(JoinInterrupted):
    """The context's deadline expired mid-join."""

    def __init__(self, elapsed: float, deadline: float):
        super().__init__(
            f"join deadline of {deadline:.3f}s expired after {elapsed:.3f}s"
        )
        self.elapsed = elapsed
        self.deadline = deadline


#: A deadline expiry is the runtime's "deadline exceeded" failure; the
#: serving layer (retry clamping, per-shard budgets) refers to it under
#: this name. One type, two vocabularies — ``except`` either.
DeadlineExceeded = JoinTimeout


class JoinCancelled(JoinInterrupted):
    """The context's cancellation token was triggered mid-join."""

    def __init__(self, reason: str = "cancelled"):
        super().__init__(f"join cancelled: {reason}")
        self.reason = reason


class MemoryBudgetExceeded(JoinRuntimeError):
    """The context's memory budget (in index entries) was exceeded.

    Only raised when the context was built with
    ``on_memory_exceeded="raise"``; the default policy degrades to the
    budget-respecting ClusterMem join instead.
    """

    def __init__(self, entries: int, budget: int):
        super().__init__(
            f"index memory reached {entries} entries, budget is {budget}"
        )
        self.entries = entries
        self.budget = budget


class SnapshotCorrupted(JoinRuntimeError):
    """A persisted snapshot failed validation (checksum, shape, version).

    Carries the offending ``path`` and a human-readable ``detail``.
    """

    def __init__(self, path: str, detail: str):
        super().__init__(f"snapshot {path!r} is corrupt or unreadable: {detail}")
        self.path = path
        self.detail = detail


class SnapshotEncodingError(JoinRuntimeError):
    """A payload cannot be represented in the snapshot format.

    Raised instead of silently coercing non-JSON payloads to ``str``
    (which loses data on round-trip); pass a codec to handle custom
    payload types.
    """


class CheckpointMismatch(JoinRuntimeError):
    """A checkpoint on disk belongs to a different join invocation.

    Resuming is only sound when the algorithm, predicate, and dataset
    are byte-identical to the interrupted run; anything else would
    silently produce wrong pairs.
    """


class ServerOverloaded(JoinRuntimeError):
    """The serving layer shed this request instead of queueing it.

    Raised at admission time when the server's bounded queue is full
    (or the server is draining), so overload surfaces as an immediate
    typed error rather than unbounded latency. Retry against another
    replica or back off; the request was never executed.
    """

    def __init__(self, reason: str, queue_depth: int, queue_limit: int):
        super().__init__(
            f"request shed: {reason} (queue {queue_depth}/{queue_limit})"
        )
        self.reason = reason
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit


class CircuitOpen(JoinRuntimeError):
    """The circuit breaker is open; the request failed fast.

    After ``failure_threshold`` consecutive failures the breaker stops
    dispatching work for ``cooldown_seconds``, then lets a limited
    number of trial requests through (half-open). The request was never
    executed; ``retry_after`` is the cooldown remaining (0.0 when the
    breaker is half-open but its trial slots are taken).
    """

    def __init__(self, state: str, retry_after: float):
        super().__init__(
            f"circuit breaker is {state}; retry in {max(retry_after, 0.0):.3f}s"
        )
        self.state = state
        self.retry_after = retry_after


class PartialResult(JoinRuntimeError):
    """A sharded query lost shards and the caller demanded completeness.

    Raised by ``ShardedIndexServer`` when ``require_complete=True`` and
    one or more shards failed (breaker open, deadline expiry, injected
    or real fault). The matches that *were* gathered ride along on
    ``result`` so a caller that changes its mind can still use them;
    ``shards_failed`` names the lost shards exactly.
    """

    def __init__(self, shards_failed, shards_total: int, result=None):
        failed = tuple(shards_failed)
        super().__init__(
            f"partial result: lost {len(failed)}/{shards_total} shards"
            f" {list(failed)}"
        )
        self.shards_failed = failed
        self.shards_total = shards_total
        self.result = result


class ReindexTimeout(JoinRuntimeError):
    """A blocking reindex wait expired with builds still running.

    Raised by ``ShardedIndexServer.reindex(block=True, timeout=...)``
    when any generation build has not flipped within the timeout. The
    builds are *not* cancelled — they keep running in the background
    and will still flip on completion. ``builders`` carries every
    builder from the call and ``stalled`` the still-running subset, so
    the caller can keep ``wait()``-ing or inspect which shards lagged.
    """

    def __init__(self, stalled, builders, timeout: float | None):
        self.stalled = list(stalled)
        self.builders = list(builders)
        self.timeout = timeout
        bound = "" if timeout is None else f" after {timeout:.3f}s"
        super().__init__(
            f"reindex still building{bound}:"
            f" {len(self.stalled)}/{len(self.builders)} generation builds"
            " have not flipped (they continue in the background)"
        )


class ShardUnavailable(JoinRuntimeError, ConnectionError):
    """A remote shard could not be reached or died mid-exchange.

    Raised by the shard transport when a connection cannot be
    established, drops mid-request, or the node answers with a failure
    that has no more specific type. Subclasses ``ConnectionError`` (an
    ``OSError``) on purpose: the serving tier's default retry
    classification treats ``OSError`` as transient, so a flapping node
    is retried/reconnected while the carved deadline allows, and a dead
    one exhausts its attempts and is counted in ``shards_failed``
    exactly like a killed in-process shard.
    """

    def __init__(self, endpoint: str, detail: str):
        super().__init__(f"shard at {endpoint} unavailable: {detail}")
        self.endpoint = endpoint
        self.detail = detail


class WireProtocolError(JoinRuntimeError):
    """A frame on the shard wire violated the protocol.

    Bad magic, unsupported version, an unknown op, or a length field
    outside the sane bound: the stream cannot be trusted past this
    point, so the connection is torn down. Deliberately *not* an
    ``OSError`` — a peer speaking the wrong protocol will not start
    speaking the right one on retry.
    """

    def __init__(self, detail: str):
        super().__init__(f"wire protocol violation: {detail}")
        self.detail = detail


class RidDesync(WireProtocolError):
    """A shard's local-rid space disagrees with the front end's map.

    Raised on an idempotent ADD when the node would assign (or echoes)
    a different shard-local rid than the front end expects — the sign
    of a double insert, a lost rollback, or a node restarted with the
    wrong state. Non-retryable (re-issuing the insert cannot re-align
    the rid spaces); the sharded front end quarantines the shard so it
    can never map matches to the wrong global records.
    """


class FrameChecksumError(WireProtocolError, OSError):
    """A frame's CRC32 did not match its header+payload bytes.

    Unlike the other protocol violations this one is transient by
    nature (a torn read, a corrupting middlebox), so it additionally
    subclasses ``OSError`` and the retry policy re-issues the request
    on a fresh connection.
    """

    def __init__(self, expected: int, actual: int):
        super().__init__(
            f"frame checksum mismatch: header says {expected:#010x},"
            f" bytes hash to {actual:#010x}"
        )
        self.expected = expected
        self.actual = actual


class ReadOnlyIndex(JoinRuntimeError):
    """A mutation was attempted on a memory-mapped (read-only) index.

    An index opened with ``SimilarityIndex.load(..., mmap=True)`` serves
    queries straight off the write-once mapped file; ``add``/``rebind``
    have nowhere to land. Build a mutable index (load without ``mmap``)
    or write a new mapped snapshot from one.
    """

    def __init__(self, operation: str, path: str):
        super().__init__(
            f"cannot {operation}: index is served read-only from the"
            f" memory-mapped file {path!r}; load without mmap=True to mutate"
        )
        self.operation = operation
        self.path = path


class ConcurrentMutation(JoinRuntimeError):
    """An overlapping similarity-index operation was observed.

    Raised when an operation re-enters the service from the same thread
    (a tokenizer or codec calling back in — unservable without deadlock
    or corruption), or — as a last-resort invariant check — when a
    mutation is caught overlapping another operation because the index
    was built with a no-op lock. Under the default
    :class:`~repro.runtime.rwlock.RWLock` cross-thread overlap cannot
    happen: queries share the read side, mutations take the write side.
    """

    def __init__(self, attempted: str, in_flight: str):
        super().__init__(
            f"cannot {attempted} while a {in_flight} is in flight:"
            " SimilarityIndex operations must not overlap a mutation"
            " (re-entrant call, or missing lock?)"
        )
        self.attempted = attempted
        self.in_flight = in_flight
