"""Reader–writer lock for the concurrent SimilarityIndex.

The online service has a classic read-mostly profile: queries only read
shared state (the dataset, the bound predicate's caches, the inverted
index), while ``add``/``rebind``/``load`` mutate it. A mutex would
serialize every query behind every other; this lock lets any number of
queries proceed in parallel and gives writers exclusive access.

Writer preference: once a writer is waiting, new readers block until
all queued writers have run, so a steady query stream cannot starve
``add`` indefinitely.

:class:`NullRWLock` is the deliberate opt-out — same interface, no
synchronization — used by single-threaded callers that want zero lock
overhead and by tests that demonstrate what the
:class:`~repro.runtime.errors.ConcurrentMutation` invariant guard
catches when the lock is absent.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["NullRWLock", "RWLock"]


class RWLock:
    """A writer-preferring reader–writer lock.

    Not re-entrant: a thread holding the lock (in either mode) must not
    re-acquire it — callers are expected to reject re-entrant calls
    before touching the lock (the service's thread-local guard does).
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # Introspection (used by the service's invariant checks and health)
    # ------------------------------------------------------------------

    @property
    def active_readers(self) -> int:
        """Number of threads currently holding the read side."""
        return self._active_readers

    @property
    def writer_active(self) -> bool:
        """Whether a thread currently holds the write side."""
        return self._writer_active

    # ------------------------------------------------------------------

    @contextmanager
    def read_locked(self):
        """Hold the lock in shared (read) mode."""
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write_locked(self):
        """Hold the lock in exclusive (write) mode."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


class NullRWLock:
    """The same interface as :class:`RWLock` with no synchronization.

    Tracks (unsynchronized, racy) reader/writer tallies so the
    service's ``ConcurrentMutation`` invariant checks can still observe
    overlap — which is exactly what the unlocked-stress regression test
    asserts. Never use this with shared instances in real deployments.
    """

    def __init__(self) -> None:
        self._active_readers = 0
        self._writer_active = False

    @property
    def active_readers(self) -> int:
        return self._active_readers

    @property
    def writer_active(self) -> bool:
        return self._writer_active

    @contextmanager
    def read_locked(self):
        self._active_readers += 1
        try:
            yield
        finally:
            self._active_readers -= 1

    @contextmanager
    def write_locked(self):
        self._writer_active = True
        try:
            yield
        finally:
            self._writer_active = False
