"""Checkpoint/resume for batch joins.

The shared driver loop (:mod:`repro.core.base`) periodically snapshots
join progress — the last completed scan position, every pair emitted so
far, and the cost counters — through a :class:`JoinCheckpointer`. When
the same invocation is relaunched (same algorithm, predicate, and
dataset, verified by fingerprint), the driver restores the pairs and
*replays* the scan up to the checkpointed position: state-building work
(index inserts, cluster assignment) is redone deterministically while
pair emission is skipped, so the resumed run produces exactly the pair
set of an uninterrupted run.

Checkpoint files are written through :mod:`repro.runtime.snapshot`, so
a crash during a checkpoint write can never destroy the previous
checkpoint.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.core.results import MatchPair
from repro.runtime.errors import CheckpointMismatch, SnapshotCorrupted
from repro.runtime.snapshot import read_snapshot, write_snapshot
from repro.utils.counters import CostCounters

__all__ = ["CheckpointState", "JoinCheckpointer", "dataset_fingerprint"]

CHECKPOINT_KIND = "join-checkpoint"
CHECKPOINT_FILENAME = "join.ckpt"


def dataset_fingerprint(dataset) -> str:
    """Content hash of the record sets (resume-compatibility check)."""
    digest = hashlib.sha256()
    digest.update(str(len(dataset)).encode("ascii"))
    for record in dataset.records:
        digest.update(b"|")
        digest.update(",".join(map(str, record)).encode("ascii"))
    return digest.hexdigest()


@dataclass
class CheckpointState:
    """One recoverable point of a join: identity + progress."""

    algorithm: str
    predicate: str
    fingerprint: str
    n_records: int
    position: int
    pairs: list
    counters: dict

    def match_pairs(self) -> list[MatchPair]:
        return [MatchPair(int(a), int(b), float(sim)) for a, b, sim in self.pairs]

    def cost_counters(self) -> CostCounters:
        restored = CostCounters()
        known = {f for f in vars(restored) if f != "extra"}
        for key, value in self.counters.items():
            if key in known:
                setattr(restored, key, value)
            else:
                restored.extra[key] = value
        return restored


class JoinCheckpointer:
    """Periodic progress snapshots for one (resumable) join invocation.

    Args:
        directory: where the checkpoint file lives (created if absent).
        interval_records: checkpoint cadence, in completed scan
            positions. Lower = less lost work on a crash, more write
            amplification.
        fs: filesystem shim passed to the snapshot layer (fault
            injection for tests).
    """

    def __init__(self, directory: str, interval_records: int = 1000, fs=None):
        if interval_records < 1:
            raise ValueError(
                f"interval_records must be >= 1, got {interval_records}"
            )
        self.directory = directory
        self.interval_records = interval_records
        self.fs = fs
        self.writes = 0
        os.makedirs(directory, exist_ok=True)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, CHECKPOINT_FILENAME)

    # ------------------------------------------------------------------

    def load(self) -> CheckpointState | None:
        """The checkpoint on disk, or None when starting fresh.

        Raises :class:`SnapshotCorrupted` when a file exists but cannot
        be trusted — never silently resumes from damaged state.
        """
        try:
            payload = read_snapshot(self.path, kind=CHECKPOINT_KIND, fs=self.fs)
        except FileNotFoundError:
            return None
        try:
            return CheckpointState(
                algorithm=str(payload["algorithm"]),
                predicate=str(payload["predicate"]),
                fingerprint=str(payload["fingerprint"]),
                n_records=int(payload["n_records"]),
                position=int(payload["position"]),
                pairs=list(payload["pairs"]),
                counters=dict(payload["counters"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotCorrupted(self.path, f"bad checkpoint shape: {exc}") from exc

    @staticmethod
    def validate(
        state: CheckpointState,
        *,
        algorithm: str,
        predicate: str,
        fingerprint: str,
        n_records: int,
    ) -> None:
        """Refuse to resume a checkpoint from a different invocation."""
        mismatches = []
        if state.algorithm != algorithm:
            mismatches.append(f"algorithm {state.algorithm!r} != {algorithm!r}")
        if state.predicate != predicate:
            mismatches.append(f"predicate {state.predicate!r} != {predicate!r}")
        if state.n_records != n_records:
            mismatches.append(f"record count {state.n_records} != {n_records}")
        if state.fingerprint != fingerprint:
            mismatches.append("dataset fingerprint differs")
        if mismatches:
            raise CheckpointMismatch(
                "checkpoint belongs to a different join invocation: "
                + "; ".join(mismatches)
            )

    # ------------------------------------------------------------------

    def due(self, position: int) -> bool:
        """Whether completing ``position`` should trigger a checkpoint."""
        return (position + 1) % self.interval_records == 0

    def write(
        self,
        *,
        algorithm: str,
        predicate: str,
        fingerprint: str,
        n_records: int,
        position: int,
        pairs: list[MatchPair],
        counters: CostCounters,
    ) -> None:
        """Atomically persist progress through ``position``."""
        payload = {
            "algorithm": algorithm,
            "predicate": predicate,
            "fingerprint": fingerprint,
            "n_records": n_records,
            "position": position,
            "pairs": [[p.rid_a, p.rid_b, p.similarity] for p in pairs],
            "counters": counters.as_dict(),
        }
        write_snapshot(self.path, payload, kind=CHECKPOINT_KIND, fs=self.fs)
        self.writes += 1

    def clear(self) -> None:
        """Drop the checkpoint (the join completed)."""
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass
