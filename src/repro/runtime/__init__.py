"""Hardened join runtime: deadlines, cancellation, checkpoint/resume,
crash-safe persistence, and graceful degradation.

The pieces:

* :class:`~repro.runtime.context.JoinContext` /
  :class:`~repro.runtime.context.CancellationToken` — per-join deadline,
  cooperative cancellation, and memory budget, enforced at record
  granularity by the shared driver loop.
* :class:`~repro.runtime.checkpoint.JoinCheckpointer` — periodic
  progress snapshots; an interrupted batch join resumes instead of
  restarting.
* :mod:`~repro.runtime.snapshot` — versioned, checksummed,
  atomically-renamed snapshot files (used by checkpoints and
  :class:`~repro.core.service.SimilarityIndex` persistence).
* :mod:`~repro.runtime.rwlock` — reader–writer lock behind the
  thread-safe :class:`~repro.core.service.SimilarityIndex` (many
  concurrent queries, exclusive mutations).
* :mod:`~repro.runtime.errors` — the structured exception hierarchy.
* :mod:`~repro.runtime.faults` — deterministic fault injection
  (fake clock, failing filesystem, countdown cancellation) for tests.

See ``docs/operations.md`` for the operational guide.
"""

from repro.runtime.checkpoint import (
    CheckpointState,
    JoinCheckpointer,
    dataset_fingerprint,
)
from repro.runtime.context import CancellationToken, JoinContext
from repro.runtime.errors import (
    CheckpointMismatch,
    CircuitOpen,
    ConcurrentMutation,
    DeadlineExceeded,
    FrameChecksumError,
    JoinCancelled,
    JoinInterrupted,
    JoinRuntimeError,
    JoinTimeout,
    MemoryBudgetExceeded,
    PartialResult,
    ReindexTimeout,
    ServerOverloaded,
    ShardUnavailable,
    SnapshotCorrupted,
    SnapshotEncodingError,
    WireProtocolError,
)
from repro.runtime.rwlock import NullRWLock, RWLock
from repro.runtime.snapshot import read_snapshot, write_snapshot

__all__ = [
    "CancellationToken",
    "CheckpointMismatch",
    "CheckpointState",
    "CircuitOpen",
    "ConcurrentMutation",
    "DeadlineExceeded",
    "FrameChecksumError",
    "JoinCancelled",
    "JoinCheckpointer",
    "JoinContext",
    "JoinInterrupted",
    "JoinRuntimeError",
    "JoinTimeout",
    "MemoryBudgetExceeded",
    "NullRWLock",
    "PartialResult",
    "RWLock",
    "ReindexTimeout",
    "ServerOverloaded",
    "ShardUnavailable",
    "SnapshotCorrupted",
    "SnapshotEncodingError",
    "WireProtocolError",
    "dataset_fingerprint",
    "read_snapshot",
    "write_snapshot",
]
