"""Crash-safe, versioned, checksummed snapshot files.

One snapshot = one JSON envelope on disk::

    {"magic": "repro-snapshot", "version": 1, "kind": "<what>",
     "checksum": "sha256:...", "payload": {...}}

Writes are crash-safe: the envelope is written to ``<path>.tmp``,
flushed and fsync'd, then atomically renamed over ``<path>`` — a crash
at any point leaves either the complete old snapshot or the complete
new one, never a torn file. Reads validate the magic, version, kind,
and payload checksum and raise a precise
:class:`~repro.runtime.errors.SnapshotCorrupted` on any mismatch.

All filesystem calls go through a small shim (:class:`RealFilesystem`)
so tests can inject failures deterministically — see
:class:`repro.runtime.faults.FailingFilesystem`.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.runtime.errors import SnapshotCorrupted, SnapshotEncodingError

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "RealFilesystem",
    "canonical_json",
    "read_snapshot",
    "write_snapshot",
]

SNAPSHOT_MAGIC = "repro-snapshot"
SNAPSHOT_VERSION = 1


class RealFilesystem:
    """Default filesystem shim; the fault-injection seam.

    Every operation the snapshot writer needs, as an overridable
    method. :class:`repro.runtime.faults.FailingFilesystem` subclasses
    this to fail deterministically at a chosen call.
    """

    def open(self, path: str, mode: str):
        return open(path, mode, encoding="utf-8")

    def fsync(self, handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)


REAL_FS = RealFilesystem()


def canonical_json(payload) -> str:
    """Deterministic JSON serialization (the checksum input).

    Raises :class:`SnapshotEncodingError` for values JSON cannot
    represent, instead of silently coercing them.
    """
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise SnapshotEncodingError(
            f"payload is not JSON-representable: {exc}"
        ) from exc


def _checksum(body: str) -> str:
    return "sha256:" + hashlib.sha256(body.encode("utf-8")).hexdigest()


def write_snapshot(path: str, payload, *, kind: str, fs: RealFilesystem | None = None) -> None:
    """Atomically persist ``payload`` as a versioned snapshot at ``path``.

    The previous snapshot at ``path`` (if any) survives intact unless
    the final atomic rename succeeds.
    """
    fs = fs if fs is not None else REAL_FS
    body = canonical_json(payload)
    envelope = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "kind": kind,
        "checksum": _checksum(body),
        "payload": payload,
    }
    # Encode the whole envelope before the temp file exists, so an
    # encoding failure can never leave a partial file behind.
    encoded = json.dumps(envelope, sort_keys=True)
    tmp = path + ".tmp"
    try:
        handle = fs.open(tmp, "w")
        try:
            handle.write(encoded)
            fs.fsync(handle)
        finally:
            handle.close()
        fs.replace(tmp, path)
    except BaseException:
        # Cleanup of the partial temp file (best-effort); the real
        # snapshot at `path` has not been touched. BaseException, not
        # Exception: a KeyboardInterrupt mid-write (operator hammering
        # Ctrl-C during a checkpoint flush) must not leak the temp
        # file into the checkpoint directory either.
        try:
            if fs.exists(tmp):
                fs.remove(tmp)
        except OSError:
            pass
        raise


def read_snapshot(path: str, *, kind: str, fs: RealFilesystem | None = None):
    """Load and validate a snapshot; returns the payload.

    Raises:
        FileNotFoundError: no snapshot at ``path``.
        SnapshotCorrupted: the file exists but is torn, tampered with,
            of the wrong kind, or from an unknown format version.
    """
    fs = fs if fs is not None else REAL_FS
    handle = fs.open(path, "r")
    try:
        raw = handle.read()
    finally:
        handle.close()
    try:
        envelope = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SnapshotCorrupted(path, f"not valid JSON ({exc})") from exc
    if not isinstance(envelope, dict):
        raise SnapshotCorrupted(path, "envelope is not a JSON object")
    if envelope.get("magic") != SNAPSHOT_MAGIC:
        raise SnapshotCorrupted(path, "missing snapshot magic (foreign file?)")
    version = envelope.get("version")
    if not isinstance(version, int) or version < 1 or version > SNAPSHOT_VERSION:
        raise SnapshotCorrupted(
            path,
            f"unsupported format version {version!r}"
            f" (this build reads <= {SNAPSHOT_VERSION})",
        )
    if envelope.get("kind") != kind:
        raise SnapshotCorrupted(
            path, f"kind is {envelope.get('kind')!r}, expected {kind!r}"
        )
    if "payload" not in envelope:
        raise SnapshotCorrupted(path, "envelope has no payload")
    payload = envelope["payload"]
    expected = envelope.get("checksum")
    actual = _checksum(canonical_json(payload))
    if expected != actual:
        raise SnapshotCorrupted(
            path, f"checksum mismatch (stored {expected!r}, computed {actual!r})"
        )
    return payload
