"""Seeded recursive MinHash path splitting.

One repetition partitions the record ids into *leaves* by recursive
MinHash: at depth ``d`` every surviving group is split by the records'
minimum of ``(a * token + b) mod p`` under coefficients drawn for
``(rep, d)``. Two records share a child with probability equal to
their token Jaccard — the chosen-path collision argument the planner's
recall bound rests on. Groups that fit ``leaf_size`` stop early (the
brute-force fallback catches *every* pair inside them); groups still
alive at ``max_depth`` become forced leaves.

Determinism is arithmetic end to end: coefficients come from
``random.Random`` seeded with an integer mix of ``(seed, rep, depth)``
(never Python's salted ``hash``), groups are processed in ascending
record order, and bucket order follows first occurrence — so a fixed
seed yields an identical forest on any machine or worker.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.utils.counters import CostCounters

__all__ = ["PathHasher", "build_leaves"]

#: Same Mersenne prime the MinHash sketches of :mod:`repro.mining` use.
_MERSENNE_PRIME = (1 << 61) - 1

# 64-bit odd multipliers (splitmix64 constants) for the integer seed mix.
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9
_MIX_C = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


class PathHasher:
    """Lazy per-``(rep, depth)`` family of MinHash coefficient pairs."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._coefficients: dict[tuple[int, int], tuple[int, int]] = {}

    def coefficients(self, rep: int, depth: int) -> tuple[int, int]:
        key = (rep, depth)
        pair = self._coefficients.get(key)
        if pair is None:
            mix = (self.seed * _MIX_A + rep * _MIX_B + depth * _MIX_C) & _MASK64
            rng = random.Random(mix)
            pair = (
                rng.randint(1, _MERSENNE_PRIME - 1),
                rng.randint(0, _MERSENNE_PRIME - 1),
            )
            self._coefficients[key] = pair
        return pair


#: Crowd control for forced leaves (see :func:`build_leaves`): groups
#: still larger than ``OVERSIZE_FACTOR * leaf_size`` at the nominal
#: depth keep splitting for up to ``OVERSIZE_EXTRA_DEPTH`` more levels
#: instead of being brute-forced quadratically.
OVERSIZE_FACTOR = 4
OVERSIZE_EXTRA_DEPTH = 8


def build_leaves(
    records: Sequence[tuple[int, ...]],
    rep: int,
    hasher: PathHasher,
    *,
    leaf_size: int,
    max_depth: int,
    counters: CostCounters,
    tick: Callable[[], None],
) -> list[list[int]]:
    """One repetition's leaves, each an ascending list of record ids.

    Empty records are excluded up front (they share no token with
    anything, so no positive-threshold predicate can match them), and
    singleton buckets are dropped as they arise — a leaf always holds
    at least two records.

    Crowd control: common tokens glue cohorts together (all records
    sharing a corpus-wide frequent token take the same branch whenever
    that token hashes minimal), so occasionally a large group survives
    every nominal split and would be brute-forced at quadratic cost.
    Groups still larger than ``OVERSIZE_FACTOR * leaf_size`` at
    ``max_depth`` therefore keep splitting for up to
    ``OVERSIZE_EXTRA_DEPTH`` extra levels (groups of identical records,
    which no token hash can ever separate, leaf out immediately — their
    pairs are all true matches anyway). The recall trade is explicit:
    pairs inside such a crowd face up to that many extra
    stay-together trials, so the planner's per-tree bound
    ``floor**max_depth`` holds for every pair *not* in an oversized
    crowd and degrades toward ``floor**(max_depth + extra)`` for pairs
    that are; measured recall is what the estimator and the perf gate
    check.

    ``tick`` runs once per split group so deadlines and cancellation
    reach into the build; ``path_hash_tokens`` in ``counters.extra``
    accounts every token touched by hashing (the sketching cost,
    reported alongside — not inside — ``total_work()``, mirroring how
    ``suffix_recursions`` stays out of the gated scalar).
    """
    first = [rid for rid in range(len(records)) if records[rid]]
    if len(first) < 2:
        return []
    leaves: list[list[int]] = []
    frontier: list[list[int]] = [first]
    hashed_tokens = 0
    oversize = leaf_size * OVERSIZE_FACTOR
    for depth in range(max_depth + OVERSIZE_EXTRA_DEPTH):
        if not frontier:
            break
        stop_size = leaf_size if depth < max_depth else oversize
        a, b = hasher.coefficients(rep, depth)
        next_frontier: list[list[int]] = []
        for group in frontier:
            tick()
            if len(group) <= stop_size:
                leaves.append(group)
                continue
            buckets: dict[int, list[int]] = {}
            for rid in group:
                tokens = records[rid]
                hashed_tokens += len(tokens)
                key = min((a * token + b) % _MERSENNE_PRIME for token in tokens)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [rid]
                else:
                    bucket.append(rid)
            if len(buckets) == 1:
                tokens_first = records[group[0]]
                if all(records[rid] == tokens_first for rid in group):
                    leaves.append(group)  # identical sets never split
                    continue
            for bucket in buckets.values():
                if len(bucket) > 1:
                    next_frontier.append(bucket)
        frontier = next_frontier
    leaves.extend(frontier)  # forced leaves at the depth limit
    if hashed_tokens:
        extra = counters.extra
        extra["path_hash_tokens"] = extra.get("path_hash_tokens", 0) + hashed_tokens
    return leaves
