"""Sizing the path forest: the expected-work stopping rule.

One *repetition* is one recursive MinHash path tree over the dataset:
records are split by a fresh seeded MinHash at each level until a group
fits in ``leaf_size`` (brute-force territory) or the depth cap is hit,
and every leaf is verified exhaustively. Two records land in the same
child with probability equal to their token Jaccard, so a qualifying
pair — Jaccard at least ``floor`` (:mod:`repro.approx.floor`) —
survives one tree all the way to a *forced* depth-``D`` leaf with
probability at least ``floor**D``. Pairs that stop earlier (a
``leaf_size`` stop) are caught *with certainty* by the leaf
brute-force, so ``floor**D`` is a worst-case per-tree recall bound.

Independent repetitions then give

    P(pair surfaced) >= 1 - (1 - floor**D) ** R

and the planner picks the smallest ``R`` with that bound at
``target_recall``:

    R = ceil( ln(1 - target_recall) / ln(1 - floor**D) )

Depth is the work trade: deeper trees make purer (cheaper) leaves but
need more repetitions. The planner takes the deepest depth within
``max_depth`` whose repetition count fits ``max_repetitions``; when
even depth 1 cannot reach the target inside the cap (low floors —
think T-overlap over wildly varying sizes), it runs the cap and
records the shortfall (``recall_capped``) instead of looping forever —
that *is* the stopping rule: expected work is bounded up front, and
the achievable recall under the bound is reported honestly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.approx.floor import pair_jaccard_floor
from repro.core.records import Dataset
from repro.predicates.base import BoundPredicate

__all__ = ["ApproxPlan", "plan_paths"]


@dataclass(frozen=True)
class ApproxPlan:
    """Resolved execution shape for one approximate join."""

    target_recall: float
    jaccard_floor: float
    floor_is_sound: bool
    depth: int
    leaf_size: int
    repetitions: int
    #: Worst-case per-tree pair survival probability, ``floor ** depth``.
    per_tree_recall: float
    #: ``1 - (1 - per_tree_recall) ** repetitions`` — the guarantee the
    #: forest actually delivers (>= target unless ``recall_capped``).
    expected_recall: float
    #: True when ``max_repetitions`` bound the forest below the target.
    recall_capped: bool

    def as_extra(self) -> dict:
        """Flat, JSON-friendly snapshot for ``JoinResult.extra``."""
        return {
            "approx_target_recall": self.target_recall,
            "approx_jaccard_floor": round(self.jaccard_floor, 6),
            "approx_floor_sound": self.floor_is_sound,
            "approx_depth": self.depth,
            "approx_leaf_size": self.leaf_size,
            "approx_repetitions": self.repetitions,
            "approx_expected_recall": round(self.expected_recall, 6),
            "approx_recall_capped": self.recall_capped,
        }


def _repetitions_for(per_tree: float, target: float) -> int:
    if per_tree >= 1.0 - 1e-12:
        return 1
    if per_tree <= 0.0:
        return math.inf  # type: ignore[return-value]
    return max(1, math.ceil(math.log(1.0 - target) / math.log(1.0 - per_tree)))


def plan_paths(
    bound: BoundPredicate,
    dataset: Dataset,
    *,
    target_recall: float,
    leaf_size: int,
    max_depth: int,
    max_repetitions: int,
) -> ApproxPlan:
    """Choose (depth, repetitions) for the recall target; see module doc."""
    if not 0.0 < target_recall < 1.0:
        raise ValueError(f"target_recall must be in (0, 1), got {target_recall}")
    if leaf_size < 2:
        raise ValueError(f"leaf_size must be >= 2, got {leaf_size}")
    if max_depth < 1:
        raise ValueError(f"max_depth must be >= 1, got {max_depth}")
    if max_repetitions < 1:
        raise ValueError(f"max_repetitions must be >= 1, got {max_repetitions}")
    floor, sound = pair_jaccard_floor(bound, dataset)
    for depth in range(max_depth, 0, -1):
        per_tree = floor**depth
        repetitions = _repetitions_for(per_tree, target_recall)
        if repetitions <= max_repetitions:
            return ApproxPlan(
                target_recall=target_recall,
                jaccard_floor=floor,
                floor_is_sound=sound,
                depth=depth,
                leaf_size=leaf_size,
                repetitions=int(repetitions),
                per_tree_recall=per_tree,
                expected_recall=1.0 - (1.0 - per_tree) ** repetitions,
                recall_capped=False,
            )
    # Even a depth-1 forest cannot reach the target inside the
    # repetition budget: run the budget and report what it buys.
    per_tree = floor
    return ApproxPlan(
        target_recall=target_recall,
        jaccard_floor=floor,
        floor_is_sound=sound,
        depth=1,
        leaf_size=leaf_size,
        repetitions=max_repetitions,
        per_tree_recall=per_tree,
        expected_recall=1.0 - (1.0 - per_tree) ** max_repetitions,
        recall_capped=True,
    )
