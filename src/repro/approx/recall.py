"""Sampled ground-truth recall estimation.

The approximate join's pairs are a verified subset of the exact join;
the open question after a run is *how much* of the exact result it
surfaced. Computing the full ground truth would erase the point of
running approximately, so this estimator verifies the exact predicate
only on ``sample_size`` seeded records against the whole dataset —
``O(sample * n)`` work with exactly the repo's exact-join decision
procedure — and reports the hit rate of the approximate pair set on
that slice. Unbiased in the pair dimension touched by the sample, and
deterministic: the sample derives from the same ``seed`` knob as the
join itself.
"""

from __future__ import annotations

import random

from repro.core.records import Dataset
from repro.predicates.base import WEIGHT_EPS, SimilarityPredicate

__all__ = ["estimate_recall"]

# Seed-mix constant so the estimator's sample is decorrelated from the
# path forest drawn for the same seed.
_SAMPLE_SALT = 0xA5A5F00D


def estimate_recall(
    dataset: Dataset,
    predicate: SimilarityPredicate,
    pairs: set[tuple[int, int]],
    *,
    sample_size: int = 12,
    seed: int = 0,
) -> dict:
    """Estimate recall of ``pairs`` against the exact join.

    Returns a flat dict for ``JoinResult.extra``:
    ``recall_estimate`` (1.0 when the sampled slice holds no qualifying
    pair — nothing was missed *there*), ``recall_sample_records``,
    ``recall_sample_truth``, ``recall_sample_hits``, and
    ``recall_sample_checked`` (exact verifications the estimate cost —
    kept out of ``pairs_verified`` so work gates measure the join, not
    its audit).
    """
    n = len(dataset)
    sample_size = min(sample_size, n)
    if sample_size <= 0:
        return {"recall_estimate": 1.0, "recall_sample_records": 0,
                "recall_sample_truth": 0, "recall_sample_hits": 0,
                "recall_sample_checked": 0}
    rng = random.Random((int(seed) << 20) ^ _SAMPLE_SALT)
    sample = rng.sample(range(n), sample_size)
    bound = predicate.bind(dataset)
    use_signature = bound.use_signature_prefilter
    seen: set[tuple[int, int]] = set()
    truth = hits = checked = 0
    for rid in sample:
        signature_r = bound.signature(rid) if use_signature else 0
        norm_r = bound.norm(rid)
        for sid in range(n):
            if sid == rid:
                continue
            key = (rid, sid) if rid < sid else (sid, rid)
            if key in seen:  # both endpoints sampled
                continue
            seen.add(key)
            checked += 1
            if (
                use_signature
                and not signature_r & bound.signature(sid)
                and bound.threshold(norm_r, bound.norm(sid)) > WEIGHT_EPS
            ):
                continue  # zero common tokens cannot meet a positive threshold
            ok, _similarity = bound.verify(*key)
            if ok:
                truth += 1
                if key in pairs:
                    hits += 1
    return {
        "recall_estimate": hits / truth if truth else 1.0,
        "recall_sample_records": sample_size,
        "recall_sample_truth": truth,
        "recall_sample_hits": hits,
        "recall_sample_checked": checked,
    }
