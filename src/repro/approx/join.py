"""The ``approx`` join algorithm: LSH candidates, exact verification.

``ApproxJoin`` builds a seeded path forest (:mod:`repro.approx.paths`)
sized by the planner (:mod:`repro.approx.plan`), then drives the
standard per-record scan: at record ``rid`` it gathers every leaf
co-member with a smaller id, deduplicates, and hands each candidate to
the shared :meth:`SetJoinAlgorithm._verify_pair` — the same exact
verifier, bitmap prefilter and word-signature shortcut every exact
algorithm uses. A pair is therefore emitted at exactly one scan
position (its larger rid), which is what makes the scan compose with
the parallel engine's shard windows: disjoint windows partition the
emitted pair set, and a fixed seed gives identical pairs at any worker
count.

Counter semantics: ``pairs_generated`` and ``candidates_checked``
both count the *distinct* candidates materialized per record (the
pairs the forest actually hands to verification), and
``pairs_verified`` keeps its repo-wide meaning of exact verifications
performed. The raw leaf co-member stream — duplicates across
repetitions — is ``path_enumerations`` in ``counters.extra``, and
MinHash sketching cost is ``path_hash_tokens`` there; both live
outside :meth:`CostCounters.total_work` for the same reason
``accum_scans`` and ``suffix_recursions`` do (the accepted unit of
work is already counted exactly once).
"""

from __future__ import annotations

from repro.approx.paths import PathHasher, build_leaves
from repro.approx.plan import ApproxPlan, plan_paths
from repro.approx.recall import estimate_recall
from repro.core.base import SetJoinAlgorithm
from repro.core.records import Dataset
from repro.core.results import JoinResult, MatchPair
from repro.predicates.base import BoundPredicate, SimilarityPredicate
from repro.utils.counters import CostCounters

__all__ = ["ApproxJoin"]


class ApproxJoin(SetJoinAlgorithm):
    """Approximate self-join with a recall target; see the module doc.

    Args:
        target_recall: per-qualifying-pair surfacing probability the
            repetition count is sized for (guaranteed when the derived
            Jaccard floor is sound, best-effort otherwise).
        seed: root of all randomness; fixed seed ⇒ identical pairs.
        leaf_size: groups at most this large stop splitting and are
            brute-forced — the certainty fallback of the recall bound.
        max_depth: path-tree depth cap; deeper trees mean purer leaves
            but more repetitions for the same target.
        max_repetitions: hard expected-work bound. When the target is
            unreachable within it, the join runs the cap and flags
            ``approx_recall_capped`` in ``JoinResult.extra``.
        recall_sample: records sampled for the post-join recall
            estimate reported in ``JoinResult.extra`` (0 disables it;
            it is skipped automatically under a shard window, where a
            single worker only sees its slice of the pair set).
    """

    name = "approx"

    def __init__(
        self,
        target_recall: float = 0.9,
        seed: int = 0,
        leaf_size: int = 4,
        max_depth: int = 4,
        max_repetitions: int = 256,
        recall_sample: int = 12,
    ):
        if recall_sample < 0:
            raise ValueError(f"recall_sample must be >= 0, got {recall_sample}")
        self.target_recall = target_recall
        self.seed = int(seed)
        self.leaf_size = leaf_size
        self.max_depth = max_depth
        self.max_repetitions = max_repetitions
        self.recall_sample = recall_sample
        self._plan_snapshot: ApproxPlan | None = None

    def join(
        self,
        dataset: Dataset,
        predicate: SimilarityPredicate,
        context=None,
    ) -> JoinResult:
        """Run the approximate join and annotate ``result.extra``."""
        result = super().join(dataset, predicate, context=context)
        result.extra["approx_seed"] = self.seed
        plan = self._plan_snapshot
        if plan is not None:
            result.extra.update(plan.as_extra())
        sharded = self._shard_lo != 0 or self._shard_hi is not None
        if self.recall_sample and not sharded and not result.degraded and len(dataset):
            result.extra.update(
                estimate_recall(
                    dataset,
                    predicate,
                    result.pair_set(),
                    sample_size=self.recall_sample,
                    seed=self.seed,
                )
            )
        return result

    def _run(
        self, dataset: Dataset, bound: BoundPredicate, counters: CostCounters
    ) -> list[MatchPair]:
        self._plan_snapshot = None
        pairs: list[MatchPair] = []
        n = len(dataset)
        if n < 2:
            return pairs
        plan = plan_paths(
            bound,
            dataset,
            target_recall=self.target_recall,
            leaf_size=self.leaf_size,
            max_depth=self.max_depth,
            max_repetitions=self.max_repetitions,
        )
        self._plan_snapshot = plan
        hasher = PathHasher(self.seed)
        records = dataset.records
        leaves_of: list[list[list[int]]] = [[] for _ in range(n)]
        leaf_count = 0
        for rep in range(plan.repetitions):
            for leaf in build_leaves(
                records,
                rep,
                hasher,
                leaf_size=plan.leaf_size,
                max_depth=plan.depth,
                counters=counters,
                tick=lambda: self._tick(counters),
            ):
                leaf_count += 1
                # Leaf membership is the forest's resident state; count
                # it like index inserts so memory budgets apply.
                counters.index_entries += len(leaf)
                for rid in leaf:
                    leaves_of[rid].append(leaf)
        counters.extra["path_leaves"] = counters.extra.get("path_leaves", 0) + leaf_count
        for position, rid, replay in self._drive(range(n), counters, pairs):
            if replay:
                continue
            groups = leaves_of[rid]
            if not groups:
                continue
            counters.probes += 1
            candidates: dict[int, None] = {}
            enumerated = 0
            for leaf in groups:
                for sid in leaf:
                    if sid >= rid:  # leaves ascend; rid itself is a member
                        break
                    enumerated += 1
                    candidates[sid] = None
            # Distinct candidates are the pairs materialized; the raw
            # leaf co-member stream (duplicates across repetitions)
            # stays observable as path_enumerations, outside
            # total_work() — the accum_scans precedent: each accepted
            # pair is already counted once.
            counters.pairs_generated += len(candidates)
            counters.candidates_checked += len(candidates)
            if enumerated:
                extra = counters.extra
                extra["path_enumerations"] = (
                    extra.get("path_enumerations", 0) + enumerated
                )
            for sid in candidates:
                self._verify_pair(bound, sid, rid, counters, pairs)
        return pairs
