"""Per-predicate Jaccard floor: the bridge from §5 predicates to LSH.

MinHash collision probability between two records equals their *token
Jaccard similarity*, so sizing an LSH candidate generator for a recall
target needs one number per join: a lower bound on the Jaccard of any
pair that satisfies the predicate. This module derives that bound.

For unit-score predicates (overlap, unweighted Jaccard, Dice, the
q-gram count bound of edit distance, ...) the bound is *sound* and
follows from the monotone threshold alone: a qualifying pair with sizes
``(a, b)`` has intersection ``x >= t(a, b)``, and ``x / (a + b - x)``
is increasing in ``x``, so its Jaccard is at least
``t(a, b) / (a + b - t(a, b))``. Minimizing over the size pairs that
actually occur in the dataset (and are feasible, ``t <= min(a, b)``)
gives the floor. For unweighted Jaccard this recovers exactly the
predicate threshold ``t``; for T-overlap it is ``T / (a + b - T)`` at
the largest feasible sizes; for Dice ``d`` it is ``d / (2 - d)``.

Weighted predicates have no exact token-count bound; they either
declare a heuristic floor via
:meth:`BoundPredicate.approx_jaccard_floor` (TF-IDF cosine uses ``f**2``,
which is exact in the unweighted case) or fall back to a conservative
default. Heuristic floors keep the join *sound* (verification is still
exact) but make the recall target best-effort; the planner records
which case applied so results can say so.
"""

from __future__ import annotations

from repro.core.records import Dataset
from repro.predicates.base import WEIGHT_EPS, BoundPredicate

__all__ = ["DEFAULT_HEURISTIC_FLOOR", "MIN_FLOOR", "MAX_FLOOR", "pair_jaccard_floor"]

#: Clamp range for the derived floor. The lower clamp guards against
#: vacuous thresholds (t <= 0 admits disjoint pairs, which no LSH can
#: target); the upper clamp keeps the repetition sizing finite.
MIN_FLOOR = 0.02
MAX_FLOOR = 0.999

#: Fallback for weighted predicates that declare no heuristic floor.
DEFAULT_HEURISTIC_FLOOR = 0.15


def _clamp(value: float) -> float:
    return min(max(value, MIN_FLOOR), MAX_FLOOR)


def pair_jaccard_floor(bound: BoundPredicate, dataset: Dataset) -> tuple[float, bool]:
    """Lower-bound the token Jaccard of any qualifying pair.

    Returns ``(floor, sound)``. ``sound`` is True when the floor is a
    proven consequence of the predicate (unit scores, or a predicate
    override documented as exact); False marks a heuristic floor, under
    which ``target_recall`` is best-effort rather than guaranteed.
    """
    override = bound.approx_jaccard_floor()
    if override is not None:
        return _clamp(float(override)), False
    if not getattr(bound, "unit_scores", False):
        return _clamp(DEFAULT_HEURISTIC_FLOOR), False
    sizes = sorted({len(record) for record in dataset.records if record})
    if not sizes:
        return MAX_FLOOR, True
    floor = 1.0
    feasible = False
    for i, a in enumerate(sizes):
        for b in sizes[i:]:
            t = bound.threshold(float(a), float(b))
            if t > a + WEIGHT_EPS:  # a <= b, so min(a, b) == a
                continue  # no pair of these sizes can qualify
            feasible = True
            if t <= WEIGHT_EPS:
                floor = 0.0  # vacuous threshold: disjoint pairs qualify
            else:
                floor = min(floor, t / (a + b - t))
    if not feasible:
        # The predicate admits no pair at the observed sizes; the join
        # is empty whatever we do, so any floor is vacuously sound.
        return MAX_FLOOR, True
    return _clamp(floor), True
