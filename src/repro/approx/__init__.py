"""Approximate set-similarity join with a tunable recall target.

This package is the codebase's first *non-exact* execution path: a
chosen-path-style recursive LSH candidate generator in the spirit of
CPSJoin (Christiani, Pagh & Sivertsen, "Scalable and Robust Set
Similarity Join") layered in front of the exact §5 verifier the rest of
the repository already shares.

The contract is deliberately asymmetric:

* **Soundness is exact.** Every emitted pair went through
  :meth:`BoundPredicate.verify` — the same decision procedure every
  exact algorithm uses — so the output is always a *subset* of the
  exact join. There are no false positives, ever.
* **Completeness is probabilistic.** Candidate generation may miss
  qualifying pairs; the number of independent path repetitions is sized
  from ``target_recall`` so each qualifying pair is surfaced with at
  least that probability (see :mod:`repro.approx.plan` for the sizing
  rule and :mod:`repro.approx.floor` for the per-predicate Jaccard
  floor it rests on).
* **Determinism is total.** All randomness derives arithmetically from
  the ``seed`` knob — a fixed seed produces an identical pair set on
  every machine, worker count, and run.

Because candidates flow through the shared
:meth:`SetJoinAlgorithm._verify_pair` / :meth:`_drive` machinery, the
exact side's composition points all work unchanged: the bitmap
prefilter, merge backends, ``JoinContext`` deadlines / cancellation /
memory budgets / checkpoints, and ``parallel_join`` shard windows.
"""

from repro.approx.floor import pair_jaccard_floor
from repro.approx.join import ApproxJoin
from repro.approx.plan import ApproxPlan, plan_paths
from repro.approx.recall import estimate_recall

__all__ = [
    "ApproxJoin",
    "ApproxPlan",
    "estimate_recall",
    "pair_jaccard_floor",
    "plan_paths",
]
