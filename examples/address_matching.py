"""Matching dirty name/address records — 3-gram and edit-distance joins.

The paper's Address dataset use case: the same household appears in
several utility lists with typos and dropped fields. Letter 3-grams
absorb word-level noise that a word join would miss, and an
edit-distance join on the name fields catches misspelled names.

Run:  python examples/address_matching.py
"""

from repro import Dataset, JaccardPredicate, edit_distance_join, similarity_join
from repro.datagen import AddressGenerator
from repro.text import tokenize_qgrams

N_RECORDS = 600


def main() -> None:
    records = AddressGenerator(seed=11, duplicate_fraction=0.3).generate(N_RECORDS)
    texts = [record.text() for record in records]

    # --- whole-record join on 3-gram sets -------------------------------
    data = Dataset.from_texts(texts, tokenize_qgrams)
    print(f"3-gram corpus: {data}\n")
    result = similarity_join(data, JaccardPredicate(0.8), algorithm="probe-cluster")
    print(f"jaccard-on-3grams (f=0.8): {len(result.pairs)} matching pairs")
    for pair in result.sorted_pairs()[:3]:
        print(f"  similarity={pair.similarity:.2f}")
        print(f"    {texts[pair.rid_a][:80]}")
        print(f"    {texts[pair.rid_b][:80]}")
    print()

    # --- edit-distance join on the name fields --------------------------
    names = [record.name_text() for record in records]
    matches = edit_distance_join(names, k=2, algorithm="probe-count-optmerge")
    print(f"edit-distance-on-names (k=2): {len(matches.pairs)} pairs")
    shown = 0
    for pair in matches.sorted_pairs():
        if names[pair.rid_a] != names[pair.rid_b]:
            print(
                f"  distance={int(pair.similarity)}:"
                f" {names[pair.rid_a]!r} ~ {names[pair.rid_b]!r}"
            )
            shown += 1
            if shown == 5:
                break
    print()

    # --- combine: candidates from 3-grams, confirmation by names --------
    qgram_pairs = result.pair_set()
    name_pairs = matches.pair_set()
    confirmed = qgram_pairs & name_pairs
    print(
        f"pairs matching on BOTH full-record 3-grams and names:"
        f" {len(confirmed)} of {len(qgram_pairs)} 3-gram matches"
    )


if __name__ == "__main__":
    main()
