"""Joining under an index memory budget (ClusterMem, paper §4).

Sweeps the index budget from the full in-memory size down to 2% of it
and shows that the join output never changes while running time stays
within a small factor — the paper's Figure 11 claim ("even as the
amount of memory is reduced by a factor of fifty, running time stays
within a factor of 2.5").

Run:  python examples/limited_memory.py
"""

from repro import ClusterMemJoin, MemoryBudget, OverlapPredicate
from repro.datagen import citation_all_words

N_RECORDS = 1200
THRESHOLD = 15
FRACTIONS = [1.0, 0.5, 0.2, 0.1, 0.05, 0.02]


def main() -> None:
    data = citation_all_words(N_RECORDS, seed=3)
    full_index = data.total_word_occurrences()
    print(f"corpus: {data}")
    print(f"full record-level index: {full_index} word occurrences\n")
    print(f"{'budget':>8} {'entries':>9} {'clusters':>9} {'batches':>8}"
          f" {'pairs':>7} {'seconds':>8} {'vs full':>8}")

    baseline_seconds = None
    baseline_pairs = None
    for fraction in FRACTIONS:
        budget = MemoryBudget.fraction_of_full(data, fraction)
        algorithm = ClusterMemJoin(budget)
        result = algorithm.join(data, OverlapPredicate(THRESHOLD))
        if baseline_seconds is None:
            baseline_seconds = result.elapsed_seconds
            baseline_pairs = result.pair_set()
        assert result.pair_set() == baseline_pairs, "output must not change"
        ratio = result.elapsed_seconds / baseline_seconds
        print(
            f"{fraction:8.0%} {budget.max_index_entries:9d}"
            f" {result.counters.clusters_created:9d}"
            f" {result.counters.extra['batches']:8d}"
            f" {len(result.pairs):7d}"
            f" {result.elapsed_seconds:8.2f}"
            f" {ratio:7.2f}x"
        )
    print("\nsame pairs at every budget; only the work layout changes.")


if __name__ == "__main__":
    main()
