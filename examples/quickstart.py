"""Quickstart: exact similarity self-joins in a few lines.

Run:  python examples/quickstart.py
"""

from repro import Dataset, JaccardPredicate, OverlapPredicate, similarity_join
from repro.text import tokenize_words

TEXTS = [
    "efficient set joins on similarity predicates",
    "set joins on similarity predicates made efficient",
    "probe count algorithms for inverted index retrieval",
    "inverted index retrieval with probe count algorithms",
    "an entirely different record about cooking recipes",
]


def main() -> None:
    # 1. Tokenize the records into a Dataset (words here; q-grams also work).
    data = Dataset.from_texts(TEXTS, tokenize_words)
    print(f"dataset: {data}\n")

    # 2. Pick a predicate and an algorithm; every algorithm returns the
    #    exact same pairs — they differ only in how fast they get there.
    for predicate in (OverlapPredicate(4), JaccardPredicate(0.6)):
        result = similarity_join(data, predicate, algorithm="probe-cluster")
        print(f"{predicate.name} -> {len(result.pairs)} pairs")
        for pair in result.sorted_pairs():
            print(f"  ({pair.rid_a}, {pair.rid_b})  similarity={pair.similarity:.3f}")
            print(f"      {TEXTS[pair.rid_a]!r}")
            print(f"      {TEXTS[pair.rid_b]!r}")
        print()

    # 3. Results carry machine-independent work counters.
    result = similarity_join(data, OverlapPredicate(4), algorithm="probe-count-optmerge")
    print("work counters:", {k: v for k, v in result.counters.as_dict().items() if v})


if __name__ == "__main__":
    main()
