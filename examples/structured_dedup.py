"""Rule-based deduplication of structured records.

The paper's datasets are segmented records (citation: author / title /
year; address: names / address lines / PIN). Real deduplication
composes per-field conditions — this example declares "duplicate iff
the titles' word sets are highly similar AND the first author is within
edit distance 1", then inspects how each rule narrows the matches.

Run:  python examples/structured_dedup.py
"""

from repro import JaccardPredicate
from repro.datagen import CitationGenerator
from repro.dedup import EditDistanceRule, FieldRule, RuleBasedMatcher

N_RECORDS = 400


def main() -> None:
    citations = CitationGenerator(seed=33).generate(N_RECORDS)
    records = [
        {
            "first_author": citation.authors[0],
            "title": citation.title,
            "year": str(citation.year),
        }
        for citation in citations
    ]

    title_rule = FieldRule("title", JaccardPredicate(0.7))
    author_rule = EditDistanceRule("first_author", k=1)

    by_title = RuleBasedMatcher([title_rule]).match(records)
    by_author = RuleBasedMatcher([author_rule]).match(records)
    both = RuleBasedMatcher([title_rule, author_rule], combine="all").match(records)
    either = RuleBasedMatcher([title_rule, author_rule], combine="any").match(records)

    print(f"{N_RECORDS} structured citation records")
    print(f"  title jaccard >= 0.7          : {len(by_title.pairs):5d} pairs")
    print(f"  author edit distance <= 1    : {len(by_author.pairs):5d} pairs")
    print(f"  BOTH (conjunction)           : {len(both.pairs):5d} pairs")
    print(f"  EITHER (disjunction)         : {len(either.pairs):5d} pairs")

    groups = RuleBasedMatcher([title_rule, author_rule], combine="all").groups(records)
    print(f"\nduplicate groups under the conjunction: {len(groups)}")
    sample = groups[0]
    print(f"example group {sample}:")
    for rid in sample[:3]:
        print(f"  author={records[rid]['first_author']!r}")
        print(f"    title={records[rid]['title'][:64]!r}")


if __name__ == "__main__":
    main()
