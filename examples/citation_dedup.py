"""Deduplicating a citation corpus — the paper's motivating workload.

Generates a synthetic CiteSeer-style citation list (with injected
near-duplicate groups), finds duplicate pairs with two predicates, and
prints the duplicate clusters that Probe-Cluster discovered on the way.

Run:  python examples/citation_dedup.py
"""

from collections import defaultdict

from repro import (
    CosinePredicate,
    Dataset,
    OverlapPredicate,
    ProbeClusterJoin,
    similarity_join,
)
from repro.datagen import CitationGenerator
from repro.text import tokenize_words

N_RECORDS = 800


def main() -> None:
    records = CitationGenerator(seed=7).generate(N_RECORDS)
    texts = [record.text() for record in records]
    data = Dataset.from_texts(texts, tokenize_words)
    print(f"corpus: {data}\n")

    # --- T-overlap join: share at least 15 words -----------------------
    threshold = 15
    algorithm = ProbeClusterJoin()
    result = algorithm.join(data, OverlapPredicate(threshold))
    print(
        f"T-overlap (T={threshold}): {len(result.pairs)} duplicate pairs in"
        f" {result.elapsed_seconds:.2f}s"
        f" ({result.counters.clusters_created} clusters discovered)"
    )
    example = result.sorted_pairs()[0]
    print(f"  e.g. records {example.rid_a} / {example.rid_b}:")
    print(f"    {texts[example.rid_a][:90]}")
    print(f"    {texts[example.rid_b][:90]}\n")

    # --- duplicate groups via the online clustering --------------------
    groups = defaultdict(list)
    for rid, cid in algorithm.last_assignment.items():
        groups[cid].append(rid)
    dup_groups = sorted(
        (members for members in groups.values() if len(members) > 2),
        key=len,
        reverse=True,
    )
    print(f"clusters with >2 members: {len(dup_groups)}; largest groups:")
    for members in dup_groups[:3]:
        print(f"  group of {len(members)}: {sorted(members)[:8]}")
        print(f"    {texts[members[0]][:90]}")
    print()

    # --- cosine/TF-IDF join: weight rare words higher -------------------
    cosine = similarity_join(data, CosinePredicate(0.85), algorithm="probe-count-sort")
    print(
        f"cosine (f=0.85): {len(cosine.pairs)} pairs in"
        f" {cosine.elapsed_seconds:.2f}s"
    )
    print(
        "  TF-IDF weighting lets rare title words dominate, so fewer"
        " coincidental matches survive than under plain overlap."
    )


if __name__ == "__main__":
    main()
