"""Extensions tour: top-k most similar pairs and one-call deduplication.

Two additions the paper's framework makes easy:

* ``TopKJoin`` — the top-r similar-pairs problem from the paper's
  related work (§6), solved by ratcheting the join threshold up to the
  current k-th best similarity as the online probe runs.
* ``dedupe_texts`` — the data-cleaning workflow the paper motivates:
  join, then union-find the matched pairs into duplicate groups.

Run:  python examples/top_pairs_and_dedupe.py
"""

from repro import JaccardPredicate, TopKJoin, dedupe_texts
from repro.core.records import Dataset
from repro.datagen import CitationGenerator
from repro.text import tokenize_words

N_RECORDS = 500


def main() -> None:
    records = CitationGenerator(seed=21).generate(N_RECORDS)
    texts = [record.text() for record in records]
    data = Dataset.from_texts(texts, tokenize_words)

    # --- top-10 most similar pairs, no threshold guessing ---------------
    top = TopKJoin(10, JaccardPredicate, floor=0.3).join(data)
    print(f"top-10 most similar pairs (of {len(data)} records):")
    for pair in top.pairs[:5]:
        print(f"  jaccard={pair.similarity:.3f}  records {pair.rid_a}/{pair.rid_b}")
    print(
        f"  ... ratcheting verified only {top.counters.pairs_verified} candidate"
        f" pairs in {top.elapsed_seconds:.2f}s\n"
    )

    # --- one-call deduplication -----------------------------------------
    groups = dedupe_texts(texts, JaccardPredicate(0.7), tokenize_words)
    total_dups = sum(len(group) - 1 for group in groups)
    print(f"dedupe: {len(groups)} duplicate groups, {total_dups} redundant records")
    largest = max(groups, key=len)
    print(f"largest group ({len(largest)} records):")
    for rid in largest[:4]:
        print(f"  [{rid}] {texts[rid][:80]}")


if __name__ == "__main__":
    main()
