"""Tuning a dedup threshold against ground truth.

The synthetic generators label which records are true duplicates, so a
predicate's pairwise precision / recall / F1 can be measured directly —
the data-cleaning evaluation loop the paper's application area implies.
This example sweeps the Jaccard fraction and prints the tuning curve.

Run:  python examples/threshold_tuning.py
"""

from repro import Dataset, JaccardPredicate
from repro.datagen import CitationGenerator
from repro.evaluation import threshold_sweep
from repro.text import tokenize_words

N_RECORDS = 600
THRESHOLDS = [0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.25, 0.2]


def main() -> None:
    records, labels = CitationGenerator(seed=13).generate_labeled(N_RECORDS)
    data = Dataset.from_texts([record.text() for record in records], tokenize_words)
    print(f"corpus: {data}")
    print(f"{'f':>6} {'precision':>10} {'recall':>8} {'F1':>7}")

    sweep = threshold_sweep(data, labels, JaccardPredicate, THRESHOLDS)
    best_f, best_quality = max(sweep, key=lambda item: item[1].f1)
    for threshold, quality in sweep:
        marker = "  <-- best F1" if threshold == best_f else ""
        print(
            f"{threshold:6.2f} {quality.precision:10.3f} {quality.recall:8.3f}"
            f" {quality.f1:7.3f}{marker}"
        )
    print(
        f"\npick f={best_f:g}: precision {best_quality.precision:.1%},"
        f" recall {best_quality.recall:.1%}"
    )


if __name__ == "__main__":
    main()
