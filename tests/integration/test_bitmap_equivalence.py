"""Acceptance net for the bitmap candidate filter: zero pair drift.

The filter is a pure pruning layer — for every algorithm that can run
under :func:`parallel_join`, the filtered join must emit pair-for-pair
the same matches as the unfiltered join, both serially and with a
sharded 4-worker run (workers replay the reject decisions from their
own rebuilt signatures, so cross-process determinism is part of the
contract).
"""

import pytest

from repro import (
    JaccardPredicate,
    OverlapPredicate,
    parallel_join,
    similarity_join,
)
from repro.filters import BitmapFilterConfig
from repro.parallel import PARALLEL_ALGORITHMS
from tests.conftest import random_dataset

SUPPORTED = sorted(PARALLEL_ALGORITHMS)

PREDICATES = [OverlapPredicate(3), JaccardPredicate(0.6)]

#: Non-adaptive so the filter stays on for the whole run — the test
#: must exercise rejects everywhere, not the controller's off switch.
CONFIG = BitmapFilterConfig(width=64, adaptive=False)


@pytest.fixture(scope="module")
def corpus():
    return random_dataset(seed=1304, n_base=70, universe=40)


def _pairs(result):
    return sorted((p.rid_a, p.rid_b) for p in result.pairs)


class TestSerialEquivalence:
    @pytest.mark.parametrize("algorithm", SUPPORTED)
    @pytest.mark.parametrize("predicate", PREDICATES, ids=lambda p: p.name)
    def test_filtered_matches_unfiltered(self, corpus, algorithm, predicate):
        plain = similarity_join(corpus, predicate, algorithm=algorithm)
        filtered = similarity_join(
            corpus, predicate, algorithm=algorithm, bitmap_filter=CONFIG
        )
        assert _pairs(filtered) == _pairs(plain)
        assert filtered.counters.bitmap_checks > 0


class TestParallelEquivalence:
    @pytest.mark.parametrize("algorithm", SUPPORTED)
    def test_workers4_matches_serial_unfiltered(self, corpus, algorithm):
        predicate = OverlapPredicate(3)
        plain = similarity_join(corpus, predicate, algorithm=algorithm)
        sharded = parallel_join(
            corpus,
            predicate,
            algorithm=algorithm,
            workers=4,
            bitmap_filter=CONFIG,
        )
        assert _pairs(sharded) == _pairs(plain)
