"""Failure-injection and robustness tests.

Storage-layer corruption, hostile inputs, and resource-edge behaviour:
a production library must fail loudly and precisely, not silently
return wrong joins.
"""

import os

import pytest

from repro import (
    Dataset,
    JaccardPredicate,
    MemoryBudget,
    ClusterMemJoin,
    OverlapPredicate,
    similarity_join,
)
from repro.partition.pinfo import PartitionEntry, PartitionInfoStore
from repro.storage.record_store import DiskRecordStore
from tests.conftest import random_dataset


class TestCorruptedStorage:
    def test_pinfo_malformed_line(self, tmp_path):
        path = tmp_path / "pinfo.dat"
        path.write_text("1 2 3\nnot numbers at all\n")
        store = PartitionInfoStore.__new__(PartitionInfoStore)
        store.path = str(path)
        store._handle = None
        with pytest.raises(ValueError):
            list(store.scan())

    def test_pinfo_short_line(self, tmp_path):
        with pytest.raises(ValueError):
            PartitionEntry.from_line("1 2")

    def test_record_store_truncated_file(self, tmp_path):
        store = DiskRecordStore.from_records([(1, 2, 3), (4, 5)], str(tmp_path / "r.dat"))
        store.close()
        # Truncate the backing file behind the store's back.
        with open(store.path, "w", encoding="ascii") as handle:
            handle.write("1 2 3\n")
        store._handle = open(store.path, "r", encoding="ascii")
        assert store.fetch(0) == (1, 2, 3)
        # Fetching past the truncation yields an empty record rather
        # than garbage (offset points past EOF).
        assert store.fetch(1) == ()
        store.close()

    def test_record_store_non_numeric_content(self, tmp_path):
        path = tmp_path / "r.dat"
        path.write_text("boom\n")
        store = DiskRecordStore(str(path))
        store._offsets = [0]
        store._handle = open(path, "r", encoding="ascii")
        with pytest.raises(ValueError):
            store.fetch(0)
        store.close()


class TestHostileInputs:
    def test_records_with_empty_sets(self):
        data = Dataset([(), (1, 2, 3), (), (1, 2, 3)])
        result = similarity_join(data, OverlapPredicate(3), algorithm="probe-cluster")
        assert result.pair_set() == {(1, 3)}

    def test_all_empty_records(self):
        data = Dataset([(), (), ()])
        for algorithm in ("probe-count-optmerge", "probe-cluster"):
            result = similarity_join(data, OverlapPredicate(1), algorithm=algorithm)
            assert result.pairs == []

    def test_single_giant_record(self):
        data = Dataset([tuple(range(5000)), (1, 2, 3)])
        result = similarity_join(data, OverlapPredicate(3), algorithm="probe-count-sort")
        assert result.pair_set() == {(0, 1)}

    def test_huge_token_ids(self):
        data = Dataset([(10**15, 10**15 + 1), (10**15, 10**15 + 1)])
        result = similarity_join(data, OverlapPredicate(2), algorithm="probe-cluster")
        assert result.pair_set() == {(0, 1)}

    def test_unicode_text(self):
        from repro import dedupe_texts
        from repro.text.tokenizers import tokenize_qgrams

        texts = ["ज्ञानेश्वर पाटील पुणे", "ज्ञानेश्वर पाटिल पुणे", "mumbai office"]
        groups = dedupe_texts(texts, JaccardPredicate(0.5), tokenize_qgrams)
        assert groups == [[0, 1]]


class TestResourceEdges:
    def test_cluster_mem_minimal_budget(self):
        """Budget of a single word occurrence must still be exact."""
        data = random_dataset(seed=80, n_base=25)
        predicate = OverlapPredicate(4)
        truth = similarity_join(data, predicate, algorithm="naive").pair_set()
        algorithm = ClusterMemJoin(MemoryBudget(1))
        assert algorithm.join(data, predicate).pair_set() == truth

    def test_cluster_mem_budget_larger_than_needed(self):
        data = random_dataset(seed=81, n_base=25)
        predicate = OverlapPredicate(4)
        truth = similarity_join(data, predicate, algorithm="naive").pair_set()
        algorithm = ClusterMemJoin(MemoryBudget(10**9))
        result = algorithm.join(data, predicate)
        assert result.pair_set() == truth
        assert result.counters.extra["batches"] == 1

    def test_duplicate_records_en_masse(self):
        data = Dataset([(1, 2, 3, 4)] * 60)
        result = similarity_join(data, JaccardPredicate(1.0), algorithm="probe-cluster")
        assert len(result.pairs) == 60 * 59 // 2
