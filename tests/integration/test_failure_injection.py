"""Failure-injection and robustness tests.

Storage-layer corruption, hostile inputs, and resource-edge behaviour:
a production library must fail loudly and precisely, not silently
return wrong joins.
"""

import os

import pytest

from repro import (
    ConcurrentMutation,
    Dataset,
    JaccardPredicate,
    JoinContext,
    MemoryBudget,
    ClusterMemJoin,
    OverlapPredicate,
    SimilarityIndex,
    SnapshotCorrupted,
    SnapshotEncodingError,
    similarity_join,
)
from repro.partition.pinfo import PartitionEntry, PartitionInfoStore
from repro.runtime.faults import FailingFilesystem, InjectedFault
from repro.storage.record_store import DiskRecordStore
from tests.conftest import random_dataset


class TestCorruptedStorage:
    def test_pinfo_malformed_line(self, tmp_path):
        path = tmp_path / "pinfo.dat"
        path.write_text("1 2 3\nnot numbers at all\n")
        store = PartitionInfoStore.__new__(PartitionInfoStore)
        store.path = str(path)
        store._handle = None
        with pytest.raises(ValueError):
            list(store.scan())

    def test_pinfo_short_line(self, tmp_path):
        with pytest.raises(ValueError):
            PartitionEntry.from_line("1 2")

    def test_record_store_truncated_file(self, tmp_path):
        store = DiskRecordStore.from_records([(1, 2, 3), (4, 5)], str(tmp_path / "r.dat"))
        store.close()
        # Truncate the backing file behind the store's back.
        with open(store.path, "w", encoding="ascii") as handle:
            handle.write("1 2 3\n")
        store._handle = open(store.path, "r", encoding="ascii")
        assert store.fetch(0) == (1, 2, 3)
        # Fetching past the truncation yields an empty record rather
        # than garbage (offset points past EOF).
        assert store.fetch(1) == ()
        store.close()

    def test_record_store_non_numeric_content(self, tmp_path):
        path = tmp_path / "r.dat"
        path.write_text("boom\n")
        store = DiskRecordStore(str(path))
        store._offsets = [0]
        store._handle = open(path, "r", encoding="ascii")
        with pytest.raises(ValueError):
            store.fetch(0)
        store.close()


class TestHostileInputs:
    def test_records_with_empty_sets(self):
        data = Dataset([(), (1, 2, 3), (), (1, 2, 3)])
        result = similarity_join(data, OverlapPredicate(3), algorithm="probe-cluster")
        assert result.pair_set() == {(1, 3)}

    def test_all_empty_records(self):
        data = Dataset([(), (), ()])
        for algorithm in ("probe-count-optmerge", "probe-cluster"):
            result = similarity_join(data, OverlapPredicate(1), algorithm=algorithm)
            assert result.pairs == []

    def test_single_giant_record(self):
        data = Dataset([tuple(range(5000)), (1, 2, 3)])
        result = similarity_join(data, OverlapPredicate(3), algorithm="probe-count-sort")
        assert result.pair_set() == {(0, 1)}

    def test_huge_token_ids(self):
        data = Dataset([(10**15, 10**15 + 1), (10**15, 10**15 + 1)])
        result = similarity_join(data, OverlapPredicate(2), algorithm="probe-cluster")
        assert result.pair_set() == {(0, 1)}

    def test_unicode_text(self):
        from repro import dedupe_texts
        from repro.text.tokenizers import tokenize_qgrams

        texts = ["ज्ञानेश्वर पाटील पुणे", "ज्ञानेश्वर पाटिल पुणे", "mumbai office"]
        groups = dedupe_texts(texts, JaccardPredicate(0.5), tokenize_qgrams)
        assert groups == [[0, 1]]


class TestResourceEdges:
    def test_cluster_mem_minimal_budget(self):
        """Budget of a single word occurrence must still be exact."""
        data = random_dataset(seed=80, n_base=25)
        predicate = OverlapPredicate(4)
        truth = similarity_join(data, predicate, algorithm="naive").pair_set()
        algorithm = ClusterMemJoin(MemoryBudget(1))
        assert algorithm.join(data, predicate).pair_set() == truth

    def test_cluster_mem_budget_larger_than_needed(self):
        data = random_dataset(seed=81, n_base=25)
        predicate = OverlapPredicate(4)
        truth = similarity_join(data, predicate, algorithm="naive").pair_set()
        algorithm = ClusterMemJoin(MemoryBudget(10**9))
        result = algorithm.join(data, predicate)
        assert result.pair_set() == truth
        assert result.counters.extra["batches"] == 1

    def test_duplicate_records_en_masse(self):
        data = Dataset([(1, 2, 3, 4)] * 60)
        result = similarity_join(data, JaccardPredicate(1.0), algorithm="probe-cluster")
        assert len(result.pairs) == 60 * 59 // 2

    def test_memory_budget_degradation_stays_exact(self):
        data = random_dataset(seed=82, n_base=30)
        predicate = OverlapPredicate(3)
        truth = similarity_join(data, predicate, algorithm="naive").pair_set()
        result = similarity_join(
            data, predicate, context=JoinContext(memory_budget_entries=25)
        )
        assert result.degraded
        assert result.pair_set() == truth


def _service(n=8):
    service = SimilarityIndex(OverlapPredicate(2))
    for i in range(n):
        service.add([f"w{i}", f"w{i + 1}", f"w{i + 2}"])
    return service


class TestCrashSafePersistence:
    """Acceptance: a crash during SimilarityIndex.save() never leaves an
    unloadable snapshot."""

    @pytest.mark.parametrize("operation", ["open", "write", "fsync", "replace"])
    @pytest.mark.parametrize("fail_at_call", [1, 2])
    def test_crash_mid_save_keeps_previous_snapshot_loadable(
        self, tmp_path, operation, fail_at_call
    ):
        path = str(tmp_path / "index.snap")
        service = _service()
        service.save(path)
        service.add(["extra", "record", "here"])
        fs = FailingFilesystem(fail_operation=operation, fail_at_call=fail_at_call)
        try:
            service.save(path, fs=fs)
        except InjectedFault:
            pass  # simulated crash; fall through to the load below
        # Whether or not the write survived, the snapshot must load.
        loaded = SimilarityIndex.load(path, OverlapPredicate(2))
        assert len(loaded) in (len(service) - 1, len(service))
        assert not os.path.exists(path + ".tmp")

    def test_crash_mid_save_leaves_service_usable(self, tmp_path):
        path = str(tmp_path / "index.snap")
        service = _service()
        with pytest.raises(InjectedFault):
            service.save(path, fs=FailingFilesystem(fail_operation="fsync"))
        # The failed save must release the re-entrancy guard.
        service.add(["after", "the", "crash"])
        service.save(path)
        assert len(SimilarityIndex.load(path, OverlapPredicate(2))) == len(service)

    def test_corrupted_snapshot_is_rejected_not_misloaded(self, tmp_path):
        path = str(tmp_path / "index.snap")
        _service().save(path)
        with open(path, "r+") as handle:
            raw = handle.read()
            handle.seek(0)
            handle.write(raw.replace("w1", "wX", 1))
        with pytest.raises(SnapshotCorrupted):
            SimilarityIndex.load(path, OverlapPredicate(2))

    def test_legacy_plain_json_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "index.json")
        with open(path, "w") as handle:
            handle.write('{"token_lists": [["a"]], "payloads": [["a"]]}')
        with pytest.raises(SnapshotCorrupted):
            SimilarityIndex.load(path, OverlapPredicate(2))


class _ReprCodec:
    """Round-trips the non-JSON payloads used in the tests below."""

    def encode(self, payload) -> str:
        return repr(payload)

    def decode(self, text: str):
        return eval(text)  # noqa: S307 — test-only codec


class TestPayloadEncoding:
    def test_non_json_payload_raises_instead_of_str_coercion(self, tmp_path):
        service = SimilarityIndex(OverlapPredicate(1))
        service.add(["a", "b"], payload={"ok": "json"})
        service.add(["b", "c"], payload={1, 2, 3})  # sets are not JSON
        with pytest.raises(SnapshotEncodingError, match="record 1"):
            service.save(str(tmp_path / "index.snap"))

    def test_codec_round_trips_non_json_payloads(self, tmp_path):
        path = str(tmp_path / "index.snap")
        service = SimilarityIndex(OverlapPredicate(1))
        service.add(["a", "b"], payload={"ok": "json"})
        service.add(["b", "c"], payload={1, 2, 3})
        service.save(path, codec=_ReprCodec())
        loaded = SimilarityIndex.load(path, OverlapPredicate(1), codec=_ReprCodec())
        assert loaded.payload(0) == {"ok": "json"}
        assert loaded.payload(1) == {1, 2, 3}

    def test_codec_snapshot_requires_codec_at_load(self, tmp_path):
        path = str(tmp_path / "index.snap")
        service = SimilarityIndex(OverlapPredicate(1))
        service.add(["a", "b"], payload={1, 2})
        service.save(path, codec=_ReprCodec())
        with pytest.raises(SnapshotEncodingError, match="codec"):
            SimilarityIndex.load(path, OverlapPredicate(1))


class TestReentrancyGuard:
    def test_tokenizer_calling_back_into_the_service_is_refused(self):
        service = SimilarityIndex(
            OverlapPredicate(1), tokenizer=lambda text: _reenter(service, text)
        )
        service.add(["seed", "tokens"])  # list input skips the tokenizer
        with pytest.raises(ConcurrentMutation) as err:
            service.query("probe text")
        assert "query" in str(err.value)

    def test_guard_releases_after_refusal(self):
        service = SimilarityIndex(
            OverlapPredicate(1), tokenizer=lambda text: _reenter(service, text)
        )
        with pytest.raises(ConcurrentMutation):
            service.add("re-entrant add")
        rid = service.add(["plain", "tokens"])  # guard released
        assert rid == 0


def _reenter(service, text):
    service.query(["anything"])
    return text.split()
