"""The master invariant: every algorithm x every predicate == NaiveJoin.

This is the end-to-end correctness net of the whole reproduction.
"""

import pytest

from repro import (
    ClusterMemJoin,
    CosinePredicate,
    DicePredicate,
    JaccardPredicate,
    MemoryBudget,
    NaiveJoin,
    OverlapCoefficientPredicate,
    OverlapPredicate,
    WeightedOverlapPredicate,
    similarity_join,
)
from tests.conftest import random_dataset

PREDICATES = [
    OverlapPredicate(3),
    OverlapPredicate(6),
    WeightedOverlapPredicate(4.0),
    JaccardPredicate(0.5),
    JaccardPredicate(0.8),
    CosinePredicate(0.7),
    DicePredicate(0.7),
    OverlapCoefficientPredicate(0.8),
]

ALL_ALGORITHMS = [
    "probe-count",
    "probe-count-stopwords",
    "probe-count-optmerge",
    "probe-count-online",
    "probe-count-sort",
    "pair-count",
    "pair-count-optmerge",
    "probe-cluster",
]

WORD_GROUP_SAFE = [p for p in PREDICATES if not p.name.startswith("cosine")]


@pytest.fixture(scope="module")
def corpus():
    return random_dataset(seed=77, n_base=80, universe=45)


@pytest.fixture(scope="module")
def truths(corpus):
    return {
        predicate.name: NaiveJoin().join(corpus, predicate).pair_set()
        for predicate in PREDICATES
    }


class TestEverythingAgainstNaive:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    @pytest.mark.parametrize("predicate", PREDICATES, ids=lambda p: p.name)
    def test_index_algorithms(self, corpus, truths, algorithm, predicate):
        got = similarity_join(corpus, predicate, algorithm=algorithm).pair_set()
        assert got == truths[predicate.name]

    @pytest.mark.parametrize("algorithm", ["word-groups", "word-groups-optmerge"])
    @pytest.mark.parametrize("predicate", WORD_GROUP_SAFE, ids=lambda p: p.name)
    def test_word_groups(self, corpus, truths, algorithm, predicate):
        got = similarity_join(corpus, predicate, algorithm=algorithm).pair_set()
        assert got == truths[predicate.name]

    @pytest.mark.parametrize("fraction", [1.0, 0.3, 0.05])
    @pytest.mark.parametrize("predicate", PREDICATES, ids=lambda p: p.name)
    def test_cluster_mem(self, corpus, truths, fraction, predicate):
        algorithm = ClusterMemJoin(MemoryBudget.fraction_of_full(corpus, fraction))
        got = algorithm.join(corpus, predicate).pair_set()
        assert got == truths[predicate.name]


class TestSimilarityValuesAgree:
    """Not just the pair sets: the reported similarity values match."""

    @pytest.mark.parametrize(
        "algorithm", ["probe-count-optmerge", "probe-cluster", "pair-count-optmerge"]
    )
    def test_jaccard_values(self, corpus, algorithm):
        predicate = JaccardPredicate(0.6)
        truth = {
            (p.rid_a, p.rid_b): p.similarity
            for p in NaiveJoin().join(corpus, predicate).pairs
        }
        got = similarity_join(corpus, predicate, algorithm=algorithm)
        for pair in got.pairs:
            assert abs(pair.similarity - truth[(pair.rid_a, pair.rid_b)]) < 1e-12


class TestRealisticCorpora:
    """Equivalence holds on the synthetic paper-shaped datasets too."""

    @pytest.mark.parametrize("algorithm", ["probe-count-optmerge", "probe-cluster"])
    def test_citation_words(self, algorithm):
        from repro.datagen import citation_all_words

        data = citation_all_words(150, seed=5)
        predicate = OverlapPredicate(15)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert similarity_join(data, predicate, algorithm=algorithm).pair_set() == truth

    def test_address_3grams_cluster_mem(self):
        from repro.datagen import address_all_3grams

        data = address_all_3grams(120, seed=6)
        predicate = JaccardPredicate(0.7)
        truth = NaiveJoin().join(data, predicate).pair_set()
        algorithm = ClusterMemJoin(MemoryBudget.fraction_of_full(data, 0.1))
        assert algorithm.join(data, predicate).pair_set() == truth
