"""Integration tests for the §5.3 partition-then-join evaluation path."""

import pytest

from repro import (
    JaccardPredicate,
    NaiveJoin,
    OverlapPredicate,
    ProbeCountJoin,
)
from repro.partition.bandjoin import partitioned_band_join
from tests.conftest import random_dataset


class TestPartitionedBandJoin:
    @pytest.mark.parametrize("strategy", ["simple", "greedy", "optimal"])
    def test_matches_direct_join(self, strategy):
        data = random_dataset(seed=33)
        predicate = JaccardPredicate(0.6)
        truth = NaiveJoin().join(data, predicate).pair_set()
        result = partitioned_band_join(
            data, predicate, ProbeCountJoin(variant="optmerge"), strategy=strategy
        )
        assert result.pair_set() == truth

    def test_requires_band_filter(self):
        data = random_dataset(seed=34)
        with pytest.raises(ValueError):
            partitioned_band_join(data, OverlapPredicate(3), ProbeCountJoin())

    def test_unknown_strategy(self):
        data = random_dataset(seed=34)
        with pytest.raises(ValueError):
            partitioned_band_join(
                data, JaccardPredicate(0.5), ProbeCountJoin(), strategy="psychic"
            )

    def test_counters_aggregate_partitions(self):
        data = random_dataset(seed=35)
        predicate = JaccardPredicate(0.7)
        result = partitioned_band_join(data, predicate, ProbeCountJoin())
        assert result.counters.extra["partitions"] >= 1
        assert result.counters.pairs_output == len(result.pairs)

    def test_no_duplicate_pairs_across_overlapping_partitions(self):
        data = random_dataset(seed=36)
        predicate = JaccardPredicate(0.5)
        result = partitioned_band_join(data, predicate, ProbeCountJoin(), "simple")
        assert len(result.pairs) == len(result.pair_set())

    def test_edit_distance_band_partitioning(self):
        from repro.predicates.edit_distance import EditDistancePredicate, qgram_dataset
        from tests.conftest import random_strings

        strings = [s for s in random_strings(seed=37, n=30, max_len=12) if len(s) >= 6]
        data = qgram_dataset(strings)
        predicate = EditDistancePredicate(k=1)
        truth = NaiveJoin().join(data, predicate).pair_set()
        result = partitioned_band_join(data, predicate, ProbeCountJoin(), "greedy")
        assert result.pair_set() == truth
