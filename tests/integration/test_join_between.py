"""Integration tests for non-self joins (R join S)."""

import pytest

from repro import (
    Dataset,
    JaccardPredicate,
    OverlapPredicate,
    ProbeClusterJoin,
    ProbeCountJoin,
)


@pytest.fixture
def sides():
    vocab: dict = {}
    left = Dataset.from_token_lists(
        [["a", "b", "c"], ["x", "y"], ["a", "b", "q"]], vocabulary=vocab
    )
    right = Dataset.from_token_lists(
        [["a", "b", "c", "d"], ["x", "y", "z"], ["m", "n"]], vocabulary=vocab
    )
    return left, right


class TestJoinBetween:
    def test_overlap(self, sides):
        left, right = sides
        result = ProbeCountJoin().join_between(left, right, OverlapPredicate(2))
        assert result.pair_set() == {(0, 0), (1, 1), (2, 0)}

    def test_jaccard(self, sides):
        left, right = sides
        result = ProbeCountJoin().join_between(left, right, JaccardPredicate(0.6))
        assert result.pair_set() == {(0, 0), (1, 1)}

    def test_pairs_reference_each_side(self, sides):
        left, right = sides
        result = ProbeCountJoin().join_between(left, right, OverlapPredicate(2))
        for pair in result.pairs:
            assert 0 <= pair.rid_a < len(left)
            assert 0 <= pair.rid_b < len(right)

    def test_mismatched_vocabulary_rejected(self):
        left = Dataset.from_token_lists([["a"]])
        right = Dataset.from_token_lists([["a"]])
        with pytest.raises(ValueError):
            ProbeCountJoin().join_between(left, right, OverlapPredicate(1))

    def test_matches_brute_force(self):
        import random

        rng = random.Random(55)
        vocab: dict = {}
        left_tokens = [
            [f"w{t}" for t in rng.sample(range(30), rng.randint(2, 8))] for _ in range(40)
        ]
        right_tokens = [
            [f"w{t}" for t in rng.sample(range(30), rng.randint(2, 8))] for _ in range(40)
        ]
        left = Dataset.from_token_lists(left_tokens, vocabulary=vocab)
        right = Dataset.from_token_lists(right_tokens, vocabulary=vocab)
        predicate = OverlapPredicate(3)
        expected = set()
        for i, lrec in enumerate(left.records):
            for j, rrec in enumerate(right.records):
                if len(set(lrec) & set(rrec)) >= 3:
                    expected.add((i, j))
        result = ProbeClusterJoin().join_between(left, right, predicate)
        assert result.pair_set() == expected

    def test_empty_sides(self):
        vocab: dict = {}
        left = Dataset.from_token_lists([], vocabulary=vocab)
        right = Dataset.from_token_lists([["a"]], vocabulary=vocab)
        result = ProbeCountJoin().join_between(left, right, OverlapPredicate(1))
        assert result.pairs == []

    def test_algorithm_name_tagged(self, sides):
        left, right = sides
        result = ProbeCountJoin().join_between(left, right, OverlapPredicate(2))
        assert result.algorithm.endswith("/between")
