"""Cross-process stability of the pinned benchmark datasets.

The parallel join engine rebuilds nothing in workers — the dataset is
forked/pickled from the parent — but the *benchmark harness* builds
datasets independently in whatever process runs it, and its numbers are
only comparable across machines and CI runs if generation is a pure
function of ``(builder, n, BENCHMARK_SEED)``. The classic way this
breaks in Python is hash randomization leaking into iteration order, so
the tests below fingerprint the datasets under different
``PYTHONHASHSEED`` values and in fresh subprocesses.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")

_FINGERPRINT_SNIPPET = (
    "import json, sys\n"
    "from harness import dataset_fingerprints\n"
    "print(json.dumps(dataset_fingerprints(n=200)))\n"
)


def _fingerprints_in_subprocess(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), BENCH_DIR]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    output = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SNIPPET],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=120,
    ).stdout
    return json.loads(output)


class TestBenchmarkDatasetStability:
    def test_fingerprints_stable_across_hash_seeds(self):
        """PYTHONHASHSEED must not influence dataset content."""
        baseline = _fingerprints_in_subprocess("0")
        assert set(baseline) == {
            "address-3grams",
            "address-names",
            "citation-3grams",
            "citation-words",
        }
        assert _fingerprints_in_subprocess("12345") == baseline

    def test_fingerprints_match_current_process(self):
        """A fresh interpreter agrees with this (pytest) process."""
        sys.path.insert(0, BENCH_DIR)
        try:
            from harness import dataset_fingerprints
        finally:
            sys.path.remove(BENCH_DIR)
        assert dataset_fingerprints(n=200) == _fingerprints_in_subprocess("random")

    def test_builders_are_seed_stable_within_process(self):
        """Clearing the lru_cache and rebuilding yields identical data."""
        sys.path.insert(0, BENCH_DIR)
        try:
            import harness
        finally:
            sys.path.remove(BENCH_DIR)
        from repro.runtime.checkpoint import dataset_fingerprint

        before = {
            name: dataset_fingerprint(builder(150))
            for name, builder in harness.DATASET_BUILDERS.items()
        }
        for builder in harness.DATASET_BUILDERS.values():
            builder.cache_clear()
        after = {
            name: dataset_fingerprint(builder(150))
            for name, builder in harness.DATASET_BUILDERS.items()
        }
        assert before == after

    def test_dataset_by_name_rejects_unknown(self):
        sys.path.insert(0, BENCH_DIR)
        try:
            from harness import dataset_by_name
        finally:
            sys.path.remove(BENCH_DIR)
        try:
            dataset_by_name("no-such-dataset", 10)
        except ValueError as err:
            assert "no-such-dataset" in str(err)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")
