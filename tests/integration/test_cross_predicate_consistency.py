"""Cross-predicate consistency checks.

Relations that must hold *between* predicates — a different angle on
correctness than per-predicate equivalence with the naive join.
"""

import pytest

from repro import (
    Dataset,
    DicePredicate,
    JaccardPredicate,
    OverlapCoefficientPredicate,
    OverlapPredicate,
    similarity_join,
)
from repro.predicates.hamming import HammingPredicate
from tests.conftest import random_dataset


@pytest.fixture(scope="module")
def data():
    return random_dataset(seed=101)


class TestPredicateRelations:
    def test_jaccard_implies_dice(self, data):
        """J >= f implies Dice >= 2f/(1+f) > f: jaccard pairs ⊆ dice pairs."""
        f = 0.6
        jaccard = similarity_join(data, JaccardPredicate(f), algorithm="probe-count-sort")
        dice = similarity_join(data, DicePredicate(f), algorithm="probe-count-sort")
        assert jaccard.pair_set() <= dice.pair_set()

    def test_dice_implies_overlap_coefficient(self, data):
        f = 0.7
        dice = similarity_join(data, DicePredicate(f), algorithm="probe-count-sort")
        coefficient = similarity_join(
            data, OverlapCoefficientPredicate(f), algorithm="probe-count-sort"
        )
        assert dice.pair_set() <= coefficient.pair_set()

    def test_threshold_monotonicity_overlap(self, data):
        low = similarity_join(data, OverlapPredicate(3), algorithm="probe-count-sort")
        high = similarity_join(data, OverlapPredicate(5), algorithm="probe-count-sort")
        assert high.pair_set() <= low.pair_set()

    def test_threshold_monotonicity_jaccard(self, data):
        low = similarity_join(data, JaccardPredicate(0.5), algorithm="probe-count-sort")
        high = similarity_join(data, JaccardPredicate(0.8), algorithm="probe-count-sort")
        assert high.pair_set() <= low.pair_set()

    def test_hamming_zero_equals_jaccard_one(self, data):
        from repro.core.join import hamming_join

        identical = similarity_join(data, JaccardPredicate(1.0), algorithm="probe-count-sort")
        hamming = hamming_join(data, 0, algorithm="probe-count-sort")
        assert hamming.pair_set() == identical.pair_set()

    def test_jaccard_similarity_consistent_with_overlap(self, data):
        """For every jaccard pair, |r∩s|/|r∪s| recomputed from overlap
        similarity matches the reported jaccard value."""
        result = similarity_join(data, JaccardPredicate(0.6), algorithm="probe-count-sort")
        for pair in result.pairs:
            r = set(data[pair.rid_a])
            s = set(data[pair.rid_b])
            assert pair.similarity == pytest.approx(len(r & s) / len(r | s))


class TestScaleInvariants:
    def test_subset_results_are_subsets(self):
        """Joining the first half of a dataset yields exactly the pairs
        of the full join restricted to those rids (self-join locality)."""
        full_data = random_dataset(seed=102)
        half = len(full_data) // 2
        half_data = full_data.head(half)
        predicate = OverlapPredicate(4)
        full = similarity_join(full_data, predicate, algorithm="probe-count-sort")
        part = similarity_join(half_data, predicate, algorithm="probe-count-sort")
        restricted = {
            (a, b) for a, b in full.pair_set() if a < half and b < half
        }
        assert part.pair_set() == restricted

    def test_permutation_invariance(self):
        """Permuting records permutes the pairs, nothing else."""
        data = random_dataset(seed=103)
        n = len(data)
        permutation = list(reversed(range(n)))
        permuted = data.reorder(permutation)
        predicate = JaccardPredicate(0.6)
        original = similarity_join(data, predicate, algorithm="probe-cluster").pair_set()
        mapped_back = set()
        for a, b in similarity_join(permuted, predicate, algorithm="probe-cluster").pair_set():
            old_a, old_b = permutation[a], permutation[b]
            mapped_back.add((min(old_a, old_b), max(old_a, old_b)))
        assert mapped_back == original
