"""Smoke tests: every example script runs end to end.

Module-level size constants are shrunk before calling main() so the
suite stays fast; the examples' own defaults are exercised manually /
in benchmarks.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def load_example(name: str):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "jaccard" in out
        assert "work counters" in out

    def test_citation_dedup(self, capsys):
        module = load_example("citation_dedup")
        module.N_RECORDS = 150
        module.main()
        out = capsys.readouterr().out
        assert "duplicate pairs" in out
        assert "cosine" in out

    def test_address_matching(self, capsys):
        module = load_example("address_matching")
        module.N_RECORDS = 120
        module.main()
        out = capsys.readouterr().out
        assert "jaccard-on-3grams" in out
        assert "edit-distance-on-names" in out

    def test_limited_memory(self, capsys):
        module = load_example("limited_memory")
        module.N_RECORDS = 300
        module.FRACTIONS = [1.0, 0.2, 0.05]
        module.main()
        out = capsys.readouterr().out
        assert "same pairs at every budget" in out

    def test_structured_dedup(self, capsys):
        module = load_example("structured_dedup")
        module.N_RECORDS = 120
        module.main()
        out = capsys.readouterr().out
        assert "conjunction" in out
        assert "duplicate groups" in out

    def test_top_pairs_and_dedupe(self, capsys):
        module = load_example("top_pairs_and_dedupe")
        module.N_RECORDS = 150
        module.main()
        out = capsys.readouterr().out
        assert "top-10 most similar pairs" in out
        assert "duplicate groups" in out

    def test_threshold_tuning(self, capsys):
        module = load_example("threshold_tuning")
        module.N_RECORDS = 150
        module.THRESHOLDS = [0.9, 0.6, 0.3]
        module.main()
        out = capsys.readouterr().out
        assert "best F1" in out
        assert "precision" in out

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "citation_dedup",
            "address_matching",
            "limited_memory",
            "top_pairs_and_dedupe",
            "structured_dedup",
            "threshold_tuning",
        ],
    )
    def test_examples_have_main(self, name):
        module = load_example(name)
        assert callable(module.main)
