"""Acceptance: a join killed mid-run and relaunched with the same
checkpoint directory produces the exact pair set of an uninterrupted
run — for every checkpointable algorithm, including the three the issue
names (probe-count, probe-cluster, cluster-mem)."""

import os

import pytest

from repro import (
    JoinCancelled,
    JoinCheckpointer,
    JoinContext,
    JoinTimeout,
    MemoryBudget,
    OverlapPredicate,
    make_algorithm,
)
from repro.runtime.errors import CheckpointMismatch
from repro.runtime.faults import CountdownCancellation, FakeClock
from tests.conftest import random_dataset

PREDICATE = OverlapPredicate(3)

#: Algorithms whose pair-emitting scan runs through the shared driver,
#: each with a kill point (token observations, as a function of the
#: record count) landing a few records into that scan: past any
#: index-build ticks (which don't checkpoint), before the scan ends.
RESUMABLE = {
    "naive": lambda n: 15,  # single driven scan
    "probe-count": lambda n: n + 15,  # n build ticks, then driven probes
    "probe-count-optmerge": lambda n: n + 15,
    "probe-count-stopwords": lambda n: n + 15,
    "probe-count-sort": lambda n: 15,  # single driven pass
    "probe-count-online": lambda n: 15,
    "probe-cluster": lambda n: 15,
    "prefix-filter": lambda n: 15,  # single driven pass (probe + insert)
    "positional-filter": lambda n: 15,
    "cluster-mem": lambda n: n + 20,  # n phase-1 ticks, then mid-phase-2
    # The seeded path-forest build ticks once per split group (~2030
    # observations on this pinned corpus under the default plan) before
    # the driven scan starts; the constant lands the kill a few records
    # into the scan. Rebuilding the forest on resume is deterministic
    # (same seed), so replayed positions see identical candidates.
    "approx": lambda n: 2030 + 15,
}


def _make(name):
    if name == "cluster-mem":
        return make_algorithm(name, budget=MemoryBudget(64))
    return make_algorithm(name)


def _data(seed=71):
    return random_dataset(seed=seed, n_base=40)


def _kill_then_resume(name, directory, *, data=None):
    """One interrupted run, then one clean resume; returns the result."""
    data = data if data is not None else _data()
    killed = JoinContext(
        cancel_token=CountdownCancellation(after_checks=RESUMABLE[name](len(data))),
        checkpointer=JoinCheckpointer(directory, interval_records=7),
    )
    with pytest.raises(JoinCancelled):
        _make(name).join(data, PREDICATE, context=killed)
    state = JoinCheckpointer(directory).load()
    assert state is not None and state.position >= 0, (
        f"{name}: no checkpoint flushed before dying"
    )
    resume = JoinContext(
        checkpointer=JoinCheckpointer(directory, interval_records=7)
    )
    return _make(name).join(data, PREDICATE, context=resume)


class TestKillAndResume:
    @pytest.mark.parametrize("name", sorted(RESUMABLE))
    def test_resumed_pairs_equal_uninterrupted(self, tmp_path, name):
        data = _data()
        truth = _make(name).join(data, PREDICATE)
        resumed = _kill_then_resume(name, str(tmp_path), data=data)
        assert resumed.pair_set() == truth.pair_set()
        # Replay must not re-emit checkpointed pairs.
        assert len(resumed.pairs) == len(truth.pairs)

    @pytest.mark.parametrize("name", sorted(RESUMABLE))
    def test_checkpoint_cleared_after_success(self, tmp_path, name):
        ckpt = JoinCheckpointer(str(tmp_path))
        _kill_then_resume(name, str(tmp_path))
        assert not os.path.exists(ckpt.path)

    def test_deadline_expiry_is_resumable_too(self, tmp_path):
        data = _data(seed=72)
        truth = _make("probe-count").join(data, PREDICATE)
        killed = JoinContext(
            # One clock read per tick: expires ~10 records into the
            # driven probe scan, past the len(data) index-build ticks.
            deadline_seconds=float(len(data) + 10),
            clock=FakeClock(auto_advance=1.0),
            checkpointer=JoinCheckpointer(str(tmp_path), interval_records=7),
        )
        with pytest.raises(JoinTimeout):
            _make("probe-count").join(data, PREDICATE, context=killed)
        assert JoinCheckpointer(str(tmp_path)).load().position >= 0
        resume = JoinContext(checkpointer=JoinCheckpointer(str(tmp_path)))
        resumed = _make("probe-count").join(data, PREDICATE, context=resume)
        assert resumed.pair_set() == truth.pair_set()

    def test_double_kill_never_loses_ground(self, tmp_path):
        """A second kill that lands inside the replay leaves the first
        checkpoint standing; the third launch still completes exactly."""
        data = _data(seed=73)
        truth = _make("probe-count-online").join(data, PREDICATE)
        first = JoinContext(
            cancel_token=CountdownCancellation(after_checks=20),
            checkpointer=JoinCheckpointer(str(tmp_path), interval_records=7),
        )
        with pytest.raises(JoinCancelled):
            _make("probe-count-online").join(data, PREDICATE, context=first)
        saved = JoinCheckpointer(str(tmp_path)).load().position
        second = JoinContext(
            cancel_token=CountdownCancellation(after_checks=5),
            checkpointer=JoinCheckpointer(str(tmp_path), interval_records=7),
        )
        with pytest.raises(JoinCancelled):
            _make("probe-count-online").join(data, PREDICATE, context=second)
        assert JoinCheckpointer(str(tmp_path)).load().position == saved
        final = JoinContext(checkpointer=JoinCheckpointer(str(tmp_path)))
        resumed = _make("probe-count-online").join(data, PREDICATE, context=final)
        assert resumed.pair_set() == truth.pair_set()

    def test_periodic_checkpoints_written_without_interruption(self, tmp_path):
        data = _data(seed=74)
        ckpt = JoinCheckpointer(str(tmp_path), interval_records=7)
        result = _make("naive").join(
            data, PREDICATE, context=JoinContext(checkpointer=ckpt)
        )
        assert ckpt.writes >= len(data) // 7
        assert result.counters.checkpoint_writes == ckpt.writes
        assert not os.path.exists(ckpt.path)  # cleared on success


class TestResumeRefusals:
    def _interrupted(self, tmp_path, data):
        context = JoinContext(
            cancel_token=CountdownCancellation(after_checks=len(data) + 15),
            checkpointer=JoinCheckpointer(str(tmp_path), interval_records=7),
        )
        with pytest.raises(JoinCancelled):
            _make("probe-count").join(data, PREDICATE, context=context)

    def test_changed_predicate_refused(self, tmp_path):
        data = _data(seed=75)
        self._interrupted(tmp_path, data)
        resume = JoinContext(checkpointer=JoinCheckpointer(str(tmp_path)))
        with pytest.raises(CheckpointMismatch, match="predicate"):
            _make("probe-count").join(data, OverlapPredicate(4), context=resume)

    def test_changed_algorithm_refused(self, tmp_path):
        data = _data(seed=75)
        self._interrupted(tmp_path, data)
        resume = JoinContext(checkpointer=JoinCheckpointer(str(tmp_path)))
        with pytest.raises(CheckpointMismatch, match="algorithm"):
            _make("naive").join(data, PREDICATE, context=resume)

    def test_changed_dataset_refused(self, tmp_path):
        data = _data(seed=75)
        self._interrupted(tmp_path, data)
        resume = JoinContext(checkpointer=JoinCheckpointer(str(tmp_path)))
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            _make("probe-count").join(_data(seed=76), PREDICATE, context=resume)
