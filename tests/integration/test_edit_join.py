"""Integration tests for the exact edit-distance join."""

import pytest

from repro import edit_distance_join
from repro.text.editdist import edit_distance
from tests.conftest import random_strings


def brute_force(strings, k):
    truth = set()
    for i in range(len(strings)):
        for j in range(i + 1, len(strings)):
            if edit_distance(strings[i].lower(), strings[j].lower()) <= k:
                truth.add((i, j))
    return truth


class TestEditDistanceJoin:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_random_short_strings(self, k):
        strings = random_strings(seed=k + 1, n=35, alphabet="abc", max_len=8)
        truth = brute_force(strings, k)
        got = edit_distance_join(strings, k=k, algorithm="probe-count-optmerge")
        assert got.pair_set() == truth

    def test_includes_empty_and_tiny_strings(self):
        strings = ["", "a", "b", "ab", "abcd", "abcde", "xyzxyz"]
        truth = brute_force(strings, 2)
        got = edit_distance_join(strings, k=2)
        assert got.pair_set() == truth

    def test_repeated_qgram_strings(self):
        """Strings like 'aaaa' stress the bag-encoding correctness."""
        strings = ["aaaa", "aaa", "aaaaa", "aaab", "bbbb", "abab"]
        truth = brute_force(strings, 1)
        got = edit_distance_join(strings, k=1)
        assert got.pair_set() == truth

    def test_realistic_names(self):
        strings = [
            "sunita sarawagi",
            "sunita sarawagy",
            "alok kirpal",
            "alok kirpall",
            "s sarawagi",
            "jeffrey ullman",
        ]
        got = edit_distance_join(strings, k=1)
        assert (0, 1) in got.pair_set()
        assert (2, 3) in got.pair_set()
        assert (0, 5) not in got.pair_set()

    def test_similarity_is_distance(self):
        got = edit_distance_join(["data", "date"], k=1)
        [pair] = got.pairs
        assert pair.similarity == 1.0

    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_q_parameter(self, q):
        strings = random_strings(seed=9, n=25, alphabet="ab", max_len=9)
        truth = brute_force(strings, 2)
        got = edit_distance_join(strings, k=2, q=q)
        assert got.pair_set() == truth

    def test_address_duplicates_found(self):
        from repro.datagen import AddressGenerator

        records = AddressGenerator(seed=3, duplicate_fraction=0.4).generate(60)
        names = [record.name_text() for record in records]
        truth = brute_force(names, 2)
        got = edit_distance_join(names, k=2)
        assert got.pair_set() == truth
        assert len(truth) > 0
