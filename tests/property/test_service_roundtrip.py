"""Hypothesis property: SimilarityIndex.save/load is lossless.

For random corpora and every predicate family, a loaded index must hold
identical payloads and answer every query identically to the original.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CosinePredicate,
    DicePredicate,
    JaccardPredicate,
    OverlapPredicate,
    SimilarityIndex,
    WeightedOverlapPredicate,
)

WORDS = ["join", "set", "index", "probe", "cluster", "merge", "count", "word"]

corpora = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=6, unique=True),
    min_size=1,
    max_size=15,
)

predicates = st.sampled_from(
    [
        OverlapPredicate(1),
        OverlapPredicate(2),
        WeightedOverlapPredicate(1),
        JaccardPredicate(0.4),
        CosinePredicate(0.4),
        DicePredicate(0.4),
    ]
)


def _query_key(matches):
    return {(p.rid_a, p.rid_b, round(p.similarity, 9)) for p in matches}


class TestSaveLoadRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(corpora, predicates)
    def test_loaded_index_is_indistinguishable(self, corpus, predicate):
        original = SimilarityIndex(predicate)
        for i, tokens in enumerate(corpus):
            original.add(tokens, payload={"row": i, "tokens": tokens})
        # Freeze corpus-dependent statistics (cosine IDF) over the full
        # corpus — load() binds over the full corpus too.
        original.rebind()
        with tempfile.TemporaryDirectory() as tmp:
            path = tmp + "/index.snap"
            original.save(path)
            loaded = SimilarityIndex.load(path, predicate)
        assert len(loaded) == len(original)
        for rid in range(len(original)):
            assert loaded.payload(rid) == original.payload(rid)
        for tokens in corpus:
            assert _query_key(loaded.query(tokens)) == _query_key(
                original.query(tokens)
            )
        # A probe with unseen tokens must behave identically too.
        probe = ["unseen-token", corpus[0][0]]
        assert _query_key(loaded.query(probe)) == _query_key(original.query(probe))

    @settings(max_examples=25, deadline=None)
    @given(corpora)
    def test_saved_then_loaded_index_keeps_growing(self, corpus):
        """load() returns a fully functional service, not a read-only view."""
        predicate = OverlapPredicate(1)
        original = SimilarityIndex(predicate)
        for tokens in corpus:
            original.add(tokens)
        with tempfile.TemporaryDirectory() as tmp:
            path = tmp + "/index.snap"
            original.save(path)
            loaded = SimilarityIndex.load(path, predicate)
        rid = loaded.add(corpus[0])
        assert rid == len(corpus)
        matches = {p.rid_a for p in loaded.query(corpus[0])}
        assert rid in matches  # the post-load record is queryable
