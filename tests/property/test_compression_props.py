"""Hypothesis roundtrips for the compression codecs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.elias import (
    elias_delta_decode,
    elias_delta_encode,
    elias_gamma_decode,
    elias_gamma_encode,
)
from repro.compression.postings import CompressedPostingList
from repro.compression.varbyte import varbyte_decode, varbyte_encode

non_negative = st.lists(st.integers(min_value=0, max_value=1 << 50), max_size=200)
positive = st.lists(st.integers(min_value=1, max_value=1 << 50), max_size=200)
sorted_ids = st.lists(
    st.integers(min_value=0, max_value=1 << 30), max_size=150, unique=True
).map(sorted)


class TestCodecRoundtrips:
    @settings(max_examples=200, deadline=None)
    @given(non_negative)
    def test_varbyte(self, values):
        assert varbyte_decode(varbyte_encode(values)) == values

    @settings(max_examples=200, deadline=None)
    @given(positive)
    def test_elias_gamma(self, values):
        assert elias_gamma_decode(elias_gamma_encode(values), len(values)) == values

    @settings(max_examples=200, deadline=None)
    @given(positive)
    def test_elias_delta(self, values):
        assert elias_delta_decode(elias_delta_encode(values), len(values)) == values


class TestPostingListProperties:
    @settings(max_examples=150, deadline=None)
    @given(sorted_ids, st.integers(min_value=1, max_value=64))
    def test_decode_roundtrip(self, ids, block_size):
        plist = CompressedPostingList(ids, block_size=block_size)
        assert plist.decode() == ids
        assert len(plist) == len(ids)

    @settings(max_examples=150, deadline=None)
    @given(sorted_ids, st.integers(min_value=1, max_value=64), st.integers(0, 1 << 30))
    def test_contains_matches_set(self, ids, block_size, probe):
        plist = CompressedPostingList(ids, block_size=block_size)
        assert (probe in plist) == (probe in set(ids))

    @settings(max_examples=150, deadline=None)
    @given(sorted_ids, st.integers(min_value=1, max_value=64), st.integers(0, 1 << 30))
    def test_first_geq_matches_bisect(self, ids, block_size, probe):
        from bisect import bisect_left

        plist = CompressedPostingList(ids, block_size=block_size)
        position = bisect_left(ids, probe)
        expected = ids[position] if position < len(ids) else None
        assert plist.first_geq(probe) == expected
