"""Hypothesis properties for the §5.3 band partitioners."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.bandjoin import (
    greedy_partitions,
    optimal_partitions,
    partition_cost,
    simple_partitions,
)

keys_strategy = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False), max_size=40
)
radius_strategy = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)


def covered(keys, radius, partitions):
    membership = [set() for _ in keys]
    for pidx, partition in enumerate(partitions):
        for rid in partition:
            membership[rid].add(pidx)
    for a in range(len(keys)):
        for b in range(a + 1, len(keys)):
            if abs(keys[a] - keys[b]) <= radius and not (membership[a] & membership[b]):
                return False
    return True


class TestPartitionProperties:
    @settings(max_examples=150, deadline=None)
    @given(keys_strategy, radius_strategy)
    def test_simple_covers_all_band_pairs(self, keys, radius):
        assert covered(keys, radius, simple_partitions(keys, radius))

    @settings(max_examples=150, deadline=None)
    @given(keys_strategy, radius_strategy)
    def test_greedy_covers_all_band_pairs(self, keys, radius):
        assert covered(keys, radius, greedy_partitions(keys, radius))

    @settings(max_examples=150, deadline=None)
    @given(keys_strategy, radius_strategy)
    def test_optimal_covers_all_band_pairs(self, keys, radius):
        assert covered(keys, radius, optimal_partitions(keys, radius))

    @settings(max_examples=150, deadline=None)
    @given(keys_strategy, radius_strategy)
    def test_every_record_appears(self, keys, radius):
        for maker in (simple_partitions, greedy_partitions, optimal_partitions):
            partitions = maker(keys, radius)
            assert sorted({r for p in partitions for r in p}) == sorted(range(len(keys)))

    @settings(max_examples=150, deadline=None)
    @given(keys_strategy, radius_strategy)
    def test_optimal_is_cheapest(self, keys, radius):
        cost_simple = partition_cost(simple_partitions(keys, radius))
        cost_greedy = partition_cost(greedy_partitions(keys, radius))
        cost_optimal = partition_cost(optimal_partitions(keys, radius))
        assert cost_optimal <= cost_simple + 1e-9
        assert cost_optimal <= cost_greedy + 1e-9
