"""Hypothesis property: the q-gram count lower bound (§5.2.3) is sound.

For any strings within edit distance k, the number of matching numbered
q-grams is at least ``max(len_r, len_s) - 1 - q(k - 1)``. If this failed
the edit-distance join would miss pairs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates.edit_distance import numbered_qgrams
from repro.text.editdist import edit_distance

texts = st.text(alphabet="abc", max_size=12)


class TestQgramBound:
    @settings(max_examples=400, deadline=None)
    @given(texts, texts, st.integers(min_value=2, max_value=4))
    def test_bound_holds_for_actual_distance(self, a, b, q):
        k = edit_distance(a, b)
        shared = len(set(numbered_qgrams(a, q=q)) & set(numbered_qgrams(b, q=q)))
        bound = max(len(a), len(b)) - 1 - q * (k - 1) if k >= 1 else len(a) + q - 1
        if k == 0:
            assert shared == len(a) + q - 1
        else:
            assert shared >= bound

    @settings(max_examples=200, deadline=None)
    @given(texts, st.integers(min_value=2, max_value=4))
    def test_identical_strings_share_everything(self, a, q):
        grams = set(numbered_qgrams(a, q=q))
        assert len(grams) == len(a) + q - 1

    @settings(max_examples=200, deadline=None)
    @given(texts, texts)
    def test_numbered_encoding_is_bag_intersection(self, a, b):
        """Set intersection of numbered grams == bag intersection."""
        from collections import Counter

        from repro.text.tokenizers import qgrams

        bag_a = Counter(qgrams(a.lower(), q=3, pad=True))
        bag_b = Counter(qgrams(b.lower(), q=3, pad=True))
        bag_match = sum((bag_a & bag_b).values())
        set_match = len(set(numbered_qgrams(a, q=3)) & set(numbered_qgrams(b, q=3)))
        assert set_match == bag_match
