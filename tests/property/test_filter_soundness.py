"""Hypothesis properties: band filters never reject a true match.

The §5 framework allows filters precisely because they are *sound*:
``filter(r, s)`` failing implies the pair cannot satisfy the predicate.
If this broke, every optimized algorithm would silently drop pairs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, DicePredicate, JaccardPredicate
from repro.predicates.edit_distance import EditDistancePredicate, qgram_dataset

records = st.lists(
    st.lists(st.integers(0, 30), min_size=1, max_size=12, unique=True).map(
        lambda r: tuple(sorted(r))
    ),
    min_size=2,
    max_size=25,
)

fractions = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


class TestSetFilterSoundness:
    @settings(max_examples=150, deadline=None)
    @given(records, fractions)
    def test_jaccard_filter_sound(self, recs, f):
        data = Dataset(recs)
        bound = JaccardPredicate(f).bind(data)
        band = bound.band_filter()
        for a in range(len(recs)):
            for b in range(a + 1, len(recs)):
                overlap = len(set(recs[a]) & set(recs[b]))
                union = len(set(recs[a]) | set(recs[b]))
                if overlap / union >= f:
                    assert band.accepts(a, b), (recs[a], recs[b], f)

    @settings(max_examples=150, deadline=None)
    @given(records, fractions)
    def test_dice_filter_sound(self, recs, f):
        data = Dataset(recs)
        bound = DicePredicate(f).bind(data)
        band = bound.band_filter()
        for a in range(len(recs)):
            for b in range(a + 1, len(recs)):
                overlap = len(set(recs[a]) & set(recs[b]))
                dice = 2 * overlap / (len(recs[a]) + len(recs[b]))
                if dice >= f:
                    assert band.accepts(a, b)


strings = st.lists(st.text(alphabet="abc", max_size=10), min_size=2, max_size=15)


class TestEditFilterSoundness:
    @settings(max_examples=100, deadline=None)
    @given(strings, st.integers(min_value=0, max_value=3))
    def test_length_filter_sound(self, texts, k):
        from repro.text.editdist import edit_distance

        data = qgram_dataset(texts)
        bound = EditDistancePredicate(k=k).bind(data)
        band = bound.band_filter()
        for a in range(len(texts)):
            for b in range(a + 1, len(texts)):
                if edit_distance(texts[a], texts[b]) <= k:
                    assert band.accepts(a, b)
