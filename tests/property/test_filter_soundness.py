"""Hypothesis properties: band filters never reject a true match.

The §5 framework allows filters precisely because they are *sound*:
``filter(r, s)`` failing implies the pair cannot satisfy the predicate.
If this broke, every optimized algorithm would silently drop pairs.

The bitmap-signature classes below hold the same contract for the
:mod:`repro.filters` pruning layer: across predicates, thresholds and
signature widths — and across a :class:`SimilarityIndex` snapshot
save/load — the filtered join must emit exactly the unfiltered pairs.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CosinePredicate,
    Dataset,
    DicePredicate,
    JaccardPredicate,
    OverlapPredicate,
    SimilarityIndex,
    edit_distance_join,
)
from repro.core.naive import NaiveJoin
from repro.filters import BitmapFilterConfig, BitmapPruner
from repro.predicates.edit_distance import EditDistancePredicate, qgram_dataset
from repro.utils.counters import CostCounters

records = st.lists(
    st.lists(st.integers(0, 30), min_size=1, max_size=12, unique=True).map(
        lambda r: tuple(sorted(r))
    ),
    min_size=2,
    max_size=25,
)

fractions = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


class TestSetFilterSoundness:
    @settings(max_examples=150, deadline=None)
    @given(records, fractions)
    def test_jaccard_filter_sound(self, recs, f):
        data = Dataset(recs)
        bound = JaccardPredicate(f).bind(data)
        band = bound.band_filter()
        for a in range(len(recs)):
            for b in range(a + 1, len(recs)):
                overlap = len(set(recs[a]) & set(recs[b]))
                union = len(set(recs[a]) | set(recs[b]))
                if overlap / union >= f:
                    assert band.accepts(a, b), (recs[a], recs[b], f)

    @settings(max_examples=150, deadline=None)
    @given(records, fractions)
    def test_dice_filter_sound(self, recs, f):
        data = Dataset(recs)
        bound = DicePredicate(f).bind(data)
        band = bound.band_filter()
        for a in range(len(recs)):
            for b in range(a + 1, len(recs)):
                overlap = len(set(recs[a]) & set(recs[b]))
                dice = 2 * overlap / (len(recs[a]) + len(recs[b]))
                if dice >= f:
                    assert band.accepts(a, b)


strings = st.lists(st.text(alphabet="abc", max_size=10), min_size=2, max_size=15)


class TestEditFilterSoundness:
    @settings(max_examples=100, deadline=None)
    @given(strings, st.integers(min_value=0, max_value=3))
    def test_length_filter_sound(self, texts, k):
        from repro.text.editdist import edit_distance

        data = qgram_dataset(texts)
        bound = EditDistancePredicate(k=k).bind(data)
        band = bound.band_filter()
        for a in range(len(texts)):
            for b in range(a + 1, len(texts)):
                if edit_distance(texts[a], texts[b]) <= k:
                    assert band.accepts(a, b)


widths = st.sampled_from([8, 16, 32, 64, 128])

_PREDICATES = [
    lambda f: OverlapPredicate(max(1, round(f * 6))),
    JaccardPredicate,
    CosinePredicate,
    DicePredicate,
]


def _pairs(result):
    return sorted((p.rid_a, p.rid_b) for p in result.pairs)


class TestBitmapFilterSoundness:
    @settings(max_examples=60, deadline=None)
    @given(records, fractions, widths)
    def test_pruner_never_rejects_true_match(self, recs, f, width):
        """Direct check of the popcount bound against brute-force truth."""
        data = Dataset(recs)
        bound = JaccardPredicate(f).bind(data)
        pruner = BitmapPruner.for_join(
            bound, BitmapFilterConfig(width=width, adaptive=False)
        )
        assert pruner is not None
        counters = CostCounters()
        for a in range(len(recs)):
            for b in range(a + 1, len(recs)):
                overlap = len(set(recs[a]) & set(recs[b]))
                union = len(set(recs[a]) | set(recs[b]))
                if overlap / union >= f:
                    assert not pruner.rejects(a, b, counters), (
                        recs[a], recs[b], f, width,
                    )

    @pytest.mark.parametrize("make_predicate", _PREDICATES)
    @settings(max_examples=40, deadline=None)
    @given(records, fractions, widths)
    def test_filtered_join_identical(self, make_predicate, recs, f, width):
        """NaiveJoin verifies every pair, so equality here covers all
        candidate pairs for any weighting scheme (incl. TF-IDF cosine)."""
        predicate = make_predicate(f)
        plain = NaiveJoin().join(Dataset(list(recs)), predicate)
        filtered_algo = NaiveJoin()
        filtered_algo.bitmap_filter = BitmapFilterConfig(
            width=width, adaptive=False
        )
        filtered = filtered_algo.join(Dataset(list(recs)), predicate)
        assert _pairs(plain) == _pairs(filtered)

    @settings(max_examples=40, deadline=None)
    @given(strings, st.integers(min_value=0, max_value=3), widths)
    def test_edit_distance_join_identical(self, texts, k, width):
        plain = edit_distance_join(texts, k)
        filtered = edit_distance_join(
            texts, k, bitmap_filter=BitmapFilterConfig(width=width, adaptive=False)
        )
        assert _pairs(plain) == _pairs(filtered)

    @settings(max_examples=25, deadline=None)
    @given(records, fractions, widths)
    def test_snapshot_roundtrip_preserves_queries(self, recs, f, width):
        """Filtered index == unfiltered index, before and after save/load."""
        predicate = JaccardPredicate(f)
        config = BitmapFilterConfig(width=width, adaptive=False)
        plain = SimilarityIndex(predicate)
        filtered = SimilarityIndex(predicate, bitmap_filter=config)
        for rec in recs:
            plain.add(list(rec))
            filtered.add(list(rec))
        probes = recs[:5]
        expected = [_match_set(plain.query(list(p))) for p in probes]
        assert [_match_set(filtered.query(list(p))) for p in probes] == expected
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "index.snapshot")
            filtered.save(path)
            restored = SimilarityIndex.load(
                path, predicate, bitmap_filter=config
            )
        assert [_match_set(restored.query(list(p))) for p in probes] == expected


def _match_set(matches):
    return sorted(p.rid_b for p in matches)
