"""Backend-equivalence properties: memory-mapped vs in-memory postings.

The contract the ``index_backend`` knob promises: a join served off the
write-once mapped columnar file returns matches *bit-identical* to the
in-memory index — same pairs, same similarities — under every
predicate, serially and sharded over workers, with the bitmap filter
armed or not, and under both probe-merge engines. The mapped serving
state (``SimilarityIndex.save(format='mmap')``) makes the same promise
against snapshot-loaded services.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CosinePredicate,
    JaccardPredicate,
    OverlapPredicate,
)
from repro.core.join import make_algorithm, similarity_join
from repro.core.service import SimilarityIndex
from tests.conftest import random_dataset, random_strings

_PREDICATES = [
    pytest.param(OverlapPredicate(4), id="overlap"),
    pytest.param(JaccardPredicate(0.6), id="jaccard"),
    pytest.param(CosinePredicate(0.7), id="cosine"),
]

_ALGORITHMS = ["probe-count", "probe-count-optmerge", "probe-count-stopwords"]


def _match_tuples(result):
    """Full (rid_a, rid_b, similarity) tuples: bit-identity, not just pairs."""
    return sorted((p.rid_a, p.rid_b, p.similarity) for p in result.pairs)


def _join(dataset, predicate, algorithm, *, backend, merge="auto", bitmap=None):
    algo = make_algorithm(
        algorithm,
        index_backend=backend,
        merge_backend=merge,
        bitmap_filter=bitmap,
    )
    return algo.join(dataset, predicate)


class TestJoinEquivalence:
    @pytest.mark.parametrize("predicate", _PREDICATES)
    @pytest.mark.parametrize("algorithm", _ALGORITHMS)
    def test_serial_backends_bit_identical(self, predicate, algorithm):
        data = random_dataset(seed=61, n_base=80, universe=30)
        memory = _join(data, predicate, algorithm, backend="memory")
        mapped = _join(data, predicate, algorithm, backend="mmap")
        assert _match_tuples(mapped) == _match_tuples(memory)

    @pytest.mark.parametrize("predicate", _PREDICATES)
    @pytest.mark.parametrize("merge", ["heap", "accumulator"])
    def test_merge_backends_bit_identical(self, predicate, merge):
        data = random_dataset(seed=67, n_base=80, universe=30)
        memory = _join(
            data, predicate, "probe-count-optmerge", backend="memory", merge=merge
        )
        mapped = _join(
            data, predicate, "probe-count-optmerge", backend="mmap", merge=merge
        )
        assert _match_tuples(mapped) == _match_tuples(memory)

    @pytest.mark.parametrize("predicate", _PREDICATES)
    @pytest.mark.parametrize("bitmap", [False, True])
    def test_bitmap_filter_bit_identical(self, predicate, bitmap):
        data = random_dataset(seed=71, n_base=80, universe=30)
        memory = _join(
            data, predicate, "probe-count-optmerge", backend="memory", bitmap=bitmap
        )
        mapped = _join(
            data, predicate, "probe-count-optmerge", backend="mmap", bitmap=bitmap
        )
        assert _match_tuples(mapped) == _match_tuples(memory)

    @pytest.mark.parametrize("predicate", _PREDICATES)
    def test_sharded_matches_serial(self, predicate):
        from repro.parallel import parallel_join

        data = random_dataset(seed=73, n_base=90, universe=30)
        serial = _join(data, predicate, "probe-count-optmerge", backend="memory")
        sharded = parallel_join(
            data,
            predicate,
            algorithm="probe-count-optmerge",
            workers=4,
            index_backend="mmap",
        )
        assert _match_tuples(sharded) == _match_tuples(serial)

    def test_probe_work_matches_in_memory(self):
        # The mapped columns feed the same galloping merge: the probe
        # work the cost model counts must not change with the substrate.
        data = random_dataset(seed=79, n_base=80, universe=30)
        predicate = JaccardPredicate(0.6)
        memory = _join(data, predicate, "probe-count-optmerge", backend="memory")
        mapped = _join(data, predicate, "probe-count-optmerge", backend="mmap")
        assert (
            mapped.counters.list_items_touched
            == memory.counters.list_items_touched
        )
        assert mapped.counters.heap_pops == memory.counters.heap_pops
        assert mapped.counters.pairs_verified == memory.counters.pairs_verified

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_datasets_bit_identical(self, seed):
        data = random_dataset(seed=seed, n_base=50, universe=25)
        predicate = JaccardPredicate(0.5)
        memory = similarity_join(
            data, predicate, algorithm="probe-count-optmerge"
        )
        mapped = similarity_join(
            data,
            predicate,
            algorithm="probe-count-optmerge",
            index_backend="mmap",
        )
        assert _match_tuples(mapped) == _match_tuples(memory)


class TestServingEquivalence:
    @pytest.mark.parametrize("merge", ["heap", "accumulator"])
    def test_mapped_service_bit_identical_to_snapshot(self, tmp_path, merge):
        docs = random_strings(seed=83, n=60)
        queries = random_strings(seed=89, n=25)
        predicate = JaccardPredicate(0.5)
        service = SimilarityIndex(predicate, merge_backend=merge)
        for doc in docs:
            service.add(doc)
        snap = str(tmp_path / "ix.snap")
        mpath = str(tmp_path / "ix.rpmx")
        service.save(snap)
        service.save(mpath, format="mmap")

        from_snapshot = SimilarityIndex.load(snap, predicate, merge_backend=merge)
        mapped = SimilarityIndex.load(
            mpath, predicate, merge_backend=merge, mmap=True
        )
        try:
            for query in queries:
                expected = [
                    (p.rid_a, p.rid_b, p.similarity)
                    for p in from_snapshot.query(query)
                ]
                got = [
                    (p.rid_a, p.rid_b, p.similarity) for p in mapped.query(query)
                ]
                assert got == expected
        finally:
            mapped.close()
