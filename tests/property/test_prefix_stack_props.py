"""Hypothesis properties of the prefix-filter stack.

The contract: the full PPJoin+ stack (``positional-filter``), the basic
prefix filter (``prefix-filter``), and the exhaustive ``naive`` join
emit the *same pair set* for every unit-score predicate family, every
threshold, with and without the bitmap prefilter — the stack's three
extra layers (length, position, suffix) are pure pruning, never
selection. A separate seeded matrix pins the serial == ``--workers 4``
identity (real worker processes, so that axis is not hypothesis-driven;
see ``test_parallel_props`` for the rationale).

Hamming runs at ``k = 1`` over nonempty records so the empty-
intersection corner (``|r| + |s| <= k``) — which *no* inverted-index
join can see and :func:`repro.core.join.hamming_join` brute-forces —
stays out of the property's domain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro import (
    DicePredicate,
    JaccardPredicate,
    NaiveJoin,
    OverlapCoefficientPredicate,
    OverlapPredicate,
    parallel_join,
    similarity_join,
)
from repro.core.positional_filter import PositionalFilterJoin
from repro.core.prefix_filter import PrefixFilterJoin
from repro.core.records import Dataset
from repro.filters import BitmapFilterConfig
from repro.predicates.hamming import HammingPredicate
from tests.conftest import random_dataset

records = st.lists(
    st.lists(st.integers(0, 25), min_size=1, max_size=10, unique=True).map(
        lambda r: tuple(sorted(r))
    ),
    min_size=0,
    max_size=30,
)

#: Unit-score predicate, one strategy per family.
predicates = st.one_of(
    st.integers(min_value=1, max_value=6).map(OverlapPredicate),
    st.floats(min_value=0.2, max_value=1.0).map(JaccardPredicate),
    st.floats(min_value=0.2, max_value=1.0).map(DicePredicate),
    st.floats(min_value=0.2, max_value=1.0).map(OverlapCoefficientPredicate),
    st.just(HammingPredicate(1)),
)

BITMAP = BitmapFilterConfig(width=64, adaptive=False)


def _stack_variants(bitmap):
    out = []
    for factory in (
        PrefixFilterJoin,
        PositionalFilterJoin,
        lambda: PositionalFilterJoin(suffix_filter=False),
    ):
        instance = factory()
        if bitmap:
            instance.bitmap_filter = BITMAP
        out.append(instance)
    return out


class TestStackMatchesNaive:
    @settings(max_examples=80, deadline=None)
    @given(records, predicates, st.booleans())
    def test_stack_equals_prefix_equals_naive(self, recs, predicate, bitmap):
        data = Dataset(recs)
        expected = NaiveJoin().join(data, predicate).pair_set()
        for algorithm in _stack_variants(bitmap):
            got = algorithm.join(data, predicate).pair_set()
            assert got == expected, (algorithm.name, predicate.name, bitmap)

    @settings(max_examples=40, deadline=None)
    @given(records, predicates)
    def test_output_is_canonical_and_duplicate_free(self, recs, predicate):
        result = PositionalFilterJoin().join(Dataset(recs), predicate)
        seen = set()
        for pair in result.pairs:
            assert pair.rid_a < pair.rid_b
            assert (pair.rid_a, pair.rid_b) not in seen
            seen.add((pair.rid_a, pair.rid_b))

    @settings(max_examples=40, deadline=None)
    @given(records, predicates)
    def test_stack_never_checks_more_candidates(self, recs, predicate):
        """Layered pruning is monotone: the stack's candidate count
        never exceeds the basic prefix filter's."""
        data = Dataset(recs)
        basic = PrefixFilterJoin().join(data, predicate)
        stacked = PositionalFilterJoin().join(data, predicate)
        assert (
            stacked.counters.candidates_checked
            <= basic.counters.candidates_checked
        )


PARALLEL_PREDICATES = [
    pytest.param(OverlapPredicate(3), id="overlap"),
    pytest.param(JaccardPredicate(0.5), id="jaccard"),
    pytest.param(DicePredicate(0.6), id="dice"),
    pytest.param(HammingPredicate(1), id="hamming"),
]


class TestStackUnderWorkers:
    """Serial == sharded for both stack algorithms (pair-for-pair)."""

    @pytest.mark.parametrize("algorithm", ["prefix-filter", "positional-filter"])
    @pytest.mark.parametrize("predicate", PARALLEL_PREDICATES)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_workers_match_serial(self, algorithm, predicate, workers):
        data = random_dataset(seed=31, n_base=70, min_size=3)
        serial = similarity_join(data, predicate, algorithm=algorithm)
        sharded = parallel_join(
            data, predicate, algorithm=algorithm, workers=workers
        )
        assert sharded.pair_set() == serial.pair_set()
        similarity = {(p.rid_a, p.rid_b): p.similarity for p in serial.pairs}
        assert {
            (p.rid_a, p.rid_b): p.similarity for p in sharded.pairs
        } == similarity
