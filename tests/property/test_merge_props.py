"""Hypothesis properties for the three merge engines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heap_merge import heap_merge
from repro.core.inverted_index import PostingList
from repro.core.merge_dynamic import merge_dynamic
from repro.core.merge_opt import merge_opt
from repro.utils.counters import CostCounters

# A "probe" is a set of posting lists with scores.
posting_ids = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=30, unique=True
).map(sorted)

scored_list = st.tuples(
    posting_ids,
    st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
)

probe = st.lists(scored_list, min_size=0, max_size=8)
thresholds = st.floats(min_value=0.2, max_value=8.0, allow_nan=False)


def build(lists_spec):
    lists = []
    for ids, entry_score, probe_score in lists_spec:
        plist = PostingList()
        for entity in ids:
            plist.append(entity, entry_score)
        lists.append((plist, probe_score))
    return lists


def reference(lists_spec, threshold):
    """Dict-based accumulation: the obviously-correct merge."""
    weights: dict[int, float] = {}
    for ids, entry_score, probe_score in lists_spec:
        for entity in ids:
            weights[entity] = weights.get(entity, 0.0) + entry_score * probe_score
    return {
        entity: weight
        for entity, weight in weights.items()
        if weight >= threshold - 1e-7
    }


class TestMergeProperties:
    @settings(max_examples=150, deadline=None)
    @given(probe, thresholds)
    def test_heap_merge_equals_reference(self, lists_spec, threshold):
        got = dict(heap_merge(build(lists_spec), lambda _s: threshold, CostCounters()))
        expected = reference(lists_spec, threshold)
        assert set(got) == set(expected)
        for entity, weight in got.items():
            assert abs(weight - expected[entity]) < 1e-6

    @settings(max_examples=150, deadline=None)
    @given(probe, thresholds)
    def test_merge_opt_equals_reference(self, lists_spec, threshold):
        got = dict(
            merge_opt(build(lists_spec), threshold, lambda _s: threshold, CostCounters())
        )
        expected = reference(lists_spec, threshold)
        assert set(got) == set(expected)
        for entity, weight in got.items():
            assert abs(weight - expected[entity]) < 1e-6

    @settings(max_examples=100, deadline=None)
    @given(probe, thresholds)
    def test_merge_dynamic_static_equals_reference(self, lists_spec, threshold):
        got = {}

        def on_candidate(entity, weight):
            got[entity] = weight
            return threshold

        merge_dynamic(build(lists_spec), threshold, threshold, on_candidate, CostCounters())
        expected = reference(lists_spec, threshold)
        assert set(got) == set(expected)

    @settings(max_examples=100, deadline=None)
    @given(probe, thresholds, st.floats(min_value=0.05, max_value=1.0))
    def test_merge_dynamic_raises_never_lose_cap_candidates(
        self, lists_spec, cap, initial_fraction
    ):
        """Whatever raising policy runs, entities >= cap survive exactly."""
        initial = cap * initial_fraction
        reported = {}

        def on_candidate(entity, weight, _state={"t": None}):
            reported[entity] = weight
            if _state["t"] is None:
                _state["t"] = initial
            _state["t"] = (_state["t"] + weight) / 2
            return _state["t"]

        merge_dynamic(build(lists_spec), initial, cap, on_candidate, CostCounters())
        expected = reference(lists_spec, cap)
        for entity, weight in expected.items():
            assert entity in reported
            assert abs(reported[entity] - weight) < 1e-6
