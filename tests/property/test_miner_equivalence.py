"""Hypothesis property: Apriori and FP-growth find identical itemsets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.apriori import AprioriMiner
from repro.mining.fpgrowth import fpgrowth

transactions = st.lists(
    st.lists(st.integers(0, 10), min_size=1, max_size=6, unique=True).map(tuple),
    max_size=18,
)


class TestMinerEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(transactions, st.integers(min_value=1, max_value=5))
    def test_same_itemsets_and_supports(self, txns, min_support):
        apriori = AprioriMiner(min_support=min_support).mine(txns)
        fp = fpgrowth(txns, min_support=min_support)
        assert set(fp) == set(apriori)
        for itemset, support in fp.items():
            assert support == len(apriori[itemset])

    @settings(max_examples=120, deadline=None)
    @given(transactions)
    def test_apriori_tidlists_are_correct(self, txns):
        """Every reported tid-list is exactly the containing transactions."""
        result = AprioriMiner(min_support=2).mine(txns)
        for itemset, tids in result.items():
            expected = [
                tid for tid, txn in enumerate(txns) if set(itemset) <= set(txn)
            ]
            assert tids == expected

    @settings(max_examples=100, deadline=None)
    @given(transactions)
    def test_downward_closure(self, txns):
        """Every subset of a frequent itemset is frequent (Apriori property)."""
        result = AprioriMiner(min_support=2).mine(txns)
        for itemset in result:
            if len(itemset) > 1:
                for drop in range(len(itemset)):
                    subset = itemset[:drop] + itemset[drop + 1 :]
                    assert subset in result
