"""Equivalence properties of the parallel sharded join engine.

The contract under test: ``parallel_join(dataset, predicate, algorithm,
workers=k)`` is pair-for-pair identical to the serial
``similarity_join`` for every supported algorithm, every predicate
family, and every worker count — including runs interrupted by a
mid-run deadline and resumed from per-shard checkpoints.

These spawn real worker processes, so the datasets are deliberately
small and seeded (not hypothesis-driven): the shard-window replay
logic these properties exercise is deterministic, and the expensive
axis is the (predicate x workers x algorithm) matrix itself.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    CosinePredicate,
    EditDistancePredicate,
    JaccardPredicate,
    OverlapPredicate,
    parallel_join,
    similarity_join,
)
from repro.core.records import Dataset
from repro.parallel import PARALLEL_ALGORITHMS
from repro.predicates.edit_distance import qgram_dataset
from repro.runtime.context import JoinContext
from repro.runtime.checkpoint import JoinCheckpointer
from repro.runtime.errors import CheckpointMismatch, JoinTimeout

WORKER_COUNTS = [1, 2, 4, 7]


def seeded_dataset(seed: int, n: int = 60, vocabulary: int = 30) -> Dataset:
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        size = rng.randint(1, 8)
        records.append(tuple(sorted(rng.sample(range(vocabulary), size))))
    return Dataset(records)


def seeded_strings(seed: int, n: int = 40) -> list[str]:
    rng = random.Random(seed)
    return [
        "".join(rng.choice("abc") for _ in range(rng.randint(1, 8)))
        for _ in range(n)
    ]


SET_PREDICATES = [
    pytest.param(OverlapPredicate(3), id="overlap"),
    pytest.param(JaccardPredicate(0.5), id="jaccard"),
    pytest.param(CosinePredicate(0.6), id="cosine"),
]


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("predicate", SET_PREDICATES)
    def test_set_predicates_match_serial(self, predicate, workers):
        data = seeded_dataset(seed=workers)
        serial = similarity_join(data, predicate, algorithm="probe-count-optmerge")
        result = parallel_join(
            data, predicate, algorithm="probe-count-optmerge", workers=workers
        )
        assert result.pair_set() == serial.pair_set()
        similarity = {(p.rid_a, p.rid_b): p.similarity for p in serial.pairs}
        assert {
            (p.rid_a, p.rid_b): p.similarity for p in result.pairs
        } == similarity

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_edit_distance_matches_serial(self, workers):
        data = qgram_dataset(seeded_strings(seed=workers))
        predicate = EditDistancePredicate(2)
        serial = similarity_join(data, predicate, algorithm="probe-count-optmerge")
        result = parallel_join(
            data, predicate, algorithm="probe-count-optmerge", workers=workers
        )
        assert result.pair_set() == serial.pair_set()

    @pytest.mark.parametrize("algorithm", sorted(PARALLEL_ALGORITHMS))
    def test_every_supported_algorithm_matches_serial(self, algorithm):
        data = seeded_dataset(seed=99)
        predicate = OverlapPredicate(2)
        serial = similarity_join(data, predicate, algorithm=algorithm)
        result = parallel_join(data, predicate, algorithm=algorithm, workers=3)
        assert result.pair_set() == serial.pair_set(), algorithm


class TestDeadlineAndResume:
    """An injected mid-run deadline, then a checkpointed resume."""

    algorithm = "probe-count-optmerge"
    workers = 3

    def test_mid_run_deadline_then_resume_is_exact(self, tmp_path):
        # Big enough that the serial join takes ~1s, so a 0.3s deadline
        # reliably lands mid-run with dozens of checkpoint intervals
        # already flushed by every shard.
        data = seeded_dataset(seed=7, n=1600, vocabulary=40)
        predicate = OverlapPredicate(3)
        serial = similarity_join(data, predicate, algorithm=self.algorithm)

        interrupted = JoinContext(
            deadline_seconds=0.3,
            checkpointer=JoinCheckpointer(str(tmp_path), interval_records=20),
        )
        with pytest.raises(JoinTimeout):
            parallel_join(
                data,
                predicate,
                algorithm=self.algorithm,
                workers=self.workers,
                context=interrupted,
            )

        resumed = JoinContext(
            checkpointer=JoinCheckpointer(str(tmp_path), interval_records=20)
        )
        result = parallel_join(
            data,
            predicate,
            algorithm=self.algorithm,
            workers=self.workers,
            context=resumed,
        )
        assert result.pair_set() == serial.pair_set()

    def test_resume_refuses_different_worker_count(self, tmp_path):
        """A shard checkpoint from a 3-worker run poisons a 4-worker run.

        Seeded deterministically (no timing dependence): shard 0's
        checkpoint is written exactly as a 3-worker invocation would
        have left it, then a 4-worker invocation must refuse it.
        """
        from repro.parallel.worker import shard_algorithm_name
        from repro.runtime.checkpoint import dataset_fingerprint
        from repro.utils.counters import CostCounters

        data = seeded_dataset(seed=7, n=120, vocabulary=40)
        predicate = OverlapPredicate(3)
        stale = JoinCheckpointer(str(tmp_path / "shard-0"), interval_records=20)
        stale.write(
            algorithm=shard_algorithm_name(self.algorithm, 0, 3),
            predicate=predicate.name,
            fingerprint=dataset_fingerprint(data),
            n_records=len(data),
            position=19,
            pairs=[],
            counters=CostCounters(),
        )

        mismatched = JoinContext(
            checkpointer=JoinCheckpointer(str(tmp_path), interval_records=20)
        )
        with pytest.raises(CheckpointMismatch, match="shard0"):
            parallel_join(
                data,
                predicate,
                algorithm=self.algorithm,
                workers=4,
                context=mismatched,
            )
