"""Hypothesis properties for the galloping search."""

from bisect import bisect_left

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.search import gallop_search, gallop_search_from

sorted_ints = st.lists(
    st.integers(min_value=-1000, max_value=1000), max_size=200, unique=True
).map(sorted)


class TestGallopProperties:
    @settings(max_examples=300, deadline=None)
    @given(sorted_ints, st.integers(min_value=-1100, max_value=1100))
    def test_equals_bisect_left(self, items, target):
        assert gallop_search(items, target) == bisect_left(items, target)

    @settings(max_examples=300, deadline=None)
    @given(
        sorted_ints,
        st.integers(min_value=-1100, max_value=1100),
        st.integers(min_value=0, max_value=250),
    )
    def test_from_start_equals_bisect_on_suffix(self, items, target, start):
        got = gallop_search_from(items, target, start)
        expected = max(start, bisect_left(items, target, min(start, len(items))))
        if start >= len(items):
            assert got == len(items)
        else:
            assert got == max(bisect_left(items, target, start), start)

    @settings(max_examples=200, deadline=None)
    @given(sorted_ints, st.lists(st.integers(-1100, 1100), min_size=1, max_size=20))
    def test_monotone_resume_scan(self, items, raw_targets):
        """Resuming from the previous result matches fresh bisect for
        monotonically increasing probes — the MergeOpt access pattern."""
        targets = sorted(raw_targets)
        position = 0
        for target in targets:
            position = gallop_search_from(items, target, position)
            assert position == bisect_left(items, target)
