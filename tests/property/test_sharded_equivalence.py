"""Property: sharded scatter-gather == single index, bit for bit.

The tentpole claim of the sharded serving tier is that sharding buys
fault isolation without changing a single answer. This sweep pins it:
for every shard count × predicate × bitmap filter × query cache
combination, every query's matches — rids AND float similarities —
are identical to a single-index :class:`IndexServer` over the same
corpus, and identical again when re-asked through warm caches.

Cosine is the adversarial predicate here: its scores depend on corpus
statistics, so per-shard binding would weight IDF against per-shard
frequencies and silently break global exactness. The sweep freezes one
:class:`CorpusStats` over the global corpus and hands it to both
servers — exactly what the sharded tier's docstring demands of
corpus-dependent predicates.
"""

import random

import pytest

from repro import CosinePredicate, JaccardPredicate, OverlapPredicate
from repro.core.service import SimilarityIndex
from repro.serving import IndexServer, ShardedIndexServer
from repro.text.tfidf import CorpusStats
from repro.text.tokenizers import tokenize_words

WAIT = 30.0

VOCAB = [
    "join", "set", "similarity", "predicate", "merge", "probe", "index",
    "record", "cluster", "threshold", "overlap", "cosine", "weight",
    "inverted", "posting", "batch", "shard", "cache", "flip", "epoch",
]


def _corpus(seed: int, n: int = 48) -> list[str]:
    """Random texts with enough token reuse to create real matches."""
    rng = random.Random(seed)
    texts = []
    for _ in range(n):
        size = rng.randint(3, 8)
        texts.append(" ".join(rng.sample(VOCAB, size)))
    return texts


def _queries(texts: list[str]) -> list[str]:
    rng = random.Random(99)
    queries = list(texts[:6])  # exact repeats: corpus members
    for _ in range(6):
        queries.append(" ".join(rng.sample(VOCAB, rng.randint(2, 6))))
    queries.append("nothing matches this xylophone chimera")
    return queries


def _global_stats(texts: list[str]) -> CorpusStats:
    """CorpusStats over the whole corpus, under the exact token-id
    assignment both servers will reproduce (insertion-ordered)."""
    vocabulary: dict[str, int] = {}
    records = []
    for text in texts:
        ids = set()
        for token in tokenize_words(text):
            token_id = vocabulary.setdefault(token, len(vocabulary))
            ids.add(token_id)
        records.append(tuple(sorted(ids)))
    return CorpusStats(records)


def _fingerprint(matches) -> list:
    return [(m.rid_a, m.rid_b, m.similarity) for m in matches]


def _predicate(name: str, texts: list[str]):
    if name == "overlap":
        return OverlapPredicate(2)
    if name == "jaccard":
        return JaccardPredicate(0.4)
    return CosinePredicate(0.5, stats=_global_stats(texts))


@pytest.mark.parametrize("shards", [1, 2, 4, 7])
@pytest.mark.parametrize("predicate_name", ["overlap", "jaccard", "cosine"])
@pytest.mark.parametrize("bitmap", [False, True])
@pytest.mark.parametrize("cache", [0, 16])
def test_sharded_equals_single_exactly(shards, predicate_name, bitmap, cache):
    texts = _corpus(seed=shards * 101 + len(predicate_name))
    queries = _queries(texts)

    index = SimilarityIndex(
        _predicate(predicate_name, texts),
        tokenizer=tokenize_words,
        bitmap_filter=bitmap,
    )
    for text in texts:
        index.add(text)
    single = IndexServer(index, workers=2, query_cache=cache).start()

    sharded = ShardedIndexServer(
        _predicate(predicate_name, texts),
        shards=shards,
        tokenizer=tokenize_words,
        workers=2,
        shard_workers=2,
        query_cache=cache,
        bitmap_filter=bitmap,
    )
    for text in texts:
        sharded.add(text)
    sharded.start()

    try:
        for probe in queries:
            want = _fingerprint(single.query(probe, timeout=WAIT))
            got = sharded.query(probe, timeout=WAIT)
            assert not got.partial
            assert got.shards_ok == tuple(range(shards))
            assert _fingerprint(got) == want
        # Second pass: with cache > 0 every shard answers from cache;
        # remapping must keep cached entries exact too.
        for probe in queries:
            want = _fingerprint(single.query(probe, timeout=WAIT))
            assert _fingerprint(sharded.query(probe, timeout=WAIT)) == want
        if cache:
            health = sharded.health()
            assert all(
                row["cache"]["hits"] >= len(queries) for row in health["shards"]
            )
    finally:
        single.drain(timeout=WAIT)
        sharded.drain(timeout=WAIT)


@pytest.mark.parametrize("shards", [2, 5])
def test_equivalence_survives_interleaved_adds_and_flips(shards):
    """Growth + reindex flips on one side must not diverge the answers."""
    texts = _corpus(seed=7, n=30)
    probe_pool = _queries(texts)

    index = SimilarityIndex(JaccardPredicate(0.4), tokenizer=tokenize_words)
    single = IndexServer(index, workers=2).start()
    sharded = ShardedIndexServer(
        JaccardPredicate(0.4),
        shards=shards,
        tokenizer=tokenize_words,
        workers=2,
    ).start()

    try:
        for round_no in range(3):
            for text in texts[round_no * 10:(round_no + 1) * 10]:
                index.add(text)
                sharded.add(text)
            sharded.reindex(block=True, timeout=WAIT)
            for probe in probe_pool:
                assert _fingerprint(sharded.query(probe, timeout=WAIT)) == (
                    _fingerprint(single.query(probe, timeout=WAIT))
                )
    finally:
        single.drain(timeout=WAIT)
        sharded.drain(timeout=WAIT)
