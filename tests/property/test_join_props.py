"""Hypothesis end-to-end properties of the join algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ClusterMemJoin,
    JaccardPredicate,
    MemoryBudget,
    NaiveJoin,
    OverlapPredicate,
    ProbeClusterJoin,
    ProbeCountJoin,
    WordGroupsJoin,
)
from repro.core.records import Dataset

records = st.lists(
    st.lists(st.integers(0, 25), min_size=1, max_size=10, unique=True).map(
        lambda r: tuple(sorted(r))
    ),
    min_size=0,
    max_size=30,
)


def truth_pairs(data, predicate):
    return NaiveJoin().join(data, predicate).pair_set()


class TestJoinEquivalenceProperties:
    @settings(max_examples=60, deadline=None)
    @given(records, st.integers(min_value=1, max_value=6))
    def test_probe_variants_match_naive_overlap(self, recs, t):
        data = Dataset(recs)
        predicate = OverlapPredicate(t)
        expected = truth_pairs(data, predicate)
        for variant in ("basic", "stopwords", "optmerge", "online", "sort"):
            got = ProbeCountJoin(variant=variant).join(data, predicate).pair_set()
            assert got == expected, variant

    @settings(max_examples=40, deadline=None)
    @given(records, st.floats(min_value=0.2, max_value=1.0))
    def test_probe_cluster_matches_naive_jaccard(self, recs, f):
        data = Dataset(recs)
        predicate = JaccardPredicate(f)
        expected = truth_pairs(data, predicate)
        assert ProbeClusterJoin().join(data, predicate).pair_set() == expected

    @settings(max_examples=30, deadline=None)
    @given(records, st.integers(min_value=2, max_value=5))
    def test_word_groups_matches_naive(self, recs, t):
        data = Dataset(recs)
        predicate = OverlapPredicate(t)
        expected = truth_pairs(data, predicate)
        assert WordGroupsJoin().join(data, predicate).pair_set() == expected

    @settings(max_examples=30, deadline=None)
    @given(
        records,
        st.integers(min_value=2, max_value=5),
        st.floats(min_value=0.02, max_value=1.0),
    )
    def test_cluster_mem_matches_naive_at_any_budget(self, recs, t, fraction):
        data = Dataset(recs)
        if len(data) == 0:
            return
        predicate = OverlapPredicate(t)
        expected = truth_pairs(data, predicate)
        algorithm = ClusterMemJoin(MemoryBudget.fraction_of_full(data, fraction))
        assert algorithm.join(data, predicate).pair_set() == expected

    @settings(max_examples=60, deadline=None)
    @given(records, st.integers(min_value=1, max_value=6))
    def test_output_is_canonical_and_duplicate_free(self, recs, t):
        data = Dataset(recs)
        result = ProbeCountJoin(variant="online").join(data, OverlapPredicate(t))
        seen = set()
        for pair in result.pairs:
            assert pair.rid_a < pair.rid_b
            key = (pair.rid_a, pair.rid_b)
            assert key not in seen
            seen.add(key)

    @settings(max_examples=40, deadline=None)
    @given(records, st.integers(min_value=1, max_value=6))
    def test_similarity_equals_true_overlap(self, recs, t):
        data = Dataset(recs)
        result = ProbeClusterJoin().join(data, OverlapPredicate(t))
        for pair in result.pairs:
            true_overlap = len(set(data[pair.rid_a]) & set(data[pair.rid_b]))
            assert pair.similarity == true_overlap
