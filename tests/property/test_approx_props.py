"""Properties of the approximate join mode across predicates and workers.

Three contracts, on seeded corpora (real worker processes make
hypothesis-style generation too expensive here — the same trade as
``test_parallel_props``):

* **Soundness** — the approximate pair set is a subset of the naive
  exact join's for every predicate family; never a false positive.
* **Determinism** — a fixed seed yields an identical pair set whether
  the join runs serially or sharded over any worker count.
* **Recall** — on corpora with planted near-duplicate groups, measured
  recall against the exact pair set reaches the planner's floor.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    ApproxJoin,
    CosinePredicate,
    JaccardPredicate,
    OverlapPredicate,
    parallel_join,
    similarity_join,
)
from repro.core.records import Dataset

WORKER_COUNTS = [1, 2, 4]

PREDICATES = [
    pytest.param(OverlapPredicate(4), id="overlap"),
    pytest.param(JaccardPredicate(0.5), id="jaccard"),
    pytest.param(CosinePredicate(0.7), id="cosine"),
]


def seeded_dataset(seed: int, n: int = 90, vocabulary: int = 50) -> Dataset:
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        size = rng.randint(3, 10)
        records.append(tuple(sorted(rng.sample(range(vocabulary), size))))
    return Dataset(records)


def duplicate_heavy_dataset(seed: int, groups: int = 30) -> Dataset:
    """Planted near-duplicate groups: every group shares most tokens."""
    rng = random.Random(seed)
    records = []
    for _ in range(groups):
        base = sorted(rng.sample(range(400), 10))
        for _ in range(rng.randint(2, 4)):
            mutated = list(base)
            if rng.random() < 0.7:
                mutated[rng.randrange(len(mutated))] = 400 + rng.randrange(100)
            records.append(tuple(sorted(set(mutated))))
    return Dataset(records)


class TestSoundness:
    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_subset_of_naive(self, predicate):
        data = seeded_dataset(seed=21)
        exact = similarity_join(data, predicate, algorithm="naive")
        approx = ApproxJoin(seed=5).join(data, predicate)
        assert approx.pair_set() <= exact.pair_set()

    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_similarities_match_exact(self, predicate):
        data = seeded_dataset(seed=22)
        exact = similarity_join(data, predicate, algorithm="naive")
        truth = {(p.rid_a, p.rid_b): p.similarity for p in exact.pairs}
        approx = ApproxJoin(seed=6).join(data, predicate)
        for pair in approx.pairs:
            assert truth[(pair.rid_a, pair.rid_b)] == pytest.approx(
                pair.similarity
            )


class TestDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_serial_equals_parallel(self, workers):
        data = duplicate_heavy_dataset(seed=23)
        predicate = JaccardPredicate(0.6)
        serial = similarity_join(
            data, predicate, mode="approx", target_recall=0.9, seed=13
        )
        sharded = parallel_join(
            data,
            predicate,
            algorithm="approx",
            workers=workers,
            target_recall=0.9,
            seed=13,
        )
        assert sharded.pair_set() == serial.pair_set()

    def test_different_seeds_reuse_nothing_hidden(self):
        # Two seeds are allowed to disagree; both must stay sound.
        data = duplicate_heavy_dataset(seed=24)
        predicate = JaccardPredicate(0.6)
        exact = similarity_join(data, predicate, algorithm="naive")
        for seed in (1, 2):
            approx = ApproxJoin(seed=seed, target_recall=0.7).join(data, predicate)
            assert approx.pair_set() <= exact.pair_set()


class TestRecall:
    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_measured_recall_reaches_target(self, seed):
        data = duplicate_heavy_dataset(seed=seed, groups=40)
        predicate = JaccardPredicate(0.7)
        exact = similarity_join(data, predicate, algorithm="naive")
        truth = exact.pair_set()
        assert truth  # planted duplicates must produce matches
        approx = ApproxJoin(seed=seed, target_recall=0.9).join(data, predicate)
        recall = len(approx.pair_set() & truth) / len(truth)
        assert recall >= 0.9
