"""Backend-equivalence properties: heap merge vs score accumulator.

The contract the ``merge_backend`` knob promises: candidate sets are
identical pair-for-pair across backends — same entities, bit-identical
weights (both backends sum each entity's contributions in the same
order) — and therefore joins return identical match sets under every
predicate, serially, sharded over workers, and with the bitmap filter
armed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CosinePredicate,
    JaccardPredicate,
    OverlapPredicate,
)
from repro.core.accumulator import (
    ScoreAccumulator,
    _gallop_from,
    accumulate_merge,
    accumulate_merge_opt,
)
from repro.core.heap_merge import heap_merge
from repro.core.inverted_index import PostingList
from repro.core.join import edit_distance_join, make_algorithm
from repro.core.merge_opt import merge_opt
from repro.utils.counters import CostCounters
from repro.utils.search import gallop_search_from
from tests.conftest import random_dataset

posting_ids = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=30, unique=True
).map(sorted)

scored_list = st.tuples(
    posting_ids,
    st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
)

probe = st.lists(scored_list, min_size=0, max_size=8)
thresholds = st.floats(min_value=0.2, max_value=8.0, allow_nan=False)


def build(lists_spec):
    lists = []
    for ids, entry_score, probe_score in lists_spec:
        plist = PostingList()
        for entity in ids:
            plist.append(entity, entry_score)
        lists.append((plist, probe_score))
    return lists


class TestMergeLevelEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(probe, thresholds, st.booleans(), st.booleans())
    def test_accumulate_merge_equals_heap_merge(
        self, lists_spec, threshold, use_accept, dense
    ):
        lists = build(lists_spec)
        accept = (lambda e: e % 3 != 0) if use_accept else None
        acc = ScoreAccumulator(64) if dense else None
        expected = heap_merge(lists, lambda _s: threshold, CostCounters(), accept)
        got = accumulate_merge(
            lists, lambda _s: threshold, CostCounters(), accept, acc=acc
        )
        # Pair-for-pair identical, weights bit-identical (same summation
        # order), not merely within epsilon.
        assert got == expected

    @settings(max_examples=150, deadline=None)
    @given(probe, thresholds, thresholds, st.booleans(), st.booleans())
    def test_accumulate_merge_opt_equals_merge_opt(
        self, lists_spec, index_threshold, pair_threshold, use_accept, dense
    ):
        lists = build(lists_spec)
        accept = (lambda e: e % 3 != 0) if use_accept else None
        acc = ScoreAccumulator(64) if dense else None
        expected = merge_opt(
            lists, index_threshold, lambda _s: pair_threshold, CostCounters(), accept
        )
        got = accumulate_merge_opt(
            lists,
            index_threshold,
            lambda _s: pair_threshold,
            CostCounters(),
            accept,
            acc=acc,
        )
        assert got == expected

    @settings(max_examples=200, deadline=None)
    @given(
        posting_ids,
        st.integers(min_value=0, max_value=70),
        st.integers(min_value=0, max_value=35),
    )
    def test_gallop_from_position_matches_utils(self, ids, target, start):
        items = list(ids)
        position, steps = _gallop_from(items, target, start)
        assert position == gallop_search_from(items, target, start)
        assert steps >= 0


def _join_pairs(dataset, predicate, algorithm, backend, bitmap=None):
    algo = make_algorithm(algorithm, merge_backend=backend, bitmap_filter=bitmap)
    return algo.join(dataset, predicate).pair_set()


_PREDICATES = [
    pytest.param(OverlapPredicate(4), id="overlap"),
    pytest.param(JaccardPredicate(0.6), id="jaccard"),
    pytest.param(CosinePredicate(0.7), id="cosine"),
]

_ALGORITHMS = ["probe-count-optmerge", "probe-count-sort", "probe-cluster"]


class TestJoinLevelEquivalence:
    @pytest.mark.parametrize("predicate", _PREDICATES)
    @pytest.mark.parametrize("algorithm", _ALGORITHMS)
    def test_serial_backends_agree(self, predicate, algorithm):
        data = random_dataset(seed=17, n_base=80, universe=30)
        heap = _join_pairs(data, predicate, algorithm, "heap")
        accumulator = _join_pairs(data, predicate, algorithm, "accumulator")
        auto = _join_pairs(data, predicate, algorithm, "auto")
        assert accumulator == heap
        assert auto == heap

    @pytest.mark.parametrize("predicate", _PREDICATES)
    def test_bitmap_filter_backends_agree(self, predicate):
        data = random_dataset(seed=23, n_base=80, universe=30)
        heap = _join_pairs(data, predicate, "probe-count-sort", "heap", bitmap=True)
        accumulator = _join_pairs(
            data, predicate, "probe-count-sort", "accumulator", bitmap=True
        )
        unfiltered = _join_pairs(data, predicate, "probe-count-sort", "heap")
        assert accumulator == heap == unfiltered

    @pytest.mark.parametrize("backend", ["heap", "accumulator", "auto"])
    def test_sharded_matches_serial(self, backend):
        from repro.parallel import parallel_join

        data = random_dataset(seed=31, n_base=90, universe=30)
        predicate = JaccardPredicate(0.6)
        serial = _join_pairs(data, predicate, "probe-count-sort", backend)
        sharded = parallel_join(
            data,
            predicate,
            algorithm="probe-count-sort",
            workers=4,
            merge_backend=backend,
        ).pair_set()
        assert sharded == serial

    @pytest.mark.parametrize("backend", ["heap", "accumulator"])
    def test_edit_distance_backends_agree(self, backend):
        names = [
            "similarity", "similarty", "simliarity", "distance", "distence",
            "merge", "marge", "merged", "accumulator", "acumulator",
            "posting", "postings", "columnar", "columner", "threshold",
        ]
        heap = edit_distance_join(names, k=2, merge_backend="heap").pair_set()
        got = edit_distance_join(names, k=2, merge_backend=backend).pair_set()
        assert got == heap
