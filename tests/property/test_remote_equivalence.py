"""Property: remote-sharded scatter-gather == in-process, bit for bit.

The tentpole claim of the remote shard transport is that moving a
shard behind a TCP socket changes *nothing* about the answers: for
every shard count × predicate combination, a front end whose shards
are all :class:`ShardServer` nodes (and a mixed local/remote split)
answers every query pair-for-pair identical — rids AND float
similarities — to both the all-local sharded server and a single-index
:class:`IndexServer` over the same corpus.

Cosine is again the adversarial predicate: its IDF weights key on
global token ids, and the remote nodes assign ids in their *own*
processes' insertion order. The sweep therefore gives every node the
same prefilled vocabulary and the same global :class:`CorpusStats` the
front end uses — exactly what the ``shard-serve`` CLI derives from the
shared corpus file — and a divergence anywhere would show up as a
float mismatch here.
"""

import random

import pytest

from repro import CosinePredicate, JaccardPredicate, OverlapPredicate
from repro.core.service import SimilarityIndex
from repro.serving import IndexServer, ShardedIndexServer
from repro.serving.transport import ShardServer
from repro.text.tfidf import CorpusStats
from repro.text.tokenizers import tokenize_words

WAIT = 30.0

VOCAB = [
    "join", "set", "similarity", "predicate", "merge", "probe", "index",
    "record", "cluster", "threshold", "overlap", "cosine", "weight",
    "inverted", "posting", "batch", "shard", "cache", "flip", "epoch",
]


def _corpus(seed: int, n: int = 48) -> list[str]:
    rng = random.Random(seed)
    texts = []
    for _ in range(n):
        size = rng.randint(3, 8)
        texts.append(" ".join(rng.sample(VOCAB, size)))
    return texts


def _queries(texts: list[str]) -> list[str]:
    rng = random.Random(99)
    queries = list(texts[:6])  # exact repeats: corpus members
    for _ in range(6):
        queries.append(" ".join(rng.sample(VOCAB, rng.randint(2, 6))))
    queries.append("nothing matches this xylophone chimera")
    return queries


def _vocabulary(texts: list[str]) -> dict[str, int]:
    """First-occurrence token-id assignment over the whole corpus —
    what every index (front-end local shards AND remote nodes) must
    share for corpus-dependent predicates to stay exact."""
    vocabulary: dict[str, int] = {}
    for text in texts:
        for token in tokenize_words(text):
            vocabulary.setdefault(token, len(vocabulary))
    return vocabulary


def _global_stats(texts: list[str]) -> CorpusStats:
    vocabulary = _vocabulary(texts)
    records = []
    for text in texts:
        ids = {vocabulary[token] for token in tokenize_words(text)}
        records.append(tuple(sorted(ids)))
    return CorpusStats(records)


def _fingerprint(matches) -> list:
    return [(m.rid_a, m.rid_b, m.similarity) for m in matches]


def _predicate(name: str, texts: list[str]):
    if name == "overlap":
        return OverlapPredicate(2)
    if name == "jaccard":
        return JaccardPredicate(0.4)
    return CosinePredicate(0.5, stats=_global_stats(texts))


def _start_nodes(count: int, predicate_name: str, texts: list[str]):
    """``count`` empty shard nodes, configured like shard-serve would."""
    nodes = []
    for _ in range(count):
        index = SimilarityIndex(
            _predicate(predicate_name, texts),
            tokenizer=tokenize_words,
            vocabulary=dict(_vocabulary(texts)),
        )
        nodes.append(ShardServer(index).start())
    return nodes


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("predicate_name", ["overlap", "jaccard", "cosine"])
def test_all_remote_equals_single_and_local_sharded(shards, predicate_name):
    texts = _corpus(seed=shards * 211 + len(predicate_name))
    queries = _queries(texts)

    index = SimilarityIndex(
        _predicate(predicate_name, texts),
        tokenizer=tokenize_words,
        vocabulary=dict(_vocabulary(texts)),
    )
    for text in texts:
        index.add(text)
    single = IndexServer(index, workers=2).start()

    local = ShardedIndexServer(
        _predicate(predicate_name, texts),
        shards=shards,
        tokenizer=tokenize_words,
        workers=2,
        shard_workers=2,
        vocabulary=dict(_vocabulary(texts)),
    )
    for text in texts:
        local.add(text)
    local.start()

    nodes = _start_nodes(shards, predicate_name, texts)
    remote = ShardedIndexServer(
        _predicate(predicate_name, texts),
        shards=shards,
        tokenizer=tokenize_words,
        workers=2,
        shard_workers=2,
        shard_endpoints=[f"127.0.0.1:{node.port}" for node in nodes],
        vocabulary=dict(_vocabulary(texts)),
    )
    for text in texts:
        remote.add(text)
    remote.start()

    try:
        for probe in queries:
            want = _fingerprint(single.query(probe, timeout=WAIT))
            local_got = local.query(probe, timeout=WAIT)
            remote_got = remote.query(probe, timeout=WAIT)
            assert not local_got.partial and not remote_got.partial
            assert remote_got.shards_ok == tuple(range(shards))
            assert _fingerprint(local_got) == want
            assert _fingerprint(remote_got) == want
    finally:
        single.drain(timeout=WAIT)
        local.drain(timeout=WAIT)
        remote.drain(timeout=WAIT)
        for node in nodes:
            node.stop()


@pytest.mark.parametrize("predicate_name", ["jaccard", "cosine"])
def test_mixed_local_and_remote_shards_stay_exact(predicate_name):
    """A half-local, half-remote split answers identically: the merge
    path must be backend-blind."""
    shards = 4
    texts = _corpus(seed=5)
    queries = _queries(texts)

    index = SimilarityIndex(
        _predicate(predicate_name, texts),
        tokenizer=tokenize_words,
        vocabulary=dict(_vocabulary(texts)),
    )
    for text in texts:
        index.add(text)
    single = IndexServer(index, workers=2).start()

    nodes = _start_nodes(2, predicate_name, texts)
    mixed = ShardedIndexServer(
        _predicate(predicate_name, texts),
        shards=shards,
        tokenizer=tokenize_words,
        workers=2,
        shard_workers=2,
        shard_endpoints=[
            "local",
            f"127.0.0.1:{nodes[0].port}",
            None,
            f"127.0.0.1:{nodes[1].port}",
        ],
        vocabulary=dict(_vocabulary(texts)),
    )
    for text in texts:
        mixed.add(text)
    mixed.start()

    try:
        for probe in queries:
            want = _fingerprint(single.query(probe, timeout=WAIT))
            got = mixed.query(probe, timeout=WAIT)
            assert not got.partial
            assert _fingerprint(got) == want
        health = mixed.health()
        assert [row["remote"] for row in health["shards"]] == [
            False, True, False, True,
        ]
    finally:
        single.drain(timeout=WAIT)
        mixed.drain(timeout=WAIT)
        for node in nodes:
            node.stop()


def test_equivalence_survives_remote_reindex_flips():
    """Node-side generation flips must not diverge the answers."""
    shards = 2
    texts = _corpus(seed=7, n=30)
    probe_pool = _queries(texts)

    index = SimilarityIndex(JaccardPredicate(0.4), tokenizer=tokenize_words)
    single = IndexServer(index, workers=2).start()
    nodes = _start_nodes(shards, "jaccard", texts)
    remote = ShardedIndexServer(
        JaccardPredicate(0.4),
        shards=shards,
        tokenizer=tokenize_words,
        workers=2,
        shard_endpoints=[f"127.0.0.1:{node.port}" for node in nodes],
    ).start()

    try:
        for round_no in range(3):
            for text in texts[round_no * 10:(round_no + 1) * 10]:
                index.add(text)
                remote.add(text)
            remote.reindex(block=True, timeout=WAIT)
            assert all(node.epoch == round_no + 1 for node in nodes)
            for probe in probe_pool:
                assert _fingerprint(remote.query(probe, timeout=WAIT)) == (
                    _fingerprint(single.query(probe, timeout=WAIT))
                )
    finally:
        single.drain(timeout=WAIT)
        remote.drain(timeout=WAIT)
        for node in nodes:
            node.stop()
