"""Hypothesis properties for the extension layers (top-k, dedupe, service)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    JaccardPredicate,
    NaiveJoin,
    OverlapPredicate,
    TopKJoin,
    connected_components,
)
from repro.core.prefix_filter import PrefixFilterJoin

records = st.lists(
    st.lists(st.integers(0, 20), min_size=1, max_size=8, unique=True).map(
        lambda r: tuple(sorted(r))
    ),
    min_size=0,
    max_size=25,
)

pairs_strategy = st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19)).filter(lambda p: p[0] != p[1]),
    max_size=30,
)


class TestTopKProperties:
    @settings(max_examples=40, deadline=None)
    @given(records, st.integers(min_value=1, max_value=8))
    def test_topk_is_prefix_of_full_ranking(self, recs, k):
        data = Dataset(recs)
        floor = 0.3
        full = NaiveJoin().join(data, JaccardPredicate(floor))
        ranking = sorted(
            ((p.similarity, p.rid_a, p.rid_b) for p in full.pairs), reverse=True
        )
        result = TopKJoin(k, JaccardPredicate, floor=floor).join(data)
        got = [(p.similarity, p.rid_a, p.rid_b) for p in result.pairs]
        assert got == ranking[:k]


class TestConnectedComponentsProperties:
    @settings(max_examples=100, deadline=None)
    @given(pairs_strategy)
    def test_partition_properties(self, pairs):
        groups = connected_components(pairs, 20)
        seen: set[int] = set()
        for group in groups:
            assert len(group) >= 2
            assert group == sorted(group)
            assert not (seen & set(group))  # disjoint
            seen.update(group)

    @settings(max_examples=100, deadline=None)
    @given(pairs_strategy)
    def test_every_pair_lands_in_one_group(self, pairs):
        groups = connected_components(pairs, 20)
        group_of = {}
        for idx, group in enumerate(groups):
            for rid in group:
                group_of[rid] = idx
        for rid_a, rid_b in pairs:
            assert group_of[rid_a] == group_of[rid_b]


class TestPrefixFilterProperties:
    @settings(max_examples=40, deadline=None)
    @given(records, st.integers(min_value=1, max_value=5))
    def test_overlap_equivalence(self, recs, t):
        data = Dataset(recs)
        predicate = OverlapPredicate(t)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PrefixFilterJoin().join(data, predicate).pair_set() == truth

    @settings(max_examples=40, deadline=None)
    @given(records, st.floats(min_value=0.3, max_value=1.0))
    def test_jaccard_equivalence(self, recs, f):
        data = Dataset(recs)
        predicate = JaccardPredicate(f)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PrefixFilterJoin().join(data, predicate).pair_set() == truth
