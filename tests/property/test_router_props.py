"""Property sweep: ShardRouter's routing invariants over many shapes.

The router's contract has three legs, and each is a *for-all* claim,
so each gets a randomized sweep rather than a handful of examples:

* **Agreement** — ``spread(n)`` is exactly the histogram of
  ``shard_of`` over ``rids 0..n-1``, for any shard count and size.
* **Stability** — the mapping is a pure function of ``(rid,
  n_shards)``: fresh instances, repeated calls, and interleaved query
  orders all agree. A silent change here orphans every stored record,
  so stability is the strongest invariant the sharded tier has.
* **Skew bound** — both *sequential* rid ranges (bulk imports — the
  adversary for range splitting) and *sparse/structured* rid sets
  (strides, powers, random draws — the adversary for weak mixers) land
  within a bounded factor of the uniform share on every shard.
"""

import random

import pytest

from repro.serving.router import ShardRouter

SHARD_COUNTS = [1, 2, 3, 4, 7, 8, 16]


class TestSpreadAgreesWithShardOf:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("n_records", [0, 1, 17, 256, 4096])
    def test_spread_is_the_shard_of_histogram(self, n_shards, n_records):
        router = ShardRouter(n_shards)
        spread = router.spread(n_records)
        histogram = [0] * n_shards
        for rid in range(n_records):
            histogram[router.shard_of(rid)] += 1
        assert spread == histogram
        assert sum(spread) == n_records

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_every_assignment_in_range(self, n_shards):
        router = ShardRouter(n_shards)
        rng = random.Random(n_shards)
        rids = [rng.randrange(2**48) for _ in range(2000)]
        assert all(0 <= router.shard_of(rid) < n_shards for rid in rids)


class TestStability:
    @pytest.mark.parametrize("seed", range(5))
    def test_pure_function_of_rid_and_shard_count(self, seed):
        rng = random.Random(seed)
        n_shards = rng.choice(SHARD_COUNTS)
        rids = [rng.randrange(2**50) for _ in range(500)]
        first = ShardRouter(n_shards)
        second = ShardRouter(n_shards)
        baseline = {rid: first.shard_of(rid) for rid in rids}
        # Fresh instance, shuffled order, repeated calls: all agree.
        rng.shuffle(rids)
        for rid in rids:
            assert second.shard_of(rid) == baseline[rid]
            assert first.shard_of(rid) == baseline[rid]

    def test_mapping_is_independent_of_history(self):
        """Routing rid X is unaffected by what was routed before it."""
        router = ShardRouter(5)
        expected = router.shard_of(123456)
        for rid in range(1000):
            router.shard_of(rid)
        assert router.shard_of(123456) == expected


class TestSkewBounds:
    #: Per-shard share must stay within this factor of uniform. The
    #: Fibonacci mix is not a perfect permutation per-residue, but a
    #: 2x envelope catches the failure mode that matters: a shard
    #: absorbing a constant fraction of a structured workload.
    LO, HI = 0.5, 2.0

    def _assert_balanced(self, router, rids):
        counts = [0] * router.n_shards
        for rid in rids:
            counts[router.shard_of(rid)] += 1
        expected = len(rids) / router.n_shards
        assert all(
            self.LO * expected <= count <= self.HI * expected for count in counts
        ), f"skewed spread {counts} for n_shards={router.n_shards}"

    @pytest.mark.parametrize("n_shards", [2, 3, 4, 7, 8, 16])
    def test_sequential_rids(self, n_shards):
        self._assert_balanced(ShardRouter(n_shards), range(10_000))

    @pytest.mark.parametrize("n_shards", [2, 3, 4, 7, 8])
    @pytest.mark.parametrize("stride", [2, 7, 64, 1000])
    def test_strided_rids(self, n_shards, stride):
        """Strided id allocation (every k-th id, e.g. round-robin
        writers) must not resonate with the mixer."""
        self._assert_balanced(
            ShardRouter(n_shards), range(0, 5000 * stride, stride)
        )

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_sparse_random_rids(self, n_shards):
        rng = random.Random(n_shards * 31 + 7)
        rids = rng.sample(range(2**52), 5000)
        self._assert_balanced(ShardRouter(n_shards), rids)

    @pytest.mark.parametrize("n_shards", [3, 4, 8])
    def test_power_of_two_rids(self, n_shards):
        """Ids that are exact powers of two exercise only one set bit —
        the classic weak spot of multiplicative hashing."""
        rids = [1 << k for k in range(52)]
        counts = [0] * n_shards
        router = ShardRouter(n_shards)
        for rid in rids:
            counts[router.shard_of(rid)] += 1
        # Tiny sample: just require every shard sees *something* and no
        # shard takes more than 60%.
        assert max(counts) <= 0.6 * len(rids)
        assert min(counts) > 0
