"""Chaos/soak suite: the serving stack under concurrent, faulty traffic.

Three escalating assaults, all time-bounded (every blocking wait has a
deadline, so a regression shows up as a failed assertion, not a hung
CI job) and all marked ``soak`` so they can run in their own CI lane:

* **Parity**: 8+ threads querying concurrently between write phases
  produce byte-identical results to a serial replay of the same
  schedule — the non-mutating probe path leaks nothing across threads.
* **Invariants**: free-running mixed add/query/rebind traffic with
  injected faults (flaky tokenizer, instant deadlines, cancellations)
  finishes without deadlock, without corruption, and with every
  admitted request accounted for.
* **Bounded shed**: overload sheds exactly the requests that exceed
  ``workers + queue_limit``, each with a typed error, and the server
  stays fully functional afterwards.
* **Sharded chaos**: the scatter-gather tier loses one shard to a
  kill, a slow-past-deadline stall, and an error storm in turn — each
  assault landing *during* a generation flip under threaded traffic —
  and every response is either complete or partial with the exact
  failed-shard set; nothing is silently dropped and the drain
  terminates.
"""

import threading

import pytest

from repro.core.service import SimilarityIndex
from repro.predicates import JaccardPredicate, OverlapPredicate
from repro.runtime.context import JoinContext
from repro.runtime.errors import JoinCancelled, JoinTimeout, ServerOverloaded
from repro.runtime.faults import CountdownCancellation, ShardFaults
from repro.serving import IndexServer, RetryPolicy, ShardedIndexServer
from repro.text.tokenizers import tokenize_words

pytestmark = pytest.mark.soak

#: Every blocking wait in this module is bounded by this; it is only
#: ever reached when something deadlocked.
WAIT = 30.0

N_THREADS = 8


def _line(round_no: int, i: int) -> str:
    flavour = "gamma delta" if i % 2 else "delta epsilon"
    return f"round {round_no} record {i} alpha beta {flavour}"


def _fingerprint(matches) -> list:
    return [(m.rid_a, round(m.similarity, 12)) for m in matches]


class TestSerialParity:
    """Concurrent execution must be indistinguishable from serial."""

    ROUNDS = 5
    BATCH = 8
    QUERIES = [
        "alpha beta gamma delta",
        "alpha beta delta epsilon",
        "round record alpha",
        "gamma delta epsilon",
        "record alpha beta",
        "beta gamma",
        "epsilon alpha",
        "no such tokens anywhere",
    ]

    def _run_schedule(self, concurrent: bool) -> dict:
        """Adds in fixed rounds; queries between rounds, maybe in parallel."""
        assert len(self.QUERIES) == N_THREADS
        index = SimilarityIndex(JaccardPredicate(0.3), tokenizer=tokenize_words)
        results: dict = {}
        for round_no in range(self.ROUNDS):
            for i in range(self.BATCH):
                index.add(_line(round_no, i))
            if round_no % 2 == 1:
                index.rebind()  # exercise the full-rebuild write path too
            if concurrent:
                barrier = threading.Barrier(N_THREADS, timeout=WAIT)
                errors = []

                def probe(slot, query_text):
                    try:
                        barrier.wait()  # maximize real overlap
                        results[(round_no, slot)] = _fingerprint(
                            index.query(query_text)
                        )
                    except Exception as exc:  # noqa: BLE001 — fail the test
                        errors.append(exc)

                threads = [
                    threading.Thread(target=probe, args=(s, q), daemon=True)
                    for s, q in enumerate(self.QUERIES)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(WAIT)
                    assert not thread.is_alive(), "query thread deadlocked"
                assert errors == []
            else:
                for slot, query_text in enumerate(self.QUERIES):
                    results[(round_no, slot)] = _fingerprint(
                        index.query(query_text)
                    )
        results["final_records"] = len(index)
        results["final_counters_keys"] = sorted(index.counters_snapshot())
        return results

    def test_concurrent_equals_serial_exactly(self):
        concurrent = self._run_schedule(concurrent=True)
        serial = self._run_schedule(concurrent=False)
        assert concurrent == serial


class _FlakyTokenizer:
    """Fails the first attempt of every text marked ``FLAKY`` with OSError.

    Deterministic per text, so a retrying server always succeeds on the
    second attempt while a non-retrying path would surface the fault.
    """

    def __init__(self):
        self._seen: set[str] = set()
        self._lock = threading.Lock()

    def __call__(self, text: str):
        if text.startswith("FLAKY"):
            with self._lock:
                first_time = text not in self._seen
                self._seen.add(text)
            if first_time:
                raise OSError(f"injected tokenizer fault for {text!r}")
        return tokenize_words(text)


class TestChaosInvariants:
    """Mixed faulty traffic: no deadlock, no corruption, full accounting."""

    def test_faulty_mixed_traffic_leaves_a_consistent_server(self):
        tokenizer = _FlakyTokenizer()
        index = SimilarityIndex(JaccardPredicate(0.3), tokenizer=tokenizer)
        for i in range(10):
            index.add(_line(0, i))

        server = IndexServer(
            index,
            workers=N_THREADS,
            queue_limit=256,
            retry_policy=RetryPolicy(max_attempts=3, sleep=lambda s: None),
        ).start()
        try:
            futures = []
            for i in range(40):
                text = f"alpha beta gamma delta {i % 4}"
                if i % 5 == 0:
                    # Transient fault: first attempt's tokenizer call
                    # raises OSError; the retry policy must absorb it.
                    futures.append(
                        ("ok", server.submit(f"FLAKY alpha beta {i}"))
                    )
                elif i % 7 == 0:
                    # Already-expired deadline: deterministic JoinTimeout
                    # before the index is ever touched.
                    futures.append(
                        ("timeout", server.submit(text, deadline=1e-9))
                    )
                elif i % 11 == 0:
                    # Cancellation token that trips at its first check.
                    context = JoinContext(
                        cancel_token=CountdownCancellation(after_checks=1)
                    )
                    futures.append(
                        ("cancelled", server.submit(text, context=context))
                    )
                else:
                    futures.append(("ok", server.submit(text)))

            # Concurrent mutations while the queries are in flight: the
            # write side must interleave with the worker pool's reads.
            for i in range(8):
                index.add(_line(1, i))
            index.rebind()

            outcomes = {"ok": 0, "timeout": 0, "cancelled": 0}
            for expected, future in futures:
                try:
                    matches = future.result(timeout=WAIT)
                except JoinTimeout:
                    assert expected == "timeout"
                    outcomes["timeout"] += 1
                except JoinCancelled:
                    assert expected == "cancelled"
                    outcomes["cancelled"] += 1
                else:
                    assert expected == "ok", f"expected {expected}, got a result"
                    for match in matches:
                        assert 0 <= match.rid_a < len(index)
                    outcomes["ok"] += 1

            assert outcomes["ok"] > 0
            assert outcomes["timeout"] > 0
            assert outcomes["cancelled"] > 0
            health = server.health()
            # Full accounting: every admitted request resolved, exactly once.
            assert health["completed"] == outcomes["ok"]
            assert health["failed"] == outcomes["timeout"] + outcomes["cancelled"]
            assert health["retried"] > 0  # the FLAKY faults were retried
            assert health["queue_depth"] == 0
            assert health["in_flight"] == 0
        finally:
            assert server.drain(timeout=WAIT) is True

        # No corruption: the index still answers, and a serial rebuild
        # of the same corpus agrees exactly.
        serial = SimilarityIndex(JaccardPredicate(0.3), tokenizer=tokenize_words)
        for i in range(10):
            serial.add(_line(0, i))
        for i in range(8):
            serial.add(_line(1, i))
        serial.rebind()
        probe = "alpha beta gamma delta"
        assert _fingerprint(index.query(probe)) == _fingerprint(serial.query(probe))

    def test_sustained_reader_writer_hammering(self):
        """Free-running soak: 8 reader threads vs. one mutating writer."""
        index = SimilarityIndex(JaccardPredicate(0.3), tokenizer=tokenize_words)
        index.add(_line(0, 0))
        stop = threading.Event()
        failures = []
        queries_run = [0] * N_THREADS

        def reader(slot):
            query_text = self_queries[slot % len(self_queries)]
            while not stop.is_set():
                try:
                    for match in index.query(query_text):
                        assert 0 <= match.rid_a < len(index)
                    queries_run[slot] += 1
                except Exception as exc:  # noqa: BLE001 — fail the test
                    failures.append(exc)
                    return

        self_queries = TestSerialParity.QUERIES
        threads = [
            threading.Thread(target=reader, args=(slot,), daemon=True)
            for slot in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for round_no in range(1, 4):
            for i in range(25):
                index.add(_line(round_no, i))
            index.rebind()
        stop.set()
        for thread in threads:
            thread.join(WAIT)
            assert not thread.is_alive(), "reader deadlocked against the writer"
        assert failures == []
        assert len(index) == 1 + 3 * 25
        # Writer preference must not have starved the readers entirely.
        assert sum(queries_run) > 0


class TestBoundedShed:
    """Overload sheds exactly the excess, then recovers completely."""

    def test_shed_count_is_exact_and_server_recovers(self):
        gate = threading.Event()
        started = threading.Semaphore(0)

        class _WedgedIndex:
            def query(self, item, context=None):
                started.release()
                assert gate.wait(WAIT)
                return []

            def __len__(self):
                return 0

            def counters_snapshot(self):
                return {}

        server = IndexServer(_WedgedIndex(), workers=2, queue_limit=4).start()
        try:
            accepted = [server.submit("w1"), server.submit("w2")]
            for _ in range(2):
                assert started.acquire(timeout=WAIT)  # both workers parked
            shed = 0
            for i in range(18):
                try:
                    accepted.append(server.submit(f"q{i}"))
                except ServerOverloaded as exc:
                    assert exc.queue_limit == 4
                    shed += 1
            # Capacity is exactly workers(2, parked) + queue(4).
            assert len(accepted) == 6
            assert shed == 14
            gate.set()
            for future in accepted:
                assert future.result(timeout=WAIT) == []
            health = server.health()
            assert health["shed"] == 14
            assert health["completed"] == 6
            # Fully recovered: the next request is served immediately.
            assert server.query("after", timeout=WAIT) == []
        finally:
            gate.set()
            server.drain(timeout=WAIT)


class TestShardedChaos:
    """One shard assaulted three ways, mid-flip, under threaded traffic.

    The acceptance walk for the sharded tier: with the victim shard
    killed, then slowed past every query's deadline, then erroring,
    while a generation flip of that same shard runs concurrently,
    every admitted query must resolve to either a complete result or a
    partial one naming exactly the victim — never a wrong answer,
    never a hang — and the final drain must terminate.
    """

    N_SHARDS = 3
    VICTIM = 1
    QUERIES_PER_PHASE = 24

    def _build(self, faults: ShardFaults) -> ShardedIndexServer:
        server = ShardedIndexServer(
            OverlapPredicate(2),
            shards=self.N_SHARDS,
            tokenizer=tokenize_words,
            workers=N_THREADS,
            shard_workers=2,
            queue_limit=256,
            retry_policy=RetryPolicy(max_attempts=2, sleep=lambda s: None),
            faults=faults,
        )
        for round_no in range(4):
            for i in range(8):
                server.add(_line(round_no, i))
        return server.start()

    def test_kill_slow_error_each_in_turn_during_flips(self):
        faults = ShardFaults()
        server = self._build(faults)
        probe = "alpha beta gamma delta"
        try:
            expected_complete = _fingerprint(server.query(probe, timeout=WAIT))
            lost_rids = set(server._shards[self.VICTIM].global_rids)
            expected_partial = [
                entry for entry in expected_complete if entry[0] not in lost_rids
            ]

            for phase in ("kill", "slow", "error"):
                if phase == "kill":
                    faults.kill(self.VICTIM)
                elif phase == "slow":
                    # Far past the per-query deadline used below.
                    faults.slow(self.VICTIM, 5.0)
                else:
                    faults.error(self.VICTIM)

                # The flip of the assaulted shard runs while the
                # threaded queries are in flight. (Faults hit the probe
                # path, not the build, so the flip itself succeeds —
                # the shard's data survives its shard being "down".)
                builders = server.reindex(
                    shard_ids=[self.VICTIM], block=False
                )

                outcomes: list = []
                errors: list = []
                barrier = threading.Barrier(N_THREADS, timeout=WAIT)

                def hammer(slot, n_queries):
                    try:
                        barrier.wait()
                        for _ in range(n_queries):
                            result = server.query(
                                probe, deadline=0.5, timeout=WAIT
                            )
                            outcomes.append(
                                (result.partial, result.shards_failed,
                                 _fingerprint(result))
                            )
                    except Exception as exc:  # noqa: BLE001 — fail the test
                        errors.append(exc)

                per_thread = self.QUERIES_PER_PHASE // N_THREADS
                threads = [
                    threading.Thread(
                        target=hammer, args=(slot, per_thread), daemon=True
                    )
                    for slot in range(N_THREADS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(WAIT)
                    assert not thread.is_alive(), f"{phase}: query deadlocked"
                assert errors == []
                assert len(outcomes) == self.QUERIES_PER_PHASE

                # Exact accounting, no silent loss: every response is
                # the full answer or the survivors' answer, explicitly
                # flagged with exactly the victim shard.
                for partial, shards_failed, fingerprint in outcomes:
                    if partial:
                        assert shards_failed == (self.VICTIM,)
                        assert fingerprint == expected_partial
                    else:
                        assert shards_failed == ()
                        assert fingerprint == expected_complete
                assert any(partial for partial, _, _ in outcomes), (
                    f"{phase}: the fault never bit — the scenario is vacuous"
                )

                for builder in builders:
                    assert builder.wait(timeout=WAIT) is True
                faults.clear()
                # Recovery between phases: the shard serves again.
                recovered = server.query(probe, timeout=WAIT)
                assert _fingerprint(recovered) == expected_complete

            health = server.health()
            assert health["partial"]["partial"] > 0
            assert health["partial"]["complete"] > 0
            assert health["queue_depth"] == 0
            assert health["in_flight"] == 0
            total = (
                health["partial"]["partial"] + health["partial"]["complete"]
            )
            assert health["completed"] == total
            # Three phases flipped the victim three times.
            assert health["shards"][self.VICTIM]["epoch"] == 3
        finally:
            assert server.drain(timeout=WAIT) is True
