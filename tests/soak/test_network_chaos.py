"""Network chaos soak: the remote shard tier under transport faults.

A three-shard front end (one local, two remote nodes) takes threaded
query traffic while a :class:`NetworkFaults` proxy in front of one
node works through the wire failure taxonomy — connections refused,
frames corrupted, responses truncated, responses delayed past the
deadline, connections killed mid-response — and finally the node
itself is killed and restarted at a *new* address.

The invariants are the tentpole's contract, checked continuously:

* every answer is either complete or partial with the **exact** failed
  shard set — never silently short, never blaming a healthy shard;
* ``require_complete=True`` surfaces loss as a typed
  :class:`PartialResult` carrying the same exact accounting;
* transient corruption is absorbed by reconnect-retries (the answers
  stay byte-identical to a fault-free reference server);
* after the node restart + proxy retarget, heartbeats close the
  breaker and the tier returns to fully-complete answers with no
  manual intervention.

Everything is time-bounded: a hang is a failed wait, not a hung job.
"""

import threading
import time

import pytest

from repro.core.service import SimilarityIndex
from repro.predicates import JaccardPredicate
from repro.runtime.errors import PartialResult
from repro.runtime.faults import NetworkFaults
from repro.serving import CircuitBreaker, IndexServer, RetryPolicy, ShardedIndexServer
from repro.serving.transport import ShardServer
from repro.text.tokenizers import tokenize_words

pytestmark = pytest.mark.soak

WAIT = 30.0

VOCAB = [
    "join", "set", "similarity", "predicate", "merge", "probe", "index",
    "record", "cluster", "threshold", "overlap", "cosine", "weight",
]


def _texts(n: int = 36) -> list[str]:
    import random

    rng = random.Random(17)
    return [
        " ".join(rng.sample(VOCAB, rng.randint(3, 7))) for _ in range(n)
    ]


def _fingerprint(matches) -> list:
    return [(m.rid_a, m.rid_b, m.similarity) for m in matches]


def _wait_until(predicate, timeout: float = WAIT, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _node(texts_for_node=()) -> ShardServer:
    index = SimilarityIndex(JaccardPredicate(0.4), tokenizer=tokenize_words)
    for text in texts_for_node:
        index.add(text)
    return ShardServer(index).start()


class TestNetworkChaos:
    SHARDS = 3
    FAULTED = 1  # the shard whose node sits behind the proxy

    def _build(self):
        """single reference + front end with shard 1 behind a proxy."""
        texts = _texts()
        self.texts = texts

        index = SimilarityIndex(JaccardPredicate(0.4), tokenizer=tokenize_words)
        for text in texts:
            index.add(text)
        self.single = IndexServer(index, workers=2).start()

        self.node_a = _node()   # faulted via proxy (shard 1)
        self.node_b = _node()   # healthy remote (shard 2)
        self.proxy = NetworkFaults(*self.node_a.address).start()

        self.server = ShardedIndexServer(
            JaccardPredicate(0.4),
            shards=self.SHARDS,
            tokenizer=tokenize_words,
            workers=4,
            shard_workers=2,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=0.01, sleep=time.sleep
            ),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=3, cooldown_seconds=0.2
            ),
            shard_endpoints=[
                "local",
                f"127.0.0.1:{self.proxy.port}",
                f"127.0.0.1:{self.node_b.port}",
            ],
            heartbeat_interval=0.05,
            remote_connect_timeout=0.5,
            remote_request_timeout=2.0,
        )
        for text in texts:
            self.server.add(text)
        self.server.start()
        self.queries = texts[:8] + ["probe tokens that match nothing"]
        self.reference = {
            probe: _fingerprint(self.single.query(probe, timeout=WAIT))
            for probe in self.queries
        }

    def _teardown(self):
        self.server.drain(timeout=WAIT)
        self.single.drain(timeout=WAIT)
        self.proxy.stop()
        self.node_a.stop()
        self.node_b.stop()

    def _assert_all_complete_and_exact(self):
        for probe in self.queries:
            result = self.server.query(probe, timeout=WAIT)
            assert not result.partial, (
                f"lost shards {result.shards_failed} with no fault armed"
            )
            assert _fingerprint(result) == self.reference[probe]

    def test_full_taxonomy_then_restart(self):
        self._build()
        try:
            # Phase 0: fault-free baseline — identical to the reference.
            self._assert_all_complete_and_exact()

            # Phase 1: connections refused. Retries burn out, the shard
            # is lost with exact accounting; require_complete raises
            # the same accounting as a typed error.
            self.proxy.refuse(times=1000)
            self.proxy.sever()  # a dead node resets pooled connections too
            result = self.server.query(self.queries[0], timeout=WAIT)
            assert result.partial
            assert result.shards_failed == (self.FAULTED,)
            assert result.shards_ok == (0, 2)
            with pytest.raises(PartialResult) as info:
                self.server.submit(
                    self.queries[1], require_complete=True
                ).result(timeout=WAIT)
            assert info.value.shards_failed == (self.FAULTED,)
            assert self.proxy.injected["refuse"] > 0
            self.proxy.clear()

            # The breaker likely tripped on the refusals; heartbeats
            # are its trial traffic, so recovery needs no queries.
            assert _wait_until(self._all_complete), (
                "tier did not recover after refusals cleared"
            )
            self._assert_all_complete_and_exact()

            # Phase 2: corrupted frames — absorbed by reconnect-retry,
            # answers stay exact. One armed fault at a time: a single
            # corruption can land on a query response or a heartbeat
            # ping, but either way it cannot exhaust the 3-attempt
            # retry budget or trip the threshold-3 breaker, so every
            # answer must come back complete.
            before = self._client_counters()
            for probe in self.queries[:3]:
                self.proxy.corrupt(times=1)
                result = self.server.query(probe, timeout=WAIT)
                assert not result.partial
                assert _fingerprint(result) == self.reference[probe]
                assert _wait_until(lambda: not self.proxy.pending)
            after = self._client_counters()
            assert after["reconnects"] > before["reconnects"]
            assert after["retries"] > before["retries"]
            assert self.proxy.injected["corrupt"] == 3
            self.proxy.clear()

            # Phase 3: truncated responses — the torn frame surfaces as
            # a connection error, also retried to success.
            for probe in self.queries[:2]:
                self.proxy.truncate(nbytes=8, times=1)
                result = self.server.query(probe, timeout=WAIT)
                assert not result.partial
                assert _fingerprint(result) == self.reference[probe]
                assert _wait_until(lambda: not self.proxy.pending)
            assert self.proxy.injected["truncate"] == 2
            self.proxy.clear()

            # Phase 4: responses delayed past the query deadline — the
            # slow shard is lost, not the query. The deadline bounds the
            # scatter-gather; the generous future wait just collects it.
            self.proxy.delay(seconds=5.0, times=1000)
            result = self.server.query(
                self.queries[0], deadline=1.0, timeout=WAIT
            )
            assert result.partial
            assert result.shards_failed == (self.FAULTED,)
            self.proxy.clear()
            assert _wait_until(self._all_complete)

            # Phase 5: connections killed mid-response under threaded
            # traffic: every answer is either complete-and-exact or
            # partial blaming exactly the faulted shard.
            self.proxy.kill(times=10)
            errors: list = []
            outcomes: list = []

            def worker(probe):
                try:
                    result = self.server.query(probe, timeout=WAIT)
                    if result.partial:
                        outcomes.append(("partial", result.shards_failed))
                        assert result.shards_failed == (self.FAULTED,)
                    else:
                        outcomes.append(("complete", ()))
                        assert _fingerprint(result) == self.reference[probe]
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(probe,))
                for probe in self.queries * 3
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(WAIT)
            assert errors == []
            assert len(outcomes) == len(self.queries) * 3
            self.proxy.clear()
            assert _wait_until(self._all_complete)

            # Phase 6: node killed outright, then restarted at a NEW
            # address with the same shard state. The proxy retargets;
            # heartbeats find the recovered node, close the breaker,
            # and the tier returns to complete answers by itself.
            self.node_a.stop()
            assert _wait_until(
                lambda: self.server.query(
                    self.queries[0], timeout=WAIT
                ).shards_failed == (self.FAULTED,)
            ), "killed node was never detected"

            # While the node is still down, the breaker's half-open
            # trial slot goes to a heartbeat ping — which fails and is
            # counted. (While the circuit is open pings are *skipped*,
            # so this is the only window that can record a miss.)
            assert _wait_until(
                lambda: self.server.health()["shards"][self.FAULTED][
                    "heartbeats"
                ]["failed"] > 0
            ), "no failed heartbeat was recorded against the dead node"

            shard_records = [
                text
                for rid, text in enumerate(self.texts)
                if self.server.router.shard_of(rid) == self.FAULTED
            ]
            self.node_a = _node(shard_records)  # same state, new port
            self.proxy.retarget(*self.node_a.address)
            assert _wait_until(self._all_complete), (
                "tier did not reconnect after node restart"
            )
            self._assert_all_complete_and_exact()

            # Accounting sanity: reconnects and heartbeat failures were
            # observed and surfaced in health.
            health = self.server.health()
            row = health["shards"][self.FAULTED]
            assert row["remote"]
            assert row["reconnects"] > 0
            assert row["heartbeats"]["failed"] > 0
            assert row["heartbeats"]["ok"] > 0
            assert health["reconnects"] >= row["reconnects"]
        finally:
            self._teardown()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _all_complete(self) -> bool:
        result = self.server.query(self.queries[0], timeout=WAIT)
        return not result.partial and (
            _fingerprint(result) == self.reference[self.queries[0]]
        )

    def _client_counters(self) -> dict:
        row = self.server.health()["shards"][self.FAULTED]
        return {"retries": row["retries"], "reconnects": row["reconnects"]}
