"""Shared test fixtures and dataset factories."""

from __future__ import annotations

import random

import pytest

from repro import Dataset


def random_dataset(
    seed: int,
    n_base: int = 60,
    universe: int = 50,
    min_size: int = 2,
    max_size: int = 12,
    duplicate_rate: float = 0.3,
) -> Dataset:
    """A small random dataset with injected near-duplicates.

    Used across correctness tests: the duplicates create qualifying
    pairs at realistic thresholds, the random base records create
    near-misses.
    """
    rng = random.Random(seed)
    records: list[tuple[int, ...]] = []
    for _ in range(n_base):
        base = set(rng.sample(range(universe), rng.randint(min_size, max_size)))
        records.append(tuple(sorted(base)))
        if rng.random() < duplicate_rate:
            dup = set(base)
            for _ in range(rng.randint(0, 3)):
                if dup and rng.random() < 0.5:
                    dup.discard(rng.choice(sorted(dup)))
                else:
                    dup.add(rng.randrange(universe))
            if dup:
                records.append(tuple(sorted(dup)))
    return Dataset(records)


def random_strings(seed: int, n: int = 40, alphabet: str = "abcd", max_len: int = 12) -> list[str]:
    """Random short strings over a small alphabet (edit-distance tests)."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        length = rng.randint(0, max_len)
        out.append("".join(rng.choice(alphabet) for _ in range(length)))
    return out


@pytest.fixture
def small_dataset() -> Dataset:
    """Five hand-built records with two obvious matching pairs."""
    return Dataset(
        [
            (0, 1, 2, 3, 4, 5),
            (1, 2, 3, 4, 5, 6),
            (10, 11, 12, 13),
            (10, 11, 12, 14),
            (20, 21),
        ]
    )


@pytest.fixture
def dup_dataset() -> Dataset:
    return random_dataset(seed=123)
